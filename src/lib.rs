//! # elpc — Efficient Linear Pipeline Configuration
//!
//! A from-scratch Rust reproduction of **"Optimizing Network Performance of
//! Computing Pipelines in Distributed Environments"** (Qishi Wu, Yi Gu,
//! Mengxia Zhu, Nageswara S.V. Rao — IEEE IPDPS 2008).
//!
//! The paper maps the modules of a linear computing pipeline onto nodes of
//! an arbitrary heterogeneous network to either **minimize end-to-end
//! delay** (interactive applications; solved optimally in polynomial time
//! by dynamic programming) or **maximize frame rate** (streaming
//! applications; NP-complete without node reuse, solved heuristically).
//!
//! ## Quick start
//!
//! ```
//! use elpc::prelude::*;
//!
//! // a 3-node network: source — relay — display
//! let mut b = Network::builder();
//! let src = b.add_node(5_000.0).unwrap();   // ProcessingPower
//! let relay = b.add_node(20_000.0).unwrap();
//! let dst = b.add_node(2_000.0).unwrap();
//! b.add_link(src, relay, 622.0, 1.0).unwrap(); // Mbps, MLD ms
//! b.add_link(relay, dst, 100.0, 5.0).unwrap();
//! let network = b.build().unwrap();
//!
//! // a 3-module pipeline: source → filter → display
//! let pipeline = Pipeline::from_stages(
//!     5e6,           // source dataset bytes
//!     &[(2.0, 1e6)], // (complexity, output bytes) per stage
//!     0.5,           // display complexity
//! ).unwrap();
//!
//! let inst = Instance::new(&network, &pipeline, src, dst).unwrap();
//! let cost = CostModel::default();
//!
//! // interactive: optimal minimum end-to-end delay (node reuse allowed)
//! let delay = elpc::mapping::elpc_delay::solve(&inst, &cost).unwrap();
//! assert!(delay.delay_ms > 0.0);
//!
//! // streaming: maximum frame rate (no node reuse)
//! let rate = elpc::mapping::elpc_rate::solve(&inst, &cost).unwrap();
//! assert!(rate.frame_rate_fps() > 0.0);
//!
//! // execute the chosen mapping in the discrete-event simulator
//! let report = elpc::simcore::simulate(
//!     &inst, &cost, &delay.mapping, elpc::simcore::Workload::single(),
//! ).unwrap();
//! assert!((report.end_to_end_delay_ms(0).unwrap() - delay.delay_ms).abs() < 1e-6);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`netgraph`] | graph substrate: adjacency graph, path algorithms, topology generators, DOT export |
//! | [`netsim`] | network resource model: nodes, links, probe-based measurement, time dynamics |
//! | [`pipeline`] | linear pipeline model, generators, the paper's motivating scenarios |
//! | [`mapping`] | the paper's algorithms behind one `Solver` registry, fed by a shared `SolveContext` metric-closure cache |
//! | [`simcore`] | discrete-event executor validating the analytic model |
//! | [`workloads`] | experiment instances: the 20-case suite, the registry-driven comparison runner, parallel sweeps, the cross-instance `ClosureBank` |
//! | [`extensions`] | §5 future work: frame rate with reuse, DAG workflows, adaptive remapping (registry-driven re-solves) |
//!
//! ## Solver registry and shared context
//!
//! All mapping algorithms register behind [`mapping::Solver`] and are
//! enumerated by [`mapping::registry`] / looked up by [`mapping::solver`].
//! Each receives a [`mapping::SolveContext`], which lazily caches the
//! network's routed metric closure (all-pairs cheapest transfer trees,
//! keyed by payload size) in a thread-safe sharded
//! [`mapping::MetricClosure`]. Build one context per
//! [`Instance`](mapping::Instance) and run any number of algorithms
//! against it — from as many threads as you like — and the all-pairs
//! Dijkstra work is paid once per instance. Contexts built with
//! [`mapping::SolveContext::with_threads`] pre-build the routed DPs' trees
//! in parallel, and [`workloads::ClosureBank`] carries a finished closure
//! to later instances that share the same network:
//!
//! ```
//! # use elpc::prelude::*;
//! # let mut b = Network::builder();
//! # let src = b.add_node(5_000.0).unwrap();
//! # let relay = b.add_node(20_000.0).unwrap();
//! # let dst = b.add_node(2_000.0).unwrap();
//! # b.add_link(src, relay, 622.0, 1.0).unwrap();
//! # b.add_link(relay, dst, 100.0, 5.0).unwrap();
//! # let network = b.build().unwrap();
//! # let pipeline = Pipeline::from_stages(5e6, &[(2.0, 1e6)], 0.5).unwrap();
//! let inst = Instance::new(&network, &pipeline, src, dst).unwrap();
//! let ctx = elpc::mapping::SolveContext::new(inst, CostModel::default());
//! for entry in elpc::mapping::registry() {
//!     let _ = entry.solve(&ctx); // all routed solvers share one closure
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use elpc_extensions as extensions;
pub use elpc_mapping as mapping;
pub use elpc_netgraph as netgraph;
pub use elpc_netsim as netsim;
pub use elpc_pipeline as pipeline;
pub use elpc_simcore as simcore;
pub use elpc_workloads as workloads;

/// The types most programs need, in one import.
pub mod prelude {
    pub use elpc_mapping::{
        CostModel, DelaySolution, Instance, Mapping, MappingError, RateSolution,
    };
    pub use elpc_netgraph::{EdgeId, NodeId};
    pub use elpc_netsim::{Link, Network, Node};
    pub use elpc_pipeline::{Module, Pipeline};
}
