//! Offline stand-in for the `crossbeam` crate: [`scope`], implemented over
//! `std::thread::scope` (stable since 1.63), plus the multi-producer
//! multi-consumer [`channel`] subset the serving worker pool pulls jobs
//! from. Deques and epochs are out of scope.

use std::any::Any;

pub mod channel;

/// Error payload of a panicked scope, mirroring crossbeam's signature.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to every spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// nested spawning works, matching crossbeam's API shape.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before returning. Returns `Err` with the panic payload
/// when the closure or an unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
