//! The `crossbeam::channel` subset this workspace uses: an unbounded
//! multi-producer **multi-consumer** channel. Implemented over
//! `std::sync::mpsc` with the receiver behind an `Arc<Mutex<…>>`, so
//! cloned receivers compete for messages exactly like crossbeam's — each
//! message is delivered to exactly one receiver, which is what a
//! work-pulling worker pool needs.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message like crossbeam's.
#[derive(Debug)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// The sending half; clone one per producer.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Enqueues a message; fails only when every receiver is dropped.
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
    }
}

/// The receiving half; clone one per consumer. Clones *share* the queue —
/// each message goes to exactly one of them.
pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let rx = self.0.lock().unwrap_or_else(|e| e.into_inner());
        rx.recv().map_err(|_| RecvError)
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let rx = self.0.lock().unwrap_or_else(|e| e.into_inner());
        rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// An unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_is_consumed_exactly_once() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        let consumed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for mut c in consumed {
            seen.append(&mut c);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
    }
}
