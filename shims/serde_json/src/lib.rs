//! Offline stand-in for `serde_json`: prints and parses the [`serde::Value`]
//! tree produced by the serde shim. Supports the API surface this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`].

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Num(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
            write_string(out, &fields[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &fields[i].1, indent, level + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // keep a float marker so round trips stay floats
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // consume one multi-byte UTF-8 code point; validate only
                    // its own bytes (validating the whole remaining input per
                    // character would make string parsing quadratic)
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8".into())),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error("invalid UTF-8".into()))?;
                    let c = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8".into()))?
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(c);
                    self.pos += len;
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Digit strings beyond i128 range are large floats: Rust's
                // `Display` for f64 never uses exponent notation, so e.g.
                // 2.8e164 serializes as a 165-digit integer literal. Fall
                // back to f64 (shortest-repr parsing recovers the exact
                // bit pattern) instead of rejecting our own output.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| Error(format!("invalid integer `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multibyte_strings_roundtrip_through_the_bytewise_decoder() {
        // 2-, 3-, and 4-byte code points survive the per-character decoder
        // (which validates only its own bytes, keeping parsing linear)
        let s = "π → 🦀 — ñ\u{1F600}中";
        let json = to_string(s).expect("serialize");
        let back: String = from_str(&json).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // regression guard for the quadratic re-validation bug: a ~1 MiB
        // string must parse in well under a second even in debug builds
        let s: String = "αβγδε ascii ".repeat(60_000);
        let json = to_string(&s).expect("serialize");
        let t = std::time::Instant::now();
        let back: String = from_str(&json).expect("parse");
        assert_eq!(back.len(), s.len());
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "string parsing regressed to quadratic: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn huge_finite_floats_roundtrip_exactly() {
        // Display for f64 prints ≥1e15 magnitudes as bare digit strings
        // (no exponent); parsing must fall back to f64 past i128 range.
        for f in [2.8479602678411194e164, 1e300, -9.9e200, 1.8e19, -4.2e38] {
            let mut out = String::new();
            write_f64(&mut out, f);
            let v = from_str::<f64>(&out).expect("own float output parses");
            assert_eq!(v.to_bits(), f.to_bits(), "{out}");
            let mut again = String::new();
            write_f64(&mut again, v);
            assert_eq!(again, out);
        }
    }
}
