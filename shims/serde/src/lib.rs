//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate provides the small slice of serde's surface the workspace
//! actually uses: `#[derive(Serialize, Deserialize)]` plus the trait pair,
//! realized over an owned JSON-like [`Value`] tree. The companion
//! `serde_json` shim prints and parses that tree.
//!
//! The data model intentionally mirrors serde's JSON mapping so swapping the
//! real crates back in later is a manifest-only change:
//!
//! * named structs → objects keyed by field name;
//! * newtype structs → the inner value, transparently;
//! * tuple structs → arrays;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → externally tagged objects
//!   `{"Variant": payload}`;
//! * `Option` → the value or `null`; non-finite floats → `null`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An owned, ordered JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (kept exact so `u64` seeds survive round trips).
    Int(i128),
    /// Finite floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// The object entries, or an error naming what was found instead.
    pub fn as_obj(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Obj(fields) => Ok(fields),
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }

    /// The array elements, or an error.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Helper for "expected X" errors.
    pub fn expected(what: &str) -> Self {
        Error(format!("expected {what}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- integers

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Num(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected integer for {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}
impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(Error(format!("expected integer, found {}", other.kind()))),
        }
    }
}

// ------------------------------------------------------------------ floats

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Num(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite round trip
                    other => Err(Error(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            other => Err(Error(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// --------------------------------------------------------------- adapters

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // JSON keys are strings; render non-string keys through their value
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::Int(i) => i.to_string(),
                        Value::Num(f) => f.to_string(),
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr()?;
                let want = [$($i),+].len();
                if items.len() != want {
                    return Err(Error(format!(
                        "expected {want}-tuple, found array of {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}
impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(T::from_value(v.field("start")?)?..T::from_value(v.field("end")?)?)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, found {}", other.kind()))),
        }
    }
}
