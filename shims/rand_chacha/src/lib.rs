//! Offline stand-in for `rand_chacha`, built on a genuine ChaCha8 block
//! function (Bernstein 2008), so the statistical quality matches upstream
//! even though the exact output stream (and therefore any value pinned to a
//! particular seed) does not.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a 64-bit state.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    /// Builds from a full 32-byte key with zero counter and nonce.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            input,
            block: [0; 16],
            word: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // two ChaCha double-rounds per iteration → 8 rounds total
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = x[i].wrapping_add(self.input[i]);
        }
        // 64-bit block counter in words 12..14
        let counter = (self.input[12] as u64 | ((self.input[13] as u64) << 32)).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // expand the 64-bit state into a 32-byte key with SplitMix64
        let mut s = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_uniformly_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
            let i: usize = rng.gen_range(2usize..=12);
            assert!((2..=12).contains(&i));
        }
    }
}
