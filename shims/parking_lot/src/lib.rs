//! Offline stand-in for `parking_lot`: the guard-returning (non-poisoning)
//! `Mutex`/`RwLock` API over `std::sync` primitives. A poisoned std lock
//! (a panic while held) is unwrapped into a panic here, which matches
//! parking_lot's practical behavior for this workspace's usage.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with a guard-returning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with guard-returning methods.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_api() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_guard_api() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
