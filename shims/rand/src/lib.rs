//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] — over a minimal [`RngCore`]. Streams are *not*
//! bit-compatible with upstream rand; every consumer in this repository is
//! seeded and self-consistent, so only determinism matters, and pinned
//! regression values were re-derived against these generators.

/// Low-level uniform 64-bit source.
pub trait RngCore {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (floats are
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range, like upstream rand.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Self: Sized,
        Rge: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry point (only the `seed_from_u64` form is used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard-distribution sampling per type.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
