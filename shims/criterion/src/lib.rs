//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface this workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`) with a deliberately simple
//! protocol: a short warm-up, then timed batches until the measurement
//! budget is spent. Each group writes `BENCH_<group>.json` into the current
//! working directory so results are tracked across runs.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (tests/benches import it from
/// `std::hint` in this workspace, but older code paths may use this one).
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
            throughput: None,
            results: Vec::new(),
        }
    }

    /// One-off benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Bare parameter identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (recorded in the JSON artifact).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One measured benchmark.
struct BenchResult {
    id: String,
    mean_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let (mean_ns, iters) =
            run_bench(self.warm_up, self.measurement, self.sample_size, |b| f(b));
        eprintln!(
            "bench {:<40} {:>14.1} ns/iter ({} iters)",
            format!("{}/{}", self.name, id),
            mean_ns,
            iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            iters,
            throughput: self.throughput,
        });
        self
    }

    /// Benchmarks a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Writes the group's `BENCH_<name>.json` artifact and prints a summary.
    pub fn finish(&mut self) {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name);
        json.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let tp = match r.throughput {
                Some(Throughput::Elements(n)) => format!(", \"elements\": {n}"),
                Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                None => String::new(),
            };
            let _ = write!(
                json,
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}{}}}",
                r.id, r.mean_ns, r.iters, tp
            );
            json.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]\n}\n");
        let path = format!("BENCH_{}.json", self.name.replace(['/', ' '], "_"));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("(could not write {path}: {e})");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times, accumulating elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut run: impl FnMut(&mut Bencher),
) -> (f64, u64) {
    // warm-up: single iterations until the budget is spent (at least once)
    let warm_start = Instant::now();
    let mut per_iter;
    let mut warm_iters = 0u64;
    loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
        if warm_start.elapsed() >= warm_up || warm_iters >= 10 {
            break;
        }
    }
    // measurement: sample_size batches sized to fill the budget
    let per_sample = measurement / sample_size as u32;
    let iters_per_sample =
        ((per_sample.as_secs_f64() / per_iter.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let deadline = Instant::now() + measurement;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
        if Instant::now() >= deadline {
            break;
        }
    }
    let mean_ns = if total_iters > 0 {
        total.as_nanos() as f64 / total_iters as f64
    } else {
        f64::NAN
    };
    (mean_ns, total_iters)
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
