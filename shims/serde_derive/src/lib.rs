//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build environment
//! has no `syn`/`quote`). The parser handles exactly the shapes this
//! workspace derives on: plain structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like, with optional simple type
//! parameters (`struct Graph<N, E> { ... }`). Bounds, lifetimes, and
//! where-clauses are out of scope and will fail loudly rather than silently
//! misbehave.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: named (`Some(name)`) or positional (`None`).
struct Field {
    name: Option<String>,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        generics: Vec<String>,
        shape: Shape,
    },
    Enum {
        name: String,
        generics: Vec<String>,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { shape, .. } => serialize_shape(shape, "self", None),
        Item::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&serialize_variant_arm(&item_name(&item), v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    let (name, generics) = (item_name(&item), item_generics(&item));
    let (impl_generics, ty_generics) = split_generics(generics, "serde::Serialize");
    format!(
        "impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, shape, .. } => deserialize_shape(name, shape),
        Item::Enum { name, variants, .. } => deserialize_enum(name, variants),
    };
    let (name, generics) = (item_name(&item), item_generics(&item));
    let (impl_generics, ty_generics) = split_generics(generics, "serde::Deserialize");
    format!(
        "impl{impl_generics} serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> String {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    }
}

fn item_generics(item: &Item) -> &[String] {
    match item {
        Item::Struct { generics, .. } | Item::Enum { generics, .. } => generics,
    }
}

/// `(impl generics with bounds, bare type generics)`.
fn split_generics(generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        (String::new(), String::new())
    } else {
        let with_bounds: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (
            format!("<{}>", with_bounds.join(", ")),
            format!("<{}>", generics.join(", ")),
        )
    }
}

// ------------------------------------------------------------ serialization

/// Serializes a shape given an accessor prefix: `self` (struct fields become
/// `self.name` / `self.0`) or `None` prefix with explicit bindings (enum
/// variants bind fields to `__f0`, `__f1`, … or their names).
fn serialize_shape(shape: &Shape, this: &str, bindings: Option<&[String]>) -> String {
    match shape {
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Tuple(fields) => {
            let exprs: Vec<String> = (0..fields.len())
                .map(|i| match bindings {
                    Some(b) => format!("serde::Serialize::to_value({})", b[i]),
                    None => format!("serde::Serialize::to_value(&{this}.{i})"),
                })
                .collect();
            if exprs.len() == 1 {
                // newtype: serialize transparently as the inner value
                exprs.into_iter().next().expect("one element")
            } else {
                format!("serde::Value::Arr(vec![{}])", exprs.join(", "))
            }
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let name = f.name.as_deref().expect("named field");
                    let access = match bindings {
                        Some(b) => b[i].clone(),
                        None => format!("&{this}.{name}"),
                    };
                    format!("(\"{name}\".to_string(), serde::Serialize::to_value({access}))")
                })
                .collect();
            format!("serde::Value::Obj(vec![{}])", entries.join(", "))
        }
    }
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => {
            format!("{enum_name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n")
        }
        Shape::Tuple(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            let payload = serialize_shape(&v.shape, "", Some(&binds));
            format!(
                "{enum_name}::{vname}({}) => serde::Value::Obj(vec![(\"{vname}\".to_string(), {payload})]),\n",
                binds.join(", ")
            )
        }
        Shape::Named(fields) => {
            let names: Vec<String> = fields
                .iter()
                .map(|f| f.name.clone().expect("named field"))
                .collect();
            let payload = serialize_shape(&v.shape, "", Some(&names));
            format!(
                "{enum_name}::{vname} {{ {} }} => serde::Value::Obj(vec![(\"{vname}\".to_string(), {payload})]),\n",
                names.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------- deserialization

fn deserialize_shape(path: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("{{ let _ = v; Ok({path}) }}"),
        Shape::Tuple(fields) if fields.len() == 1 => {
            format!("Ok({path}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(fields) => {
            let n = fields.len();
            let elems: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = v.as_arr()?;\n\
                   if __items.len() != {n} {{\n\
                       return Err(serde::Error(format!(\"expected {n} elements, found {{}}\", __items.len())));\n\
                   }}\n\
                   Ok({path}({})) }}",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let name = f.name.as_deref().expect("named field");
                    format!("{name}: serde::Deserialize::from_value(v.field(\"{name}\")?)?")
                })
                .collect();
            format!("Ok({path} {{ {} }})", inits.join(", "))
        }
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"));
                // also accept the externally-tagged object form
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{ let _ = __payload; return Ok({name}::{vname}); }}\n"
                ));
            }
            shape => {
                let body = deserialize_shape(&format!("{name}::{vname}"), shape);
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{ let v = __payload; return {body}; }}\n"
                ));
            }
        }
    }
    format!(
        "{{\n\
           if let serde::Value::Str(__s) = v {{\n\
               match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
           }}\n\
           if let serde::Value::Obj(__fields) = v {{\n\
               if __fields.len() == 1 {{\n\
                   let (__tag, __payload) = &__fields[0];\n\
                   match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
               }}\n\
           }}\n\
           Err(serde::Error(format!(\"no variant of {name} matched\")))\n\
         }}"
    )
}

// ----------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unsupported struct body: {other:?}"),
            };
            Item::Struct {
                name,
                generics,
                shape,
            }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                generics,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parses `<A, B, ...>` collecting bare type-parameter names. Bounds and
/// defaults inside the angle brackets are skipped; lifetimes are rejected
/// (no derived type in this workspace carries one).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*pos) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *pos += 1;
    let mut depth = 1i32;
    let mut expect_param = true;
    while let Some(tt) = tokens.get(*pos) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetimes on derived types are unsupported")
            }
            TokenTree::Ident(id) if expect_param && depth == 1 => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    panic!("serde_derive: unbalanced generics");
}

/// Splits a field-list token stream on top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut pos = 0usize;
            skip_attrs_and_vis(&chunk, &mut pos);
            let name = expect_ident(&chunk, &mut pos);
            Field { name: Some(name) }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|_| Field { name: None })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut pos = 0usize;
            skip_attrs_and_vis(&chunk, &mut pos);
            let name = expect_ident(&chunk, &mut pos);
            let shape = match chunk.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                None => Shape::Unit,
                other => panic!("serde_derive: unsupported variant body: {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}
