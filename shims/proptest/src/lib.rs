//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`], and [`any`].
//!
//! Semantics: each test runs `cases` times with values drawn from a
//! deterministic per-test RNG (seeded from the test's module path + name),
//! so failures reproduce exactly. There is no shrinking — a failing case
//! reports its assertion directly.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure payload for property-test bodies that return `Result`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Proptest's "discard this case" is treated as a pass here.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// The underlying generator (used by strategy impls).
    pub fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }

    /// Seeds from a stable FNV-1a hash of the test's full name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Rng::gen::<f64>(&mut rng.0)
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical full-range strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Namespace mirroring `proptest::prop` (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max_exclusive: usize,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty length range");
            VecStrategy {
                elem,
                min: size.start,
                max_exclusive: size.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.rng_mut().gen_range(self.min..self.max_exclusive);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // the body may `return Ok(())` / `Err(TestCaseError)`
                    // early, or simply fall through with `()`
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("property test case failed: {__e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}
