//! Quickstart: build a small network and pipeline, solve both objectives,
//! compare every registered algorithm through one shared `SolveContext`,
//! and verify the answers by discrete-event execution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use elpc::mapping::{elpc_delay, elpc_rate, registry, SolveContext};
use elpc::prelude::*;
use elpc::simcore::{simulate, Workload};

fn main() {
    // --- the network: a small WAN with heterogeneous nodes and links ----
    //
    //      [0 src] --622 Mbps--> [1 cluster] --1000 Mbps--> [3 dst]
    //          \                                            /
    //           `------------ 45 Mbps ---- [2 archive] ----'
    let mut b = Network::builder();
    let src = b.add_node(2_000.0).unwrap(); // a storage server
    let cluster = b.add_node(50_000.0).unwrap(); // a compute cluster
    let archive = b.add_node(1_000.0).unwrap(); // a slow archive host
    let dst = b.add_node(5_000.0).unwrap(); // the user's workstation
    b.add_link(src, cluster, 622.0, 1.0).unwrap();
    b.add_link(cluster, dst, 1000.0, 0.5).unwrap();
    b.add_link(src, archive, 45.0, 10.0).unwrap();
    b.add_link(archive, dst, 45.0, 10.0).unwrap();
    b.add_link(cluster, archive, 155.0, 3.0).unwrap();
    let network = b.build().unwrap();

    // --- the pipeline: source → filter → render → display --------------
    let pipeline = Pipeline::from_stages(
        2e7,                       // the source holds a 20 MB dataset
        &[(3.0, 4e6), (6.0, 1e6)], // filter shrinks it; render is heavy
        0.5,                       // the display stage is light
    )
    .unwrap();

    let inst = Instance::new(&network, &pipeline, src, dst).unwrap();
    let cost = CostModel::default();

    // --- interactive objective: minimum end-to-end delay ---------------
    let delay = elpc_delay::solve(&inst, &cost).unwrap();
    println!("minimum end-to-end delay: {:.1} ms", delay.delay_ms);
    println!("  path (node per group): {:?}", delay.mapping.path());
    println!("  modules per group:     {:?}", delay.mapping.group_sizes());
    for stage in cost.stage_times(&inst, &delay.mapping).unwrap() {
        match stage {
            elpc::mapping::Stage::Compute {
                node, modules, ms, ..
            } => {
                println!("  compute modules {modules:?} on node {node}: {ms:.1} ms")
            }
            elpc::mapping::Stage::Transfer { bytes, ms, .. } => {
                println!("  transfer {bytes:.0} B: {ms:.1} ms")
            }
        }
    }

    // --- streaming objective: maximum frame rate ------------------------
    let rate = elpc_rate::solve(&inst, &cost).unwrap();
    println!(
        "\nmaximum frame rate: {:.2} fps (bottleneck {:.1} ms)",
        rate.frame_rate_fps(),
        rate.bottleneck_ms
    );
    println!("  path: {:?}", rate.mapping.path());

    // --- every registered algorithm, one shared metric-closure cache ----
    let ctx = SolveContext::new(inst, cost);
    println!("\nall registered solvers (shared SolveContext):");
    for entry in registry() {
        match entry.solve(&ctx) {
            Ok(sol) => println!(
                "  {:<20} {:?}  {:>10.1} ms",
                entry.name(),
                entry.objective(),
                sol.objective_ms
            ),
            Err(e) => println!("  {:<20} {e}", entry.name()),
        }
    }
    let stats = ctx.closure().stats();
    println!(
        "  metric closure: {} Dijkstra runs, {} served from cache ({:.0}% hit rate)",
        stats.misses,
        stats.hits,
        stats.hit_rate() * 100.0
    );

    // --- check both answers against the discrete-event simulator --------
    let report = simulate(&inst, &cost, &delay.mapping, Workload::single()).unwrap();
    println!(
        "\nsimulated single-dataset delay: {:.1} ms (analytic {:.1} ms)",
        report.end_to_end_delay_ms(0).unwrap(),
        delay.delay_ms
    );

    let report = simulate(&inst, &cost, &rate.mapping, Workload::stream(60)).unwrap();
    println!(
        "simulated steady frame rate:    {:.2} fps (analytic {:.2} fps)",
        report.steady_rate_fps().unwrap(),
        rate.frame_rate_fps()
    );
    println!("\nbusiest resources:");
    let mut utils = report.utilizations();
    utils.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, u) in utils.iter().take(3) {
        println!("  {name}: {:.0}% busy", u * 100.0);
    }
}
