//! Adaptive remapping under time-varying resources — the §5 future-work
//! direction, exercised end to end: link bandwidths and node availability
//! drift over a simulated hour, a control loop re-runs the ELPC-delay DP
//! each epoch, and hysteresis decides when switching mappings is worth it.
//!
//! Also demonstrates the measurement substrate: the "operator" first
//! estimates link parameters from noisy probes (Wu & Rao's regression
//! method) instead of reading ground truth.
//!
//! ```text
//! cargo run --example adaptive_remapping
//! ```

use elpc::extensions::adaptive::{run_delay_adaptation, AdaptiveConfig};
use elpc::netsim::dynamics::{DynamicNetwork, LoadModel};
use elpc::netsim::measure::{estimate_link, ProbePlan};
use elpc::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // --- measurement: estimate a WAN link from probes -------------------
    let truth = Link::new(622.0, 12.0);
    let plan = ProbePlan {
        repeats: 25,
        noise_frac: 0.05,
        ..ProbePlan::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let est = estimate_link(&truth, &plan, &mut rng).unwrap();
    println!("=== link estimation from {} noisy probes ===", est.samples);
    println!(
        "true bw 622.0 Mbps / MLD 12.0 ms → estimated {:.1} Mbps / {:.1} ms (R² = {:.4})\n",
        est.bw_mbps, est.mld_ms, est.r_squared
    );

    // --- the drifting network ------------------------------------------
    // two candidate compute sites; site A degrades on a diurnal cycle
    let mut b = Network::builder();
    let src = b.add_node(3_000.0).unwrap();
    let site_a = b.add_node(100_000.0).unwrap();
    let site_b = b.add_node(60_000.0).unwrap();
    let dst = b.add_node(5_000.0).unwrap();
    b.add_link(src, site_a, 1000.0, 1.0).unwrap(); // link 0
    b.add_link(site_a, dst, 1000.0, 1.0).unwrap(); // link 1
    b.add_link(src, site_b, est.to_link().bw_mbps, est.to_link().mld_ms)
        .unwrap(); // link 2: the measured link
    b.add_link(site_b, dst, 622.0, 8.0).unwrap(); // link 3
    let network = b.build().unwrap();

    let hour_ms = 3.6e6;
    let node_models = vec![
        LoadModel::Constant(1.0),
        // site A: load swings take away up to 90% of its capacity
        LoadModel::Sinusoid {
            period_ms: hour_ms / 2.0,
            amplitude: 0.9,
            phase_ms: 0.0,
        },
        LoadModel::RandomEpochs {
            epoch_ms: hour_ms / 20.0,
            floor: 0.7,
            seed: 7,
        },
        LoadModel::Constant(1.0),
    ];
    let link_models = vec![LoadModel::Constant(1.0); 4];
    let dyn_net = DynamicNetwork::new(network, node_models, link_models).unwrap();

    let pipeline = Pipeline::from_stages(1e7, &[(5.0, 2e6), (3.0, 5e5)], 0.5).unwrap();
    let cost = CostModel::default();

    // --- run the control loop at several hysteresis settings ------------
    println!("=== one simulated hour, re-planning every 3 min ===");
    println!(
        "{:<12} {:>9} {:>14} {:>13} {:>9}",
        "hysteresis", "switches", "adaptive (ms)", "static (ms)", "gain"
    );
    for hysteresis in [0.0, 0.05, 0.25, 1.0] {
        let report = run_delay_adaptation(
            &dyn_net,
            &pipeline,
            src,
            dst,
            &cost,
            AdaptiveConfig {
                period_ms: hour_ms / 20.0,
                hysteresis,
                switch_cost_ms: 50.0,
            },
            hour_ms,
        )
        .unwrap();
        println!(
            "{:<12} {:>9} {:>14.1} {:>13.1} {:>8.1}%",
            format!("{:.0}%", hysteresis * 100.0),
            report.switches,
            report.adaptive_mean_ms,
            report.static_mean_ms,
            report.improvement() * 100.0
        );
    }

    // the generic entry point takes any registered minimum-delay solver —
    // here the routed-overlay DP instead of the strict default
    println!("\nepoch detail at 5% hysteresis (routed-overlay re-mapping):");
    let report = elpc::extensions::adaptive::run_adaptation(
        &dyn_net,
        &pipeline,
        src,
        dst,
        &cost,
        AdaptiveConfig {
            period_ms: hour_ms / 10.0,
            hysteresis: 0.05,
            switch_cost_ms: 50.0,
        },
        hour_ms,
        elpc::mapping::solver("elpc_delay_routed").expect("registered"),
    )
    .unwrap();
    for e in &report.epochs {
        println!(
            "  t={:>7.0}s  best {:>8.1} ms  adaptive {:>8.1} ms  static {:>8.1} ms{}",
            e.t_ms / 1000.0,
            e.candidate_delay_ms,
            e.adaptive_delay_ms,
            e.static_delay_ms,
            if e.switched { "  ← switched" } else { "" }
        );
    }
}
