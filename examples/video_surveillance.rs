//! The paper's second motivating application (§1): streaming video-based
//! monitoring — feature extraction, facial reconstruction, pattern
//! recognition, data mining, and identity matching over continuously
//! captured frames.
//!
//! The objective is **maximum frame rate** (Eq. 2): keep the stream smooth
//! by minimizing the bottleneck stage. This example also demonstrates the
//! §5 extension — allowing node reuse (module grouping) — and shows when
//! grouping beats the paper's one-module-per-node mapping.
//!
//! ```text
//! cargo run --example video_surveillance
//! ```

use elpc::extensions::reuse_rate;
use elpc::mapping::{elpc_rate, exact, greedy};
use elpc::pipeline::scenarios;
use elpc::prelude::*;
use elpc::simcore::{simulate, Workload};

/// An airport deployment: camera gateway, three edge servers in a ring
/// with cross links, and the security operations center.
fn build_edge_network() -> (Network, NodeId, NodeId) {
    let mut b = Network::builder();
    let camera = b.add_node(2_000.0).unwrap(); // camera gateway
    let edge_a = b.add_node(40_000.0).unwrap();
    let edge_b = b.add_node(25_000.0).unwrap();
    let edge_c = b.add_node(60_000.0).unwrap();
    let edge_d = b.add_node(15_000.0).unwrap();
    let soc = b.add_node(10_000.0).unwrap(); // operations center
    b.add_link(camera, edge_a, 1000.0, 0.2).unwrap();
    b.add_link(camera, edge_b, 1000.0, 0.2).unwrap();
    b.add_link(edge_a, edge_b, 10_000.0, 0.1).unwrap();
    b.add_link(edge_a, edge_c, 10_000.0, 0.1).unwrap();
    b.add_link(edge_b, edge_c, 10_000.0, 0.1).unwrap();
    b.add_link(edge_b, edge_d, 10_000.0, 0.1).unwrap();
    b.add_link(edge_d, edge_c, 10_000.0, 0.1).unwrap();
    b.add_link(edge_c, soc, 622.0, 1.0).unwrap();
    b.add_link(edge_d, soc, 622.0, 1.0).unwrap();
    (b.build().unwrap(), camera, soc)
}

fn main() {
    let (network, camera, soc) = build_edge_network();
    let cost = CostModel::default();
    let pipeline = scenarios::video_surveillance_default();

    let inst = Instance::new(&network, &pipeline, camera, soc).unwrap();

    println!("=== streaming video surveillance ===\n");
    println!(
        "pipeline: {} modules over {} nodes / {} links\n",
        pipeline.len(),
        network.node_count(),
        network.link_count()
    );

    // the paper's no-reuse mapping (one module per node)
    let one_to_one = elpc_rate::solve(&inst, &cost).unwrap();
    println!(
        "ELPC (no reuse):    {:>7.2} fps  bottleneck {:>8.1} ms  path {:?}",
        one_to_one.frame_rate_fps(),
        one_to_one.bottleneck_ms,
        one_to_one.mapping.path()
    );

    // ground truth for this small instance
    let optimal = exact::max_rate(&inst, &cost, exact::ExactLimits::default()).unwrap();
    println!(
        "exact (no reuse):   {:>7.2} fps  bottleneck {:>8.1} ms",
        elpc::netsim::units::frame_rate_fps(optimal.bottleneck_ms),
        optimal.bottleneck_ms
    );

    // greedy baseline
    match greedy::solve_max_rate(&inst, &cost) {
        Ok(g) => println!(
            "Greedy (no reuse):  {:>7.2} fps  bottleneck {:>8.1} ms",
            g.frame_rate_fps(),
            g.bottleneck_ms
        ),
        Err(e) => println!("Greedy (no reuse):  infeasible ({e})"),
    }

    // §5 extension: allow module grouping (node reuse)
    let grouped = reuse_rate::solve(&inst, &cost).unwrap();
    println!(
        "ELPC (with reuse):  {:>7.2} fps  bottleneck {:>8.1} ms  groups {:?} on {:?}",
        grouped.frame_rate_fps(),
        grouped.bottleneck_ms,
        grouped.mapping.group_sizes(),
        grouped.mapping.path()
    );

    // stream 120 frames through the chosen mapping and measure
    let report = simulate(&inst, &cost, &grouped.mapping, Workload::stream(120)).unwrap();
    println!(
        "\nsimulated steady rate: {:.2} fps over 120 frames",
        report.steady_rate_fps().unwrap()
    );

    // what if the cameras only capture at 20 fps? show queue-free latency
    let paced = simulate(
        &inst,
        &cost,
        &grouped.mapping,
        Workload::paced(60, 50.0), // 20 fps camera
    )
    .unwrap();
    println!(
        "at a 20 fps camera feed: per-frame latency {:.1} ms (flat = no queueing)",
        paced.end_to_end_delay_ms(30).unwrap()
    );
}
