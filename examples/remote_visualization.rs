//! The paper's first motivating application (§1, §2.1): interactive remote
//! visualization of Terascale Supernova Initiative-style simulation data.
//!
//! A scientist at a workstation steers a visualization of data held at a
//! remote supercomputing center. Every parameter update triggers the
//! pipeline source → filtering → isosurface extraction → rendering →
//! compositing → display, and the system must respond as fast as possible:
//! the **minimum end-to-end delay** objective with node reuse.
//!
//! ```text
//! cargo run --example remote_visualization
//! ```

use elpc::mapping::{elpc_delay, greedy, streamline};
use elpc::pipeline::scenarios;
use elpc::prelude::*;
use elpc::simcore::{simulate, Workload};

/// A plausible DOE-lab WAN: supercomputer site, two national-lab hubs, a
/// university campus, and the scientist's workstation.
fn build_wan() -> (Network, NodeId, NodeId) {
    let mut b = Network::builder();
    let supercomputer = b
        .push_node(Node {
            power: 500_000.0,
            ip: Some("160.91.0.10".into()),
            name: Some("ORNL supercomputer".into()),
        })
        .unwrap();
    let hub_east = b
        .push_node(Node {
            power: 80_000.0,
            ip: Some("198.124.42.1".into()),
            name: Some("ESnet hub east".into()),
        })
        .unwrap();
    let hub_mid = b
        .push_node(Node {
            power: 120_000.0,
            ip: Some("198.124.43.1".into()),
            name: Some("ESnet hub midwest".into()),
        })
        .unwrap();
    let campus = b
        .push_node(Node {
            power: 30_000.0,
            ip: Some("141.142.2.5".into()),
            name: Some("campus render cluster".into()),
        })
        .unwrap();
    let workstation = b
        .push_node(Node {
            power: 4_000.0,
            ip: Some("141.142.99.7".into()),
            name: Some("scientist workstation".into()),
        })
        .unwrap();
    // backbone links are fat; the last mile is thin
    b.add_link(supercomputer, hub_east, 10_000.0, 2.0).unwrap();
    b.add_link(hub_east, hub_mid, 10_000.0, 8.0).unwrap();
    b.add_link(hub_mid, campus, 1_000.0, 4.0).unwrap();
    b.add_link(campus, workstation, 100.0, 0.5).unwrap();
    b.add_link(hub_east, campus, 622.0, 12.0).unwrap(); // shortcut
    (b.build().unwrap(), supercomputer, workstation)
}

fn main() {
    let (network, src, dst) = build_wan();
    let cost = CostModel::default();

    println!("=== interactive remote visualization (TSI scenario) ===\n");
    for dataset_mb in [5.0, 50.0, 500.0] {
        let pipeline = scenarios::remote_visualization(dataset_mb * 1e6);
        let inst = Instance::new(&network, &pipeline, src, dst).unwrap();

        let strict = elpc_delay::solve(&inst, &cost).unwrap();
        let routed = elpc_delay::solve_routed(&inst, &cost).unwrap();
        let naive = greedy::solve_min_delay(&inst, &cost).unwrap();
        let global = streamline::solve_min_delay(&inst, &cost).unwrap();

        println!("dataset {dataset_mb:>5.0} MB:");
        println!(
            "  ELPC (routed)   {:>10.1} ms   hosts {:?}",
            routed.objective_ms,
            named_path(&network, &routed.assignment),
        );
        println!(
            "  ELPC (strict)   {:>10.1} ms   groups {:?} on {:?}",
            strict.delay_ms,
            strict.mapping.group_sizes(),
            named_path(&network, strict.mapping.path()),
        );
        println!("  Streamline      {:>10.1} ms", global.objective_ms);
        println!(
            "  Greedy          {:>10.1} ms   ({:.2}x routed ELPC)",
            naive.delay_ms,
            naive.delay_ms / routed.objective_ms
        );
        assert!(
            routed.objective_ms <= global.objective_ms + 1e-9,
            "routed ELPC is optimal under routed semantics"
        );

        // replay the strict mapping in the simulator to confirm Eq. 1
        let report = simulate(&inst, &cost, &strict.mapping, Workload::single()).unwrap();
        let sim = report.end_to_end_delay_ms(0).unwrap();
        assert!((sim - strict.delay_ms).abs() < 1e-6);
        println!("  (simulator confirms the strict mapping at {sim:.1} ms)\n");
    }

    println!("note how the heavy isosurface extraction rides the fast nodes");
    println!("while thin presentation data crosses the last-mile link.");
}

fn named_path(net: &Network, path: &[NodeId]) -> Vec<String> {
    path.iter()
        .map(|&v| {
            net.node(v)
                .ok()
                .and_then(|n| n.name.clone())
                .unwrap_or_else(|| format!("node {v}"))
        })
        .collect()
}
