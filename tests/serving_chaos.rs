//! Serving chaos suite: the daemon under failure and overload.
//!
//! Four properties, each pinned exactly:
//!
//! * **bounded queue** — with `queue_capacity` slots, a saturated daemon
//!   answers the overflow with a typed `Overloaded` (plus a
//!   `retry_after_ms` hint) instead of queueing without bound, and the
//!   accounting invariants hold exactly: `requests == accepted + shed`
//!   at all times, `accepted == completed + timeouts + errors` once
//!   drained, and `max_queue_depth <= queue_capacity`;
//! * **retry rides out overload** — a client under the seeded
//!   [`RetryPolicy`] backs off on shed replies and lands the request
//!   once capacity frees up;
//! * **restart survival** — killing and rebinding the daemon in the
//!   middle of a retrying closed-loop burst loses zero replies: every
//!   request is answered exactly once, by the old daemon or the new one;
//! * **pool survival** — bursts of error-answered requests (unknown
//!   solver) never shrink the worker pool or break the accounting.

use elpc_mapping::CostModel;
use elpc_serving::loadgen::{run_open_loop, LoadConfig};
use elpc_serving::{
    Client, ClientError, RetryPolicy, ServeError, Server, ServerConfig, SolveRequest,
};
use elpc_workloads::{InstanceSpec, ProblemInstance};
use std::path::PathBuf;
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("elpc-chaos-{}-{tag}.sock", std::process::id()))
}

/// A topology whose serial all-pairs closure build takes long enough to
/// hold the single worker busy while followers pile onto the queue.
fn slow_instance() -> ProblemInstance {
    InstanceSpec::sized(6, 300, 900).generate(77).expect("gen")
}

fn quick_instance() -> ProblemInstance {
    InstanceSpec::sized(4, 24, 60).generate(11).expect("gen")
}

fn solve_req(inst: &ProblemInstance) -> SolveRequest {
    SolveRequest {
        solver: "elpc_delay_routed".into(),
        cost: CostModel::default(),
        threads: 1,
        timeout_ms: None,
        instance: inst.clone(),
    }
}

/// One worker, one queue slot: while a slow cold build occupies the
/// worker, any further request is shed with a typed `Overloaded` reply —
/// deterministically, because the slot is provably held. After the
/// blocker completes, the next request is admitted again, and the final
/// statistics balance exactly.
#[test]
fn full_queue_sheds_with_typed_overloaded_and_exact_accounting() {
    let slow = slow_instance();
    let socket = socket_path("shed");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    std::thread::scope(|s| {
        let socket = &socket;
        let slow = &slow;
        // saturate the one queue slot with a no-deadline cold solve
        let blocker = s.spawn(move || {
            let mut client = Client::connect(socket).expect("connect");
            client.solve(solve_req(slow)).expect("blocker solve")
        });
        std::thread::sleep(Duration::from_millis(10));
        // the slot is held: this request must be shed, not queued
        let mut client = Client::connect(socket).expect("connect");
        match client.solve(solve_req(slow)) {
            Err(ClientError::Server(ServeError::Overloaded { retry_after_ms })) => {
                assert!(
                    retry_after_ms >= 10,
                    "the hint is clamped to a useful floor, got {retry_after_ms}"
                );
            }
            other => panic!("expected a shed Overloaded reply, got {other:?}"),
        }
        blocker.join().expect("thread");
        // capacity freed: the same client is admitted and served
        client.solve(solve_req(slow)).expect("post-shed solve");
    });

    let stats = server.shutdown();
    assert_eq!(stats.requests, 3, "blocker + shed + recovery");
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.shed, 1);
    assert_eq!(
        stats.requests,
        stats.accepted + stats.shed,
        "admission accounting must balance"
    );
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.timeouts + stats.errors,
        "drain accounting must balance"
    );
    assert_eq!(
        stats.max_queue_depth, 1,
        "the queue bound is exact: depth never exceeded capacity"
    );
}

/// A retrying client backs off on the shed reply (honoring its
/// `retry_after_ms` hint) and lands the solve once the blocker clears.
#[test]
fn retry_policy_rides_out_overload() {
    let slow = slow_instance();
    let socket = socket_path("retry");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let reply = std::thread::scope(|s| {
        let socket = &socket;
        let slow = &slow;
        let blocker = s.spawn(move || {
            let mut client = Client::connect(socket).expect("connect");
            client.solve(solve_req(slow)).expect("blocker solve")
        });
        std::thread::sleep(Duration::from_millis(10));
        let mut client = Client::connect(socket).expect("connect");
        let policy = RetryPolicy {
            max_attempts: 64,
            base_ms: 15,
            max_backoff_ms: 100,
            ..RetryPolicy::default()
        };
        let reply = client
            .solve_with_retry(&solve_req(slow), &policy)
            .expect("retry must outlast the blocker");
        blocker.join().expect("thread");
        reply
    });
    assert!(
        reply.banked,
        "the retried solve lands on the banked closure"
    );

    let stats = server.shutdown();
    assert!(stats.shed >= 1, "the first attempts must have been shed");
    assert_eq!(stats.completed, 2, "blocker + the retried request");
    assert_eq!(stats.requests, stats.accepted + stats.shed);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.timeouts + stats.errors
    );
}

/// Kill the daemon in the middle of a retrying closed-loop burst, rebind
/// it on the same socket, and require zero lost replies: every request
/// is answered exactly once, by one daemon or the other.
#[test]
fn killed_and_restarted_daemon_loses_no_replies() {
    let inst = quick_instance();
    let socket = socket_path("restart");
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(&socket, config.clone()).expect("bind");

    const REQUESTS: usize = 192;
    let cfg = LoadConfig {
        connections: 4,
        requests: REQUESTS,
        retry: Some(RetryPolicy {
            max_attempts: 16,
            base_ms: 20,
            max_backoff_ms: 500,
            ..RetryPolicy::default()
        }),
        ..LoadConfig::default()
    };
    let instances = [inst];

    let (report, first, finale) = std::thread::scope(|s| {
        let socket = &socket;
        let burst = s.spawn(|| run_open_loop(socket, &instances, &cfg));
        // kill the moment the burst demonstrably started, so most of the
        // stream still lies ahead of the restart
        while server.stats().completed == 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
        let first = server.shutdown();
        std::thread::sleep(Duration::from_millis(100));
        let restarted = Server::bind(socket, config.clone()).expect("rebind");
        let report = burst.join().expect("loadgen thread").expect("loadgen run");
        let finale = restarted.shutdown();
        (report, first, finale)
    });

    assert_eq!(report.lost, 0, "no reply may vanish across the restart");
    assert_eq!(
        report.ok, REQUESTS,
        "every request is answered exactly once (shed={} timeouts={} server_errors={})",
        report.shed, report.timeouts, report.server_errors
    );
    assert!(
        finale.completed > 0,
        "the restarted daemon must have served the tail of the burst"
    );
    assert!(
        first.completed + finale.completed >= REQUESTS as u64,
        "the two daemons together served at least every request"
    );
    // each daemon's own ledger balances
    for (tag, stats) in [("first", &first), ("restarted", &finale)] {
        assert_eq!(stats.requests, stats.accepted + stats.shed, "{tag}");
        assert_eq!(
            stats.accepted,
            stats.completed + stats.timeouts + stats.errors,
            "{tag}: drained ledger must balance"
        );
        assert_eq!(stats.queue_depth, 0, "{tag}: drain left work queued");
    }
}

/// Bursts of error-answered requests must not shrink the worker pool or
/// corrupt the counters: the daemon keeps serving, and the drained
/// ledger balances with the errors on the books.
#[test]
fn error_bursts_do_not_shrink_the_pool() {
    let inst = quick_instance();
    let socket = socket_path("errors");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    const BAD: usize = 24;
    let mut client = Client::connect(&socket).expect("connect");
    for k in 0..BAD {
        let mut req = solve_req(&inst);
        req.solver = format!("no_such_solver_{k}");
        match client.solve(req) {
            Err(ClientError::Server(ServeError::UnknownSolver { .. })) => {}
            other => panic!("expected UnknownSolver, got {other:?}"),
        }
        // the pool is still alive after every error
        client.solve(solve_req(&inst)).expect("good solve");
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, 2 * BAD as u64);
    assert_eq!(stats.errors, BAD as u64);
    assert_eq!(stats.completed, BAD as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.requests, stats.accepted + stats.shed);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.timeouts + stats.errors
    );
}
