//! Validates the committed benchmark artifacts under `crates/bench/`.
//!
//! The closure-scaling artifact is a reproducibility anchor: the `scaling`
//! bin regenerates it on full runs, CI's smoke run re-derives a truncated
//! version, and this suite pins the *committed* copy to the shape and
//! invariants downstream tooling relies on — so artifact bit-rot fails the
//! PR that caused it, not the next perf investigation.

use serde::Deserialize;
use std::path::Path;

/// Mirror of the `scaling` bin's row schema — the keys downstream plots
/// key on. Renaming a field there without regenerating the artifact (or
/// vice versa) fails this suite.
#[derive(Debug, Deserialize)]
struct Row {
    nodes: usize,
    links: usize,
    sources: usize,
    legacy_cold_ms: f64,
    csr_cold_ms: f64,
    speedup: f64,
    banked_solve_ms: f64,
    peak_rss_mb: f64,
}

#[derive(Debug, Deserialize)]
struct Artifact {
    group: String,
    rows: Vec<Row>,
}

fn bench_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench")
}

fn load() -> Artifact {
    let path = bench_dir().join("BENCH_closure_scaling.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()))
}

#[test]
fn closure_scaling_artifact_has_the_expected_shape() {
    let a = load();
    assert_eq!(a.group, "closure_scaling", "artifact group name is pinned");
    assert!(!a.rows.is_empty(), "at least one scaling row");
    for row in &a.rows {
        assert!(row.links > 0, "row n={} has links", row.nodes);
        assert!(row.legacy_cold_ms > 0.0);
        assert!(row.csr_cold_ms > 0.0);
        assert!(row.banked_solve_ms > 0.0);
        assert!(row.peak_rss_mb >= 0.0);
        let ratio = row.legacy_cold_ms / row.csr_cold_ms;
        assert!(
            (ratio - row.speedup).abs() < 1e-6 * row.speedup.max(1.0),
            "speedup column must equal the timing ratio (n={})",
            row.nodes
        );
    }
}

#[test]
fn closure_scaling_covers_the_scale_sweep() {
    let a = load();
    let nodes: Vec<usize> = a.rows.iter().map(|r| r.nodes).collect();
    // the scale-wall sweep: two orders of magnitude up to 10k nodes; the
    // 10k row existing with real timings is the "completed build" check
    assert_eq!(nodes, vec![100, 1000, 10_000], "nodes sweep is pinned");
    for r in &a.rows {
        // the all-sources closure: one tree per node
        assert_eq!(r.sources, r.nodes, "n={} warms every source", r.nodes);
    }
    // the headline row: the batched CSR path must beat the legacy lazy
    // path decisively at 1k nodes (measured ~2.5x on the reference
    // machine; 2x is the regression floor under timer noise)
    let k1 = &a.rows[1];
    assert!(
        k1.speedup >= 2.0,
        "1k-node CSR speedup regressed below 2x: {:.2}",
        k1.speedup
    );
}

#[test]
fn all_committed_bench_artifacts_parse() {
    // every committed BENCH_*.json must at least be valid JSON with a
    // group name — whatever bench family wrote it
    #[derive(Debug, Deserialize)]
    struct AnyGroup {
        group: String,
    }
    let mut seen = 0;
    for entry in std::fs::read_dir(bench_dir()).expect("bench dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            seen += 1;
            let text = std::fs::read_to_string(&path).expect("artifact readable");
            let v: AnyGroup =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
            assert!(!v.group.is_empty(), "{name} carries a group name");
        }
    }
    assert!(seen >= 5, "expected the committed artifact set, saw {seen}");
}
