//! Validates the committed benchmark artifacts under `crates/bench/`.
//!
//! The closure-scaling artifact is a reproducibility anchor: the `scaling`
//! bin regenerates it on full runs, CI's smoke run re-derives a truncated
//! version, and this suite pins the *committed* copy to the shape and
//! invariants downstream tooling relies on — so artifact bit-rot fails the
//! PR that caused it, not the next perf investigation.

use serde::Deserialize;
use std::path::Path;

/// Mirror of the `scaling` bin's row schema — the keys downstream plots
/// key on. Renaming a field there without regenerating the artifact (or
/// vice versa) fails this suite.
#[derive(Debug, Deserialize)]
struct Row {
    nodes: usize,
    links: usize,
    sources: usize,
    legacy_cold_ms: f64,
    csr_cold_ms: f64,
    speedup: f64,
    banked_solve_ms: f64,
    peak_rss_mb: f64,
}

#[derive(Debug, Deserialize)]
struct Artifact {
    group: String,
    rows: Vec<Row>,
}

fn bench_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench")
}

fn load() -> Artifact {
    let path = bench_dir().join("BENCH_closure_scaling.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()))
}

#[test]
fn closure_scaling_artifact_has_the_expected_shape() {
    let a = load();
    assert_eq!(a.group, "closure_scaling", "artifact group name is pinned");
    assert!(!a.rows.is_empty(), "at least one scaling row");
    for row in &a.rows {
        assert!(row.links > 0, "row n={} has links", row.nodes);
        assert!(row.legacy_cold_ms > 0.0);
        assert!(row.csr_cold_ms > 0.0);
        assert!(row.banked_solve_ms > 0.0);
        assert!(row.peak_rss_mb >= 0.0);
        let ratio = row.legacy_cold_ms / row.csr_cold_ms;
        assert!(
            (ratio - row.speedup).abs() < 1e-6 * row.speedup.max(1.0),
            "speedup column must equal the timing ratio (n={})",
            row.nodes
        );
    }
}

#[test]
fn closure_scaling_covers_the_scale_sweep() {
    let a = load();
    let nodes: Vec<usize> = a.rows.iter().map(|r| r.nodes).collect();
    // the scale-wall sweep: two orders of magnitude up to 10k nodes; the
    // 10k row existing with real timings is the "completed build" check
    assert_eq!(nodes, vec![100, 1000, 10_000], "nodes sweep is pinned");
    for r in &a.rows {
        // the all-sources closure: one tree per node
        assert_eq!(r.sources, r.nodes, "n={} warms every source", r.nodes);
    }
    // the headline row: the batched CSR path must beat the legacy lazy
    // path decisively at 1k nodes (measured ~2.5x on the reference
    // machine; 2x is the regression floor under timer noise)
    let k1 = &a.rows[1];
    assert!(
        k1.speedup >= 2.0,
        "1k-node CSR speedup regressed below 2x: {:.2}",
        k1.speedup
    );
}

/// Mirror of the `serving` bench's artifact schema — one latency/throughput
/// regime per bank temperature plus the headline ratio.
#[derive(Debug, Deserialize)]
struct ServingRegime {
    requests: usize,
    solves_per_sec: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Deserialize)]
struct ServingArtifact {
    group: String,
    solver: String,
    nodes: usize,
    links: usize,
    workers: usize,
    connections: usize,
    banked: ServingRegime,
    cold: ServingRegime,
    banked_over_cold: f64,
}

fn serving_regime_is_sane(tag: &str, r: &ServingRegime) {
    assert!(r.requests > 0, "{tag}: measured at least one request");
    assert!(r.solves_per_sec > 0.0, "{tag}: positive throughput");
    assert!(r.mean_ms > 0.0, "{tag}: positive mean latency");
    assert!(
        r.p50_ms <= r.p99_ms && r.p99_ms <= r.max_ms,
        "{tag}: percentiles must be ordered (p50 {} ≤ p99 {} ≤ max {})",
        r.p50_ms,
        r.p99_ms,
        r.max_ms
    );
}

#[test]
fn serving_artifact_shows_the_bank_amortizing_closures() {
    let path = bench_dir().join("BENCH_serving.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    let a: ServingArtifact = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()));

    assert_eq!(a.group, "serving", "artifact group name is pinned");
    assert!(!a.solver.is_empty(), "served solver is recorded");
    assert!(a.nodes > 0 && a.links > 0, "topology size is recorded");
    assert!(
        a.workers > 0 && a.connections > 0,
        "daemon shape is recorded"
    );
    serving_regime_is_sane("banked", &a.banked);
    serving_regime_is_sane("cold", &a.cold);

    let ratio = a.banked.solves_per_sec / a.cold.solves_per_sec;
    assert!(
        (ratio - a.banked_over_cold).abs() < 1e-6 * a.banked_over_cold.max(1.0),
        "banked_over_cold column must equal the throughput ratio"
    );
    // The serving tentpole's acceptance floor: checking a closure out of
    // the shared bank must beat rebuilding it per request by ≥5x on the
    // fixed-topology workload (measured ~11x on the reference machine).
    assert!(
        a.banked_over_cold >= 5.0,
        "banked throughput must be ≥5x cold, got {:.2}x",
        a.banked_over_cold
    );
}

/// Mirror of the `churn` bench's row schema — repair vs full rebuild under
/// link perturbations of the banked topology.
#[derive(Debug, Deserialize)]
struct ChurnRow {
    nodes: usize,
    links: usize,
    perturbed_links: usize,
    total_trees: usize,
    rebuilt_trees: usize,
    full_rebuild_ms: f64,
    repair_ms: f64,
    speedup: f64,
}

#[derive(Debug, Deserialize)]
struct ChurnArtifact {
    group: String,
    rows: Vec<ChurnRow>,
}

#[test]
fn churn_artifact_pins_the_repair_speedup_floor() {
    let path = bench_dir().join("BENCH_churn.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    let a: ChurnArtifact = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()));

    assert_eq!(a.group, "churn", "artifact group name is pinned");
    assert!(!a.rows.is_empty(), "at least one churn row");
    for row in &a.rows {
        let tag = format!("{}n/{} perturbed", row.nodes, row.perturbed_links);
        assert!(row.links > 0, "{tag}: links recorded");
        assert!(row.perturbed_links > 0, "{tag}: a churn row perturbs");
        assert!(row.total_trees > 0, "{tag}: closure is non-empty");
        assert!(
            row.rebuilt_trees <= row.total_trees,
            "{tag}: rebuilt set is a subset of the closure"
        );
        assert!(row.full_rebuild_ms > 0.0 && row.repair_ms > 0.0);
        let ratio = row.full_rebuild_ms / row.repair_ms;
        assert!(
            (ratio - row.speedup).abs() < 1e-6 * row.speedup.max(1.0),
            "{tag}: speedup column must equal the timing ratio"
        );
    }

    // the sweep shape the bench commits: 200- and 1000-node topologies
    // under 1/5/20-link perturbations
    let shape: Vec<(usize, usize)> = a
        .rows
        .iter()
        .map(|r| (r.nodes, r.perturbed_links))
        .collect();
    assert_eq!(
        shape,
        vec![
            (200, 1),
            (200, 5),
            (200, 20),
            (1000, 1),
            (1000, 5),
            (1000, 20)
        ],
        "churn sweep shape is pinned"
    );

    // The tentpole's acceptance floor: repairing after a ≤5-link
    // perturbation at 1000 nodes must beat a full rebuild by ≥5x
    // (measured ~39-46x on the reference machine).
    for row in a
        .rows
        .iter()
        .filter(|r| r.nodes == 1000 && r.perturbed_links <= 5)
    {
        assert!(
            row.speedup >= 5.0,
            "1000n/{}-link repair speedup regressed below 5x: {:.2}",
            row.perturbed_links,
            row.speedup
        );
    }
}

/// Mirror of the `lns` bench's artifact schema — gap-vs-budget curves for
/// the LNS delay solver on the Fig. 2 cases whose default-budget gap is
/// above 1.0.
#[derive(Debug, Deserialize)]
struct LnsTier {
    budget: usize,
    multiplier: usize,
    objective_ms: f64,
    gap: f64,
    elapsed_ms: f64,
}

#[derive(Debug, Deserialize)]
struct LnsRow {
    case: usize,
    modules: usize,
    nodes: usize,
    links: usize,
    routed_optimum_ms: f64,
    tiers: Vec<LnsTier>,
}

#[derive(Debug, Deserialize)]
struct LnsArtifact {
    group: String,
    baseline_budget: usize,
    rows: Vec<LnsRow>,
}

#[test]
fn lns_artifact_pins_the_gap_vs_budget_floor() {
    let path = bench_dir().join("BENCH_lns.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    let a: LnsArtifact = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()));

    assert_eq!(a.group, "lns", "artifact group name is pinned");
    assert_eq!(a.baseline_budget, 5000, "1x tier is the default budget");
    assert!(!a.rows.is_empty(), "at least one above-optimum case");
    for row in &a.rows {
        let tag = format!("case {}", row.case);
        assert!((1..=20).contains(&row.case), "{tag}: a Fig. 2 case number");
        assert!(
            row.modules > 0 && row.nodes > 0 && row.links > 0,
            "{tag}: dims recorded"
        );
        assert!(row.routed_optimum_ms > 0.0, "{tag}: positive optimum");
        let multipliers: Vec<usize> = row.tiers.iter().map(|t| t.multiplier).collect();
        assert_eq!(multipliers, vec![1, 10, 100], "{tag}: tier sweep is pinned");
        for t in &row.tiers {
            assert_eq!(t.budget, t.multiplier * a.baseline_budget, "{tag}");
            assert!(t.objective_ms.is_finite() && t.objective_ms > 0.0, "{tag}");
            assert!(t.elapsed_ms >= 0.0, "{tag}");
            // gap = objective / routed optimum, and a registry solver can
            // never beat the routed optimum
            let ratio = t.objective_ms / row.routed_optimum_ms;
            assert!(
                (ratio - t.gap).abs() < 1e-9 * t.gap.max(1.0),
                "{tag}: gap column must equal the objective ratio"
            );
            assert!(
                t.gap >= 1.0 - 1e-9,
                "{tag}: gap {} below the routed optimum",
                t.gap
            );
        }
        // the gap-improvement floor: a larger budget replays the smaller
        // run's deterministic prefix and only then keeps searching, so
        // the curve is monotone non-increasing (ulp reconciliation slack)
        for pair in row.tiers.windows(2) {
            assert!(
                pair[1].gap <= pair[0].gap + 1e-6,
                "{tag}: gap worsened with budget ({} -> {})",
                pair[0].gap,
                pair[1].gap
            );
        }
    }

    // The tentpole's acceptance floor: the hardest suite case (case 20,
    // m=100 n=220 l=2500) must close to ≤1.05 at the 10x tier — before
    // LNS the best metaheuristic left a 1.28 gap there (measured 1.0336
    // on the reference machine).
    let case20 = a
        .rows
        .iter()
        .find(|r| r.case == 20)
        .expect("case 20 is above optimum at 1x and must be in the artifact");
    assert_eq!(
        (case20.modules, case20.nodes, case20.links),
        (100, 220, 2500)
    );
    let ten_x = case20
        .tiers
        .iter()
        .find(|t| t.multiplier == 10)
        .expect("10x tier");
    assert!(
        ten_x.gap <= 1.05,
        "case 20 delay gap at 10x budget regressed above 1.05: {:.4}",
        ten_x.gap
    );
}

/// Mirror of the `faults` bench's artifact schema — time-to-recovery rows
/// plus the bounded-queue overload section.
#[derive(Debug, Deserialize)]
struct RecoveryRow {
    nodes: usize,
    links: usize,
    pipelines: usize,
    fault_events: usize,
    failed_links: usize,
    failed_nodes: usize,
    forced_remaps: usize,
    remapped: usize,
    trees_kept: usize,
    trees_rebuilt: usize,
    recovery_ms: f64,
    cold_resolve_ms: f64,
    speedup: f64,
}

#[derive(Debug, Deserialize)]
struct OverloadRow {
    offered_fraction: f64,
    offered_rps: f64,
    sent: usize,
    ok: usize,
    shed: usize,
    goodput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Debug, Deserialize)]
struct OverloadSection {
    solver: String,
    nodes: usize,
    links: usize,
    workers: usize,
    queue_capacity: usize,
    capacity_rps: f64,
    rows: Vec<OverloadRow>,
}

#[derive(Debug, Deserialize)]
struct FaultsArtifact {
    group: String,
    recovery: Vec<RecoveryRow>,
    overload: OverloadSection,
}

#[test]
fn faults_artifact_pins_recovery_speedup_and_overload_shedding() {
    let path = bench_dir().join("BENCH_faults.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed and readable: {e}", path.display()));
    let a: FaultsArtifact = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} must carry the expected keys: {e}", path.display()));

    assert_eq!(a.group, "faults", "artifact group name is pinned");
    assert!(!a.recovery.is_empty(), "at least one recovery row");
    for row in &a.recovery {
        let tag = format!("{}n/{} events", row.nodes, row.fault_events);
        assert!(row.links > 0 && row.pipelines > 0, "{tag}: shape recorded");
        assert!(
            row.failed_links + row.failed_nodes > 0,
            "{tag}: a recovery row must contain real removals"
        );
        assert!(
            row.forced_remaps >= 1,
            "{tag}: the scheduled host crash must force a failover"
        );
        assert!(row.remapped >= row.forced_remaps, "{tag}");
        assert!(row.trees_kept + row.trees_rebuilt > 0, "{tag}");
        assert!(row.recovery_ms > 0.0 && row.cold_resolve_ms > 0.0, "{tag}");
        let ratio = row.cold_resolve_ms / row.recovery_ms;
        assert!(
            (ratio - row.speedup).abs() < 1e-6 * row.speedup.max(1.0),
            "{tag}: speedup column must equal the timing ratio"
        );
        // The robustness tentpole's acceptance floor: repairing the bank
        // and re-solving only the affected pipelines must beat cold
        // re-solving everything by ≥3x on every committed row (measured
        // 6.7-8.9x on the reference machine).
        assert!(
            row.speedup >= 3.0,
            "{tag}: recovery speedup regressed below 3x: {:.2}",
            row.speedup
        );
    }
    // both topology scales are represented
    let scales: std::collections::BTreeSet<usize> = a.recovery.iter().map(|r| r.nodes).collect();
    assert!(scales.contains(&200) && scales.contains(&1000));

    let o = &a.overload;
    assert!(!o.solver.is_empty() && o.nodes > 0 && o.links > 0);
    assert!(
        o.workers > 0 && o.queue_capacity > 0,
        "bounded daemon shape"
    );
    assert!(o.capacity_rps > 0.0, "measured capacity recorded");
    let fractions: Vec<f64> = o.rows.iter().map(|r| r.offered_fraction).collect();
    assert_eq!(fractions, vec![0.5, 1.0, 2.0], "load sweep is pinned");
    for row in &o.rows {
        let tag = format!("{}x offered", row.offered_fraction);
        assert!(
            (row.offered_rps - o.capacity_rps * row.offered_fraction).abs() < 1e-6 * o.capacity_rps,
            "{tag}: offered rate is the capacity scaled by the fraction"
        );
        assert!(row.sent > 0 && row.ok > 0, "{tag}");
        assert!(row.ok + row.shed <= row.sent, "{tag}: reply accounting");
        assert!(row.goodput_rps > 0.0, "{tag}");
        assert!(row.p50_ms > 0.0 && row.p50_ms <= row.p99_ms, "{tag}");
    }
    let light = &o.rows[0];
    let overload = &o.rows[2];
    assert_eq!(light.shed, 0, "0.5x load must be shed-free");
    // the overload floor: past saturation the daemon sheds instead of
    // queueing without bound, so the p99 of served replies stays bounded
    // (measured ~91ms vs ~1100ms+ for an unbounded queue at this depth)
    assert!(
        overload.shed > 0,
        "2x offered load must shed on the bounded queue"
    );
    assert!(
        overload.p99_ms < 1_000.0,
        "2x-overload p99 must stay bounded by the queue cap, got {:.1}ms",
        overload.p99_ms
    );
    assert!(
        overload.goodput_rps >= 0.5 * o.capacity_rps,
        "goodput under overload must hold near capacity: {:.0}/s vs capacity {:.0}/s",
        overload.goodput_rps,
        o.capacity_rps
    );
}

#[test]
fn all_committed_bench_artifacts_parse() {
    // every committed BENCH_*.json must at least be valid JSON with a
    // group name — whatever bench family wrote it
    #[derive(Debug, Deserialize)]
    struct AnyGroup {
        group: String,
    }
    let mut seen = 0;
    for entry in std::fs::read_dir(bench_dir()).expect("bench dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            seen += 1;
            let text = std::fs::read_to_string(&path).expect("artifact readable");
            let v: AnyGroup =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
            assert!(!v.group.is_empty(), "{name} carries a group name");
        }
    }
    assert!(seen >= 9, "expected the committed artifact set, saw {seen}");
}
