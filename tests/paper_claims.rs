//! The paper's headline claims, as executable integration tests.
//!
//! Each test names the section it reproduces; together they are the
//! acceptance suite for the reproduction (EXPERIMENTS.md summarizes the
//! quantitative versions).

use elpc::mapping::{elpc_delay, elpc_rate, exact, CostModel, Instance, MappingError, NodeId};
use elpc::workloads::compare::run_case;
use elpc::workloads::{cases, InstanceSpec};

fn cost() -> CostModel {
    CostModel::default()
}

/// §3.1.1: the delay DP is optimal ("the final solution is optimal for a
/// given mapping problem") — certified against exhaustive search.
#[test]
fn claim_elpc_delay_optimality() {
    for seed in 0..10u64 {
        let owned = InstanceSpec::sized(4, 7, 12).generate(seed).unwrap();
        let inst = owned.as_instance();
        match (
            elpc_delay::solve(&inst, &cost()),
            exact::min_delay(&inst, &cost(), exact::ExactLimits::default()),
        ) {
            (Ok(dp), Ok(ex)) => {
                assert!(
                    (dp.delay_ms - ex.delay_ms).abs() <= 1e-6 * ex.delay_ms,
                    "seed {seed}: {} vs {}",
                    dp.delay_ms,
                    ex.delay_ms
                )
            }
            (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
            (a, b) => panic!("seed {seed}: {a:?} vs {b:?}"),
        }
    }
}

/// §3.1.2: the exact-hop problem reduces from Hamiltonian Path — the
/// reduction is executable and agrees with known HP instances.
#[test]
fn claim_np_completeness_reduction() {
    use elpc::netgraph::{Graph, NodeId};
    // the Petersen graph is Hamiltonian-connected enough for a positive
    // case; a star gives the negative case
    let mut g: Graph<(), ()> = Graph::new();
    let ns: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
    for w in ns.windows(2) {
        g.add_undirected_edge(w[0], w[1], ()).unwrap();
    }
    g.add_undirected_edge(ns[4], ns[0], ()).unwrap(); // C5 cycle
    assert!(exact::hamiltonian_to_ensp(&g, ns[0], ns[4]));
    let mut star: Graph<(), ()> = Graph::new();
    let hub = star.add_node(());
    let leaves: Vec<NodeId> = (0..4).map(|_| star.add_node(())).collect();
    for &l in &leaves {
        star.add_undirected_edge(hub, l, ()).unwrap();
    }
    assert!(!exact::hamiltonian_to_ensp(&star, leaves[0], leaves[1]));
}

/// §4.3 + Fig. 5/6: "ELPC exhibits comparable or superior performances in
/// minimizing end-to-end delay and maximizing frame rate over the other
/// two algorithms in all the cases we studied" — checked on the suite
/// prefix (the full 20 cases run in the experiment harness).
#[test]
fn claim_elpc_dominates_baselines() {
    for case in &cases::paper_cases()[..5] {
        let owned = case.generate().unwrap();
        let row = run_case(&owned, &cost());
        assert!(
            row.elpc_delay_dominates(),
            "case {}: delay row {row:?}",
            case.number
        );
        if row.rate_elpc.ms().is_some() {
            assert!(
                row.elpc_rate_dominates(),
                "case {}: rate row {row:?}",
                case.number
            );
        }
    }
}

/// §4.3: "there may not exist any feasible mapping solution in some
/// extreme test cases where the shortest end-to-end path is longer than
/// the pipeline or the pipeline is longer than the longest end-to-end
/// path" — both extremes are detected and reported.
#[test]
fn claim_infeasible_extremes_are_detected() {
    // shortest path longer than the pipeline
    let mut b = elpc::netsim::Network::builder();
    let ns: Vec<NodeId> = (0..5).map(|_| b.add_node(100.0).unwrap()).collect();
    for w in ns.windows(2) {
        b.add_link(w[0], w[1], 100.0, 1.0).unwrap();
    }
    let line = b.build().unwrap();
    let short = elpc::pipeline::Pipeline::from_stages(1e5, &[], 1.0).unwrap(); // 2 modules
    let inst = Instance::new(&line, &short, ns[0], ns[4]).unwrap();
    assert!(matches!(
        elpc_delay::solve(&inst, &cost()),
        Err(MappingError::Infeasible(_))
    ));
    // pipeline longer than the longest simple path (no reuse)
    let long = elpc::pipeline::Pipeline::from_stages(1e5, &[(1.0, 1e4); 6], 1.0).unwrap(); // 8 modules
    let inst = Instance::new(&line, &long, ns[0], ns[4]).unwrap();
    assert!(matches!(
        elpc_rate::solve(&inst, &cost()),
        Err(MappingError::Infeasible(_))
    ));
    // while the delay objective happily reuses nodes
    assert!(elpc_delay::solve(&inst, &cost()).is_ok());
}

/// §3.1.2: the single-label heuristic's misses are "extremely rare" —
/// spot-check a batch here (the 400-instance version is `ablation_gap`).
#[test]
fn claim_heuristic_misses_are_rare() {
    let mut optimal = 0;
    let mut total = 0;
    for seed in 0..40u64 {
        let m = 3 + (seed % 3) as usize;
        let n = m + 2;
        let owned = match InstanceSpec::sized(m, n, n * (n - 1) / 2).generate(seed) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let inst = owned.as_instance();
        let ex = match exact::max_rate(&inst, &cost(), exact::ExactLimits::default()) {
            Ok(e) => e,
            Err(_) => continue,
        };
        total += 1;
        if let Ok(h) = elpc_rate::solve(&inst, &cost()) {
            if (h.bottleneck_ms - ex.bottleneck_ms).abs() <= 1e-9 * ex.bottleneck_ms.max(1.0) {
                optimal += 1;
            }
        }
    }
    assert!(total >= 20, "need enough feasible instances, got {total}");
    assert!(
        optimal as f64 >= total as f64 * 0.85,
        "heuristic optimal on only {optimal}/{total}"
    );
}

/// §5 (future work, implemented here): allowing node reuse can only help
/// the streaming objective, and strictly helps when transfers dominate.
#[test]
fn claim_reuse_extension_dominates_no_reuse() {
    for seed in 0..10u64 {
        let owned = InstanceSpec::sized(5, 8, 14).generate(seed).unwrap();
        let inst = owned.as_instance();
        if let (Ok(no_reuse), Ok(with_reuse)) = (
            elpc_rate::solve(&inst, &cost()),
            elpc::extensions::reuse_rate::solve(&inst, &cost()),
        ) {
            assert!(
                with_reuse.bottleneck_ms <= no_reuse.bottleneck_ms + 1e-9,
                "seed {seed}: reuse {} vs strict {}",
                with_reuse.bottleneck_ms,
                no_reuse.bottleneck_ms
            );
        }
    }
}
