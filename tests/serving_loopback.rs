//! Deterministic loopback serving test: an in-process `elpc-serve` daemon
//! must answer exactly what the solver registry answers when called
//! directly — same assignment, bit-identical objective, same typed error
//! messages — no matter how many clients hammer it concurrently or how
//! many threads the solve context uses.
//!
//! Every (instance × solver) pair is solved twice per configuration:
//! once directly through [`elpc_mapping::registry`], once over the wire
//! by each of N concurrent clients. Any divergence — a different
//! assignment, a flipped error, a single objective bit — fails the test.

use elpc_mapping::{registry, CostModel, SolveContext};
use elpc_serving::{
    Client, ClientError, RemapRequest, ServeError, Server, ServerConfig, SolveRequest,
};
use elpc_workloads::{InstanceSpec, ProblemInstance};
use std::path::PathBuf;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("elpc-loopback-{}-{tag}.sock", std::process::id()))
}

fn test_instances() -> Vec<ProblemInstance> {
    // Three comfortable instances plus one with more modules than nodes,
    // so the no-reuse (distinct-host) solvers exercise the typed error
    // path — a served Infeasible must match the direct one verbatim.
    vec![
        InstanceSpec::sized(4, 12, 26).generate(101).expect("gen"),
        InstanceSpec::sized(5, 14, 30).generate(202).expect("gen"),
        InstanceSpec::sized(3, 9, 16).generate(303).expect("gen"),
        InstanceSpec::sized(6, 5, 8).generate(404).expect("gen"),
    ]
}

/// What a solve produced, in directly comparable form: the assignment and
/// exact objective bits on success, or the typed error message.
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok(Vec<u32>, u64),
    Err(String),
}

fn direct_outcome(inst: &ProblemInstance, solver_name: &str, threads: usize) -> Outcome {
    let ctx = SolveContext::with_threads(inst.as_instance(), CostModel::default(), threads);
    let entry = elpc_mapping::solver(solver_name).expect("registry solver");
    match entry.solve(&ctx) {
        Ok(sol) => Outcome::Ok(
            sol.assignment.iter().map(|n| n.0).collect(),
            sol.objective_ms.to_bits(),
        ),
        Err(e) => Outcome::Err(e.to_string()),
    }
}

fn served_outcome(
    client: &mut Client,
    inst: &ProblemInstance,
    solver_name: &str,
    threads: usize,
) -> Outcome {
    let req = SolveRequest {
        solver: solver_name.to_string(),
        cost: CostModel::default(),
        threads,
        timeout_ms: None,
        instance: inst.clone(),
    };
    match client.solve(req) {
        Ok(reply) => Outcome::Ok(
            reply.assignment.iter().map(|n| n.0).collect(),
            reply.objective_ms.to_bits(),
        ),
        Err(ClientError::Server(ServeError::Solve(failure))) => Outcome::Err(failure.message),
        Err(other) => panic!("unexpected client error for {solver_name}: {other}"),
    }
}

/// N concurrent clients, every registry solver, every instance: served
/// answers must be bit-identical to direct registry calls.
fn run_loopback(tag: &str, threads: usize, workers: usize, clients: usize) {
    let socket = socket_path(tag);
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let instances = test_instances();
    let names: Vec<&'static str> = registry().iter().map(|s| s.name()).collect();
    let expected: Vec<Vec<Outcome>> = instances
        .iter()
        .map(|inst| {
            names
                .iter()
                .map(|name| direct_outcome(inst, name, threads))
                .collect()
        })
        .collect();

    std::thread::scope(|s| {
        for c in 0..clients {
            let socket = &socket;
            let instances = &instances;
            let names = &names;
            let expected = &expected;
            s.spawn(move || {
                let mut client = Client::connect(socket).expect("connect");
                // Stagger the iteration order per client so different
                // clients race different keys at any given moment.
                for step in 0..(instances.len() * names.len()) {
                    let idx = (step + c) % (instances.len() * names.len());
                    let (i, j) = (idx / names.len(), idx % names.len());
                    let got = served_outcome(&mut client, &instances[i], names[j], threads);
                    assert_eq!(
                        got, expected[i][j],
                        "client {c}: served {} on instance {i} diverged from direct call",
                        names[j]
                    );
                }
            });
        }
    });

    let stats = server.shutdown();
    let total = (clients * instances.len() * names.len()) as u64;
    assert_eq!(stats.requests, total, "every request must be accounted");
    assert_eq!(
        stats.completed + stats.errors,
        total,
        "every request must be answered"
    );
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.queue_depth, 0, "drain must leave an empty queue");
    assert!(!socket.exists(), "drain must remove the socket file");
}

#[test]
fn loopback_matches_direct_serial() {
    // threads=1 (lazy serial closure) on a single worker: the fully
    // deterministic baseline configuration.
    run_loopback("serial", 1, 1, 3);
}

#[test]
fn loopback_matches_direct_full_cpu() {
    // threads=0 (all CPUs) across a wide worker pool: solver determinism
    // at any thread count is what keeps this bit-identical.
    run_loopback("fullcpu", 0, 6, 4);
}

#[test]
fn unknown_solver_is_a_typed_error_not_a_hang() {
    let socket = socket_path("unknown");
    let server = Server::bind(&socket, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(&socket).expect("connect");
    let inst = InstanceSpec::sized(3, 8, 14).generate(7).expect("gen");
    let err = client
        .solve(SolveRequest {
            solver: "definitely_not_registered".into(),
            cost: CostModel::default(),
            threads: 1,
            timeout_ms: None,
            instance: inst,
        })
        .expect_err("must fail");
    match err {
        ClientError::Server(ServeError::UnknownSolver { name }) => {
            assert_eq!(name, "definitely_not_registered");
        }
        other => panic!("expected UnknownSolver, got {other}"),
    }
    server.shutdown();
}

#[test]
fn remap_reports_movement_against_previous_assignment() {
    let socket = socket_path("remap");
    let server = Server::bind(&socket, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(&socket).expect("connect");
    let inst = InstanceSpec::sized(4, 12, 26).generate(101).expect("gen");

    let fresh = match direct_outcome(&inst, "elpc_delay_routed", 1) {
        Outcome::Ok(assignment, _) => assignment,
        Outcome::Err(e) => panic!("fixture must solve: {e}"),
    };
    let solve = SolveRequest {
        solver: "elpc_delay_routed".into(),
        cost: CostModel::default(),
        threads: 1,
        timeout_ms: None,
        instance: inst,
    };

    // Previous == what the solver answers now: nothing moved.
    let same = client
        .remap(RemapRequest {
            solve: solve.clone(),
            previous: fresh.iter().map(|&n| elpc_mapping::NodeId(n)).collect(),
            previous_key: None,
            delta: None,
        })
        .expect("remap");
    assert!(!same.changed, "identical previous assignment cannot move");
    assert!(!same.repaired, "no repair fields, no repair");
    assert_eq!(
        same.reply
            .assignment
            .iter()
            .map(|n| n.0)
            .collect::<Vec<_>>(),
        fresh
    );

    // A previous assignment that cannot match (wrong length): moved.
    let moved = client
        .remap(RemapRequest {
            solve,
            previous: Vec::new(),
            previous_key: None,
            delta: None,
        })
        .expect("remap");
    assert!(moved.changed, "empty previous assignment always differs");

    server.shutdown();
}
