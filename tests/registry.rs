//! Integration coverage for the unified solver registry: every entry point
//! is reachable by name from the umbrella crate, the comparison harness's
//! columns are backed by registered solvers, and running through the
//! registry is observationally identical to calling the algorithms
//! directly.

use elpc::mapping::{
    elpc_delay, elpc_rate, greedy, registry, solver, streamline, CostModel, Objective, SolveContext,
};
use elpc::workloads::cases;
use elpc::workloads::compare::{run_case, run_solvers, Outcome, CASE_COLUMNS};

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn all_entry_points_are_registered() {
    let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
    assert!(names.len() >= 7, "registry holds {} solvers", names.len());
    for column in CASE_COLUMNS {
        assert!(
            solver(column).is_some(),
            "compare column `{column}` has no registered solver"
        );
    }
    for s in registry() {
        assert!(matches!(
            s.objective(),
            Objective::MinDelay | Objective::MaxRate
        ));
    }
}

#[test]
fn registry_matches_direct_calls_on_suite_cases() {
    for case in &cases::paper_cases()[..3] {
        let owned = case.generate().unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());

        let direct = elpc_delay::solve(&inst, &cost()).unwrap();
        let via = solver("elpc_delay").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.delay_ms.to_bits());

        let direct = elpc_delay::solve_routed(&inst, &cost()).unwrap();
        let via = solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.objective_ms.to_bits());
        assert_eq!(via.assignment, direct.assignment);

        if let Ok(direct) = elpc_rate::solve(&inst, &cost()) {
            let via = solver("elpc_rate").unwrap().solve(&ctx).unwrap();
            assert_eq!(via.objective_ms.to_bits(), direct.bottleneck_ms.to_bits());
        }
        let direct = streamline::solve_min_delay(&inst, &cost()).unwrap();
        let via = solver("streamline_delay").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.objective_ms.to_bits());

        let direct = greedy::solve_min_delay(&inst, &cost()).unwrap();
        let via = solver("greedy_delay").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.delay_ms.to_bits());
    }
}

#[test]
fn case_rows_are_backed_by_the_registry() {
    let owned = cases::paper_cases()[1].generate().unwrap();
    let row = run_case(&owned, &cost());
    let named = run_solvers(&owned, &cost(), &CASE_COLUMNS);
    let by_name = |n: &str| -> &Outcome { &named.iter().find(|(name, _)| name == n).unwrap().1 };
    assert_eq!(&row.delay_elpc, by_name("elpc_delay_routed"));
    assert_eq!(&row.delay_elpc_strict, by_name("elpc_delay"));
    assert_eq!(&row.delay_streamline, by_name("streamline_delay"));
    assert_eq!(&row.delay_greedy, by_name("greedy_delay"));
    assert_eq!(&row.rate_elpc, by_name("elpc_rate_routed"));
    assert_eq!(&row.rate_elpc_strict, by_name("elpc_rate"));
    assert_eq!(&row.rate_streamline, by_name("streamline_rate"));
    assert_eq!(&row.rate_greedy, by_name("greedy_rate"));
    assert_eq!(&row.delay_anneal, by_name("anneal_delay"));
    assert_eq!(&row.delay_genetic, by_name("genetic_delay"));
    assert_eq!(&row.rate_anneal, by_name("anneal_rate"));
    assert_eq!(&row.rate_genetic, by_name("genetic_rate"));
}

#[test]
fn shared_context_produces_cache_hits_across_solvers() {
    let owned = cases::paper_cases()[2].generate().unwrap();
    let inst = owned.as_instance();
    let ctx = SolveContext::new(inst, cost());
    for s in registry() {
        if s.name().starts_with("exact") {
            continue; // exponential; not needed to demonstrate sharing
        }
        let _ = s.solve(&ctx);
    }
    let stats = ctx.closure().stats();
    assert!(stats.misses > 0, "routed solvers must populate the closure");
    assert!(
        stats.hits > stats.misses,
        "sharing across solvers should be hit-dominated: {stats:?}"
    );
}

#[test]
fn adaptive_control_loop_accepts_any_delay_solver() {
    use elpc::extensions::adaptive::{run_adaptation, AdaptiveConfig};
    use elpc::netsim::dynamics::DynamicNetwork;
    use elpc::prelude::*;

    let mut b = Network::builder();
    let s = b.add_node(1_000.0).unwrap();
    let a = b.add_node(10_000.0).unwrap();
    let d = b.add_node(1_000.0).unwrap();
    b.add_link(s, a, 622.0, 1.0).unwrap();
    b.add_link(a, d, 622.0, 1.0).unwrap();
    let dyn_net = DynamicNetwork::steady(b.build().unwrap());
    let pipe = Pipeline::from_stages(1e6, &[(2.0, 1e5)], 0.5).unwrap();

    for name in [
        "elpc_delay",
        "elpc_delay_routed",
        "streamline_delay",
        "greedy_delay",
    ] {
        let report = run_adaptation(
            &dyn_net,
            &pipe,
            s,
            d,
            &cost(),
            AdaptiveConfig::default(),
            3_000.0,
            solver(name).unwrap(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.switches, 0, "{name} switched on a steady network");
    }
    // rate solvers are rejected up front
    let err = run_adaptation(
        &dyn_net,
        &pipe,
        s,
        d,
        &cost(),
        AdaptiveConfig::default(),
        3_000.0,
        solver("elpc_rate").unwrap(),
    );
    assert!(err.is_err());
}
