//! Failure-injection and edge-case integration tests: how the stack
//! behaves when inputs are degenerate, hostile, or at structural
//! boundaries. A production library's error paths deserve the same
//! coverage as its happy paths.

use elpc::mapping::{elpc_delay, elpc_rate, CostModel, Instance, Mapping, MappingError};
use elpc::prelude::*;
use elpc::simcore::{simulate, Workload};

fn cost() -> CostModel {
    CostModel::default()
}

/// Minimal 2-node network.
fn pair() -> Network {
    let mut b = Network::builder();
    let a = b.add_node(100.0).unwrap();
    let c = b.add_node(100.0).unwrap();
    b.add_link(a, c, 100.0, 1.0).unwrap();
    b.build().unwrap()
}

#[test]
fn smallest_possible_instance_works() {
    // 2 modules, 2 nodes — the client/server degenerate case of §2.1
    let net = pair();
    let pipe = elpc::pipeline::scenarios::client_server(1e6, 2.0);
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let d = elpc_delay::solve(&inst, &cost()).unwrap();
    // transfer 1 MB over 100 Mbps (80 ms) + 1 MLD + compute 2e6/100
    assert!((d.delay_ms - (81.0 + 20000.0)).abs() < 1e-9);
    let r = elpc_rate::solve(&inst, &cost()).unwrap();
    assert_eq!(r.mapping.q(), 2);
}

#[test]
fn extreme_parameter_magnitudes_do_not_overflow() {
    let mut b = Network::builder();
    let a = b.add_node(1e-6).unwrap(); // nearly powerless
    let c = b.add_node(1e12).unwrap(); // absurdly strong
    b.add_link(a, c, 1e-3, 1e6).unwrap(); // dial-up with huge latency
    let net = b.build().unwrap();
    let pipe = Pipeline::from_stages(1e12, &[(1e3, 1e12)], 1e3).unwrap();
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let d = elpc_delay::solve(&inst, &cost()).unwrap();
    assert!(d.delay_ms.is_finite());
    assert!(d.delay_ms > 0.0);
    let stages = cost().stage_times(&inst, &d.mapping).unwrap();
    assert!(stages.iter().all(|s| s.ms().is_finite()));
}

#[test]
fn single_node_network_handles_colocated_endpoints() {
    let mut b = Network::builder();
    b.add_node(50.0).unwrap();
    let net = b.build().unwrap();
    let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(0)).unwrap();
    // delay: everything runs locally
    let d = elpc_delay::solve(&inst, &cost()).unwrap();
    assert_eq!(d.mapping.q(), 1);
    // rate without reuse: impossible (3 modules, 1 node)
    assert!(matches!(
        elpc_rate::solve(&inst, &cost()),
        Err(MappingError::Infeasible(_))
    ));
    // rate WITH reuse: fine, single group
    let g = elpc::extensions::reuse_rate::solve(&inst, &cost()).unwrap();
    assert_eq!(g.mapping.q(), 1);
}

#[test]
fn simulator_rejects_foreign_mappings() {
    // a mapping built for one instance must not evaluate under another
    let net = pair();
    let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let foreign = Mapping::from_parts(vec![NodeId(1), NodeId(0)], vec![2, 1]).unwrap();
    // wrong direction endpoints
    assert!(simulate(&inst, &cost(), &foreign, Workload::single()).is_err());
    // wrong module count
    let short = Mapping::from_parts(vec![NodeId(0), NodeId(1)], vec![1, 1]).unwrap();
    assert!(cost().delay_ms(&inst, &short).is_err());
}

#[test]
fn long_pipeline_on_tiny_network_bounces() {
    // 10 modules over 2 nodes: the walk must bounce 0↔1 or group heavily;
    // the DP still finds the optimum and the simulator agrees
    let net = pair();
    let stages: Vec<(f64, f64)> = (0..8).map(|i| (0.5 + i as f64 * 0.1, 1e4)).collect();
    let pipe = Pipeline::from_stages(1e5, &stages, 1.0).unwrap();
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let d = elpc_delay::solve(&inst, &cost()).unwrap();
    let rep = simulate(&inst, &cost(), &d.mapping, Workload::single()).unwrap();
    assert!((rep.end_to_end_delay_ms(0).unwrap() - d.delay_ms).abs() < 1e-6);
    // with only 2 nodes everything lands in at most 2 groups… unless
    // bouncing pays; either way the mapping validates
    d.mapping.validate(&inst, false).unwrap();
}

#[test]
fn streaming_under_overload_grows_queues_not_errors() {
    let net = pair();
    let pipe = Pipeline::from_stages(1e6, &[], 5.0).unwrap(); // heavy sink
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let r = elpc_rate::solve(&inst, &cost()).unwrap();
    // inject 50 frames at 4x the sustainable rate
    let pace = r.bottleneck_ms / 4.0;
    let rep = simulate(&inst, &cost(), &r.mapping, Workload::paced(50, pace)).unwrap();
    // throughput clamps to the bottleneck
    let gap = rep.steady_interdeparture_ms().unwrap();
    assert!((gap - r.bottleneck_ms).abs() < 1e-6);
    // latency grows monotonically with frame index (queue build-up)
    let d5 = rep.end_to_end_delay_ms(5).unwrap();
    let d45 = rep.end_to_end_delay_ms(45).unwrap();
    assert!(d45 > d5 * 2.0, "expected queueing growth: {d5} → {d45}");
}

#[test]
fn zero_mld_and_zero_complexity_pipelines_are_legal() {
    let mut b = Network::builder();
    let a = b.add_node(10.0).unwrap();
    let c = b.add_node(10.0).unwrap();
    b.add_link(a, c, 100.0, 0.0).unwrap(); // zero MLD is allowed
    let net = b.build().unwrap();
    // all-zero complexities: a pure data-movement pipeline
    let pipe = Pipeline::new(vec![
        elpc::pipeline::Module::new(0.0, 1e6),
        elpc::pipeline::Module::new(0.0, 1e6),
        elpc::pipeline::Module::new(0.0, 0.0),
    ])
    .unwrap();
    let inst = Instance::new(&net, &pipe, a, c).unwrap();
    let d = elpc_delay::solve(&inst, &cost()).unwrap();
    // only one transfer can be avoided by grouping; delay is pure transport
    assert!(d.delay_ms > 0.0);
    let r = elpc_rate::solve(&inst, &cost());
    // 3 modules, 2 nodes: no-reuse infeasible
    assert!(r.is_err());
}

#[test]
fn mapping_error_messages_are_actionable() {
    let net = pair();
    let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 3], 1.0).unwrap(); // 5 modules
    let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
    let err = elpc_rate::solve(&inst, &cost()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("5") && msg.contains("2"),
        "message should cite the counts: {msg}"
    );
}

#[test]
fn dynamics_snapshots_keep_mappings_structurally_valid() {
    use elpc::netsim::dynamics::{DynamicNetwork, LoadModel};
    let net = pair();
    let dyn_net = DynamicNetwork::new(
        net,
        vec![
            LoadModel::RandomEpochs {
                epoch_ms: 100.0,
                floor: 0.3,
                seed: 1,
            };
            2
        ],
        vec![LoadModel::Sinusoid {
            period_ms: 500.0,
            amplitude: 0.5,
            phase_ms: 0.0,
        }],
    )
    .unwrap();
    let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
    // a mapping solved at t=0 stays *valid* (topology is static) at any t,
    // even though its cost drifts
    let snap0 = dyn_net.snapshot_at(0.0);
    let inst0 = Instance::new(&snap0, &pipe, NodeId(0), NodeId(1)).unwrap();
    let m = elpc_delay::solve(&inst0, &cost()).unwrap().mapping;
    for t in [50.0, 250.0, 999.0, 12345.0] {
        let snap = dyn_net.snapshot_at(t);
        let inst = Instance::new(&snap, &pipe, NodeId(0), NodeId(1)).unwrap();
        m.validate(&inst, false).unwrap();
        let d = cost().delay_ms(&inst, &m).unwrap();
        assert!(d.is_finite() && d > 0.0);
    }
}
