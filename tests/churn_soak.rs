//! Churn-loop soak: a long seeded [`DynamicNetwork`] run with mixed load
//! models (sinusoids, random epochs, and static elements) driven through
//! `run_churn_adaptation`, with the accounting pinned exactly:
//!
//! * every epoch's repair partitions the closure — kept + rebuilt == total;
//! * the bank is consulted exactly once per epoch, and only epoch 0 ever
//!   misses: in-place repair turns every churned epoch into a hit;
//! * `repairs` equals the number of epochs whose snapshot actually moved
//!   (the `changes_between` set was non-empty);
//! * on every re-solve epoch the candidate delay is bit-identical to an
//!   independent cold solve of that snapshot — the differential proof that
//!   repaired closures never leak into solver results;
//! * the whole run is deterministic: a second run reproduces the report
//!   bit for bit.

use elpc_extensions::adaptive::{run_churn_adaptation, ChurnConfig};
use elpc_mapping::{solver, CostModel, EdgeId, Instance, SolveContext};
use elpc_netsim::dynamics::{DynamicNetwork, LoadModel};
use elpc_workloads::{ClosureBank, InstanceSpec};

const PERIOD_MS: f64 = 400.0;
const HORIZON_MS: f64 = 16_000.0;
const EPOCHS: usize = 40;

/// A 20-node network where roughly a third of the nodes and half of the
/// links move, under three different load-model families.
fn dyn_fixture() -> (DynamicNetwork, elpc_workloads::ProblemInstance) {
    let inst = InstanceSpec::sized(4, 20, 46).generate(7).expect("gen");
    let net = inst.network.clone();
    let node_models: Vec<LoadModel> = (0..net.node_count())
        .map(|i| match i % 3 {
            0 => LoadModel::Sinusoid {
                period_ms: 7_000.0,
                amplitude: 0.4,
                phase_ms: 97.0 * i as f64,
            },
            1 => LoadModel::Constant(1.0),
            _ => LoadModel::RandomEpochs {
                epoch_ms: 1_500.0,
                floor: 0.6,
                seed: i as u64,
            },
        })
        .collect();
    // sparse link churn on the *slowest* links plus two mid-speed ones —
    // load-driven drift hits congested links, which shortest-path trees
    // mostly avoid, so the kept-majority path is actually exercised.
    // (Churning a fast link invalidates nearly every tree: it is some
    // node's dominant parent edge, and every spanning tree has a parent
    // edge per node — that regime is covered by the bench's 20-link row
    // and the adaptive module's link-churn test.)
    let mut by_bw: Vec<(f64, usize)> = (0..net.link_count())
        .map(|k| {
            let link = net.link(EdgeId((2 * k) as u32)).expect("valid link");
            (link.bw_mbps, k)
        })
        .collect();
    by_bw.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bw"));
    let slow: Vec<usize> = by_bw.iter().take(8).map(|p| p.1).collect();
    let link_models: Vec<LoadModel> = (0..net.link_count())
        .map(|k| {
            if slow[..4].contains(&k) {
                LoadModel::Sinusoid {
                    period_ms: 5_000.0,
                    amplitude: 0.3,
                    phase_ms: 131.0 * k as f64,
                }
            } else if slow[4..].contains(&k) {
                LoadModel::RandomEpochs {
                    epoch_ms: 2_000.0,
                    floor: 0.7,
                    seed: 1_000 + k as u64,
                }
            } else {
                LoadModel::Constant(1.0)
            }
        })
        .collect();
    let dyn_net = DynamicNetwork::new(net, node_models, link_models).expect("shapes match");
    (dyn_net, inst)
}

#[test]
fn long_churn_run_has_exact_repair_and_bank_accounting() {
    let (dyn_net, inst) = dyn_fixture();
    let cost = CostModel::default();
    let config = ChurnConfig {
        period_ms: PERIOD_MS,
        drift_threshold: 0.08,
        switch_cost_ms: 0.0,
    };
    let remap = solver("elpc_delay_routed").expect("registered");

    let bank = ClosureBank::new();
    let report = run_churn_adaptation(
        &dyn_net,
        &inst.pipeline,
        inst.src,
        inst.dst,
        &cost,
        config,
        HORIZON_MS,
        remap,
        &bank,
    )
    .expect("churn run");

    assert_eq!(report.epochs.len(), EPOCHS);
    assert!(report.resolves >= 1, "epoch 0 always solves");
    assert_eq!(
        report.resolves,
        report.epochs.iter().filter(|e| e.resolved).count()
    );
    assert_eq!(
        report.switches,
        report.epochs.iter().filter(|e| e.switched).count()
    );

    // per-epoch repair partition and field consistency
    let mut churned_epochs = 0u64;
    for e in &report.epochs {
        assert_eq!(
            e.trees_kept + e.trees_rebuilt,
            e.trees_total,
            "t={}: repair must partition the closure",
            e.t_ms
        );
        if e.changed_links + e.changed_nodes > 0 {
            churned_epochs += 1;
            assert!(
                e.trees_total > 0,
                "t={}: a moved snapshot must repair a non-empty entry",
                e.t_ms
            );
        } else {
            assert_eq!(e.trees_total, 0, "t={}: nothing moved", e.t_ms);
        }
        if e.resolved {
            assert!(e.candidate_delay_ms.is_some());
        } else {
            assert!(e.candidate_delay_ms.is_none());
            assert_eq!(e.staleness_ms, 0.0);
        }
        assert!(e.incumbent_delay_ms.is_finite() && e.incumbent_delay_ms > 0.0);
    }
    assert!(
        churned_epochs >= EPOCHS as u64 / 2,
        "the fixture must actually churn (got {churned_epochs} moved epochs)"
    );
    assert!(
        report.trees_kept_total > report.trees_rebuilt_total,
        "most trees must survive each perturbation ({} kept vs {} rebuilt)",
        report.trees_kept_total,
        report.trees_rebuilt_total
    );

    // the bank invariants: one checkout per epoch, repairs keep everything
    // after epoch 0 a hit, and repairs are not checkouts
    let stats = bank.stats();
    assert_eq!(stats.hits + stats.misses, EPOCHS as u64);
    assert_eq!(stats.misses, 1, "only epoch 0 builds cold");
    assert_eq!(
        stats.repairs, churned_epochs,
        "one in-place repair per moved snapshot"
    );
    assert_eq!(bank.len(), 1, "the entry migrates; it never duplicates");

    // differential proof: every re-solve epoch's candidate is bit-identical
    // to an independent cold solve of that snapshot
    for e in report.epochs.iter().filter(|e| e.resolved) {
        let snapshot = dyn_net.snapshot_at(e.t_ms);
        let cold_inst =
            Instance::new(&snapshot, &inst.pipeline, inst.src, inst.dst).expect("valid instance");
        let ctx = SolveContext::new(cold_inst, cost);
        let cold = remap.solve(&ctx).expect("cold solve");
        assert_eq!(
            cold.objective_ms.to_bits(),
            e.candidate_delay_ms.expect("resolved").to_bits(),
            "t={}: repaired-closure candidate differs from a cold solve",
            e.t_ms
        );
    }
}

#[test]
fn churn_runs_are_deterministic() {
    let (dyn_net, inst) = dyn_fixture();
    let cost = CostModel::default();
    let config = ChurnConfig {
        period_ms: PERIOD_MS,
        drift_threshold: 0.08,
        switch_cost_ms: 0.0,
    };
    let remap = solver("elpc_delay_routed").expect("registered");
    let run = || {
        let bank = ClosureBank::new();
        run_churn_adaptation(
            &dyn_net,
            &inst.pipeline,
            inst.src,
            inst.dst,
            &cost,
            config,
            HORIZON_MS,
            remap,
            &bank,
        )
        .expect("churn run")
    };
    assert_eq!(run(), run(), "two identical runs must agree bit for bit");
}
