//! Cross-solver invariant lockdown (ISSUE 4): every entry in the solver
//! registry — present and future — must respect the provably-optimal
//! routed references and the structural mapping constraints.
//!
//! The contract, checked over the **whole registry** on 20 seeded
//! instances, so a newly registered solver is covered without touching
//! this file:
//!
//! * delay solvers can never beat `elpc_delay_routed`, the exact optimum
//!   of the routed free-assignment space (strict-semantics values are
//!   further from it by construction: routed transport relaxes Eq. 1);
//! * rate solvers can never beat `exact::max_rate_routed`, the exhaustive
//!   routed reference, on instances inside its enumeration budget —
//!   equivalently, no solver's frame rate exceeds the exact optimum's;
//! * every solved mapping pins module 0 to the source and the last module
//!   to the destination, covers the whole pipeline, and — for the rate
//!   objective — uses pairwise-distinct hosts (the §3.1.2 streaming
//!   constraint).

use elpc::mapping::{exact, registry, solver, CostModel, Objective, SolveContext};
use elpc::workloads::InstanceSpec;

fn cost() -> CostModel {
    CostModel::default()
}

/// Relative tolerance for float comparisons against the references.
fn eps(reference: f64) -> f64 {
    1e-9 * reference.max(1.0)
}

#[test]
fn every_registry_solver_respects_the_routed_references() {
    assert_eq!(registry().len(), 18, "the ISSUE 4 registry has 18 entries");
    let mut delay_checks = 0usize;
    let mut rate_checks = 0usize;
    let mut solves = 0usize;
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());

        // the provably-optimal routed references of both objectives
        let delay_opt = solver("elpc_delay_routed")
            .expect("registered")
            .solve(&ctx)
            .ok()
            .map(|s| s.objective_ms);
        let rate_opt = exact::max_rate_routed(&ctx, exact::ExactLimits::default())
            .ok()
            .map(|s| s.objective_ms);

        for s in registry() {
            let Ok(sol) = s.solve(&ctx) else {
                continue; // infeasibility is a legal outcome per solver
            };
            solves += 1;
            let name = s.name();

            // structural invariants: full coverage, pinned endpoints
            assert_eq!(
                sol.assignment.len(),
                owned.pipeline.len(),
                "seed {seed}, {name}: assignment does not cover the pipeline"
            );
            assert_eq!(
                sol.assignment[0], owned.src,
                "seed {seed}, {name}: module 0 left the source"
            );
            assert_eq!(
                *sol.assignment.last().unwrap(),
                owned.dst,
                "seed {seed}, {name}: last module left the destination"
            );
            assert!(
                sol.objective_ms.is_finite() && sol.objective_ms > 0.0,
                "seed {seed}, {name}: degenerate objective {}",
                sol.objective_ms
            );

            match s.objective() {
                Objective::MinDelay => {
                    if let Some(opt) = delay_opt {
                        assert!(
                            sol.objective_ms >= opt - eps(opt),
                            "seed {seed}, {name}: delay {} beat the routed optimum {opt}",
                            sol.objective_ms
                        );
                        delay_checks += 1;
                    }
                }
                Objective::MaxRate => {
                    // the no-reuse constraint: pairwise-distinct hosts
                    let mut seen = std::collections::BTreeSet::new();
                    for &h in &sol.assignment {
                        assert!(
                            seen.insert(h),
                            "seed {seed}, {name}: host {h} reused under the rate objective"
                        );
                    }
                    if let Some(opt) = rate_opt {
                        assert!(
                            sol.objective_ms >= opt - eps(opt),
                            "seed {seed}, {name}: bottleneck {} beat the routed exact {opt} \
                             (frame rate above the optimum)",
                            sol.objective_ms
                        );
                        rate_checks += 1;
                    }
                }
            }
        }
    }
    // the suite must actually have exercised the bounds, not skipped them
    assert!(solves >= 200, "only {solves} solves across the suite");
    assert!(
        delay_checks >= 100,
        "only {delay_checks} delay bound checks"
    );
    assert!(rate_checks >= 50, "only {rate_checks} rate bound checks");
}

/// The acceptance pin: the portfolio entries are bit-identical at
/// `threads = 1` (serial slate) and `threads = 0` (all-CPU race) — the
/// winner is chosen by value with a fixed tie-break, never by finish
/// order. The registry entries inherit the thread count from the context.
#[test]
fn portfolio_entries_are_bit_identical_across_thread_counts() {
    for seed in 0..10u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        for name in ["portfolio_delay", "portfolio_rate"] {
            let s = solver(name).expect("registered");
            let serial = s.solve(&SolveContext::new(inst, cost()));
            let parallel = s.solve(&SolveContext::with_threads(inst, cost(), 0));
            match (serial, parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.assignment, b.assignment, "seed {seed}, {name}");
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "seed {seed}, {name}"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, {name}");
                }
                other => panic!("seed {seed}, {name}: divergent feasibility {other:?}"),
            }
        }
    }
}
