//! Cross-solver invariant lockdown (ISSUE 4): every entry in the solver
//! registry — present and future — must respect the provably-optimal
//! routed references and the structural mapping constraints.
//!
//! The contract, checked over the **whole registry** on 20 seeded
//! instances, so a newly registered solver is covered without touching
//! this file:
//!
//! * delay solvers can never beat `elpc_delay_routed`, the exact optimum
//!   of the routed free-assignment space (strict-semantics values are
//!   further from it by construction: routed transport relaxes Eq. 1);
//! * rate solvers can never beat `exact::max_rate_routed`, the exhaustive
//!   routed reference, on instances inside its enumeration budget —
//!   equivalently, no solver's frame rate exceeds the exact optimum's;
//! * every solved mapping pins module 0 to the source and the last module
//!   to the destination, covers the whole pipeline, and — for the rate
//!   objective — uses pairwise-distinct hosts (the §3.1.2 streaming
//!   constraint);
//! * the dense evaluation kernel (ISSUE 5) is indistinguishable from the
//!   closure-backed routed evaluators: full evaluations agree bit for bit
//!   and delta-applied move sequences reconcile exactly
//!   ([`kernel_equivalence_full_evaluations_are_bit_identical`],
//!   [`kernel_equivalence_delta_moves_reconcile_exactly`] — the
//!   `elpc-mapping` crate's `eval_kernel` proptests run the same contract
//!   against adversarial disconnected topologies).

use elpc::mapping::{
    exact, registry, routed, solver, CostModel, DeltaEval, MoveSpec, NodeId, Objective,
    SolveContext,
};
use elpc::workloads::InstanceSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn cost() -> CostModel {
    CostModel::default()
}

/// Relative tolerance for float comparisons against the references.
fn eps(reference: f64) -> f64 {
    1e-9 * reference.max(1.0)
}

#[test]
fn every_registry_solver_respects_the_routed_references() {
    assert_eq!(registry().len(), 20, "the ISSUE 9 registry has 20 entries");
    let mut delay_checks = 0usize;
    let mut rate_checks = 0usize;
    let mut solves = 0usize;
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());

        // the provably-optimal routed references of both objectives
        let delay_opt = solver("elpc_delay_routed")
            .expect("registered")
            .solve(&ctx)
            .ok()
            .map(|s| s.objective_ms);
        let rate_opt = exact::max_rate_routed(&ctx, exact::ExactLimits::default())
            .ok()
            .map(|s| s.objective_ms);

        for s in registry() {
            let Ok(sol) = s.solve(&ctx) else {
                continue; // infeasibility is a legal outcome per solver
            };
            solves += 1;
            let name = s.name();

            // structural invariants: full coverage, pinned endpoints
            assert_eq!(
                sol.assignment.len(),
                owned.pipeline.len(),
                "seed {seed}, {name}: assignment does not cover the pipeline"
            );
            assert_eq!(
                sol.assignment[0], owned.src,
                "seed {seed}, {name}: module 0 left the source"
            );
            assert_eq!(
                *sol.assignment.last().unwrap(),
                owned.dst,
                "seed {seed}, {name}: last module left the destination"
            );
            assert!(
                sol.objective_ms.is_finite() && sol.objective_ms > 0.0,
                "seed {seed}, {name}: degenerate objective {}",
                sol.objective_ms
            );

            match s.objective() {
                Objective::MinDelay => {
                    if let Some(opt) = delay_opt {
                        assert!(
                            sol.objective_ms >= opt - eps(opt),
                            "seed {seed}, {name}: delay {} beat the routed optimum {opt}",
                            sol.objective_ms
                        );
                        delay_checks += 1;
                    }
                }
                Objective::MaxRate => {
                    // the no-reuse constraint: pairwise-distinct hosts
                    let mut seen = std::collections::BTreeSet::new();
                    for &h in &sol.assignment {
                        assert!(
                            seen.insert(h),
                            "seed {seed}, {name}: host {h} reused under the rate objective"
                        );
                    }
                    if let Some(opt) = rate_opt {
                        assert!(
                            sol.objective_ms >= opt - eps(opt),
                            "seed {seed}, {name}: bottleneck {} beat the routed exact {opt} \
                             (frame rate above the optimum)",
                            sol.objective_ms
                        );
                        rate_checks += 1;
                    }
                }
            }
        }
    }
    // the suite must actually have exercised the bounds, not skipped them
    assert!(solves >= 200, "only {solves} solves across the suite");
    assert!(
        delay_checks >= 100,
        "only {delay_checks} delay bound checks"
    );
    assert!(rate_checks >= 50, "only {rate_checks} rate bound checks");
}

/// The acceptance pin: the portfolio and LNS entries are bit-identical at
/// `threads = 1` (serial slate) and `threads = 0` (all-CPU race) — the
/// winner is chosen by value with a fixed tie-break, never by finish
/// order. The registry entries inherit the thread count from the context.
#[test]
fn portfolio_entries_are_bit_identical_across_thread_counts() {
    for seed in 0..10u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        for name in ["portfolio_delay", "portfolio_rate", "lns_delay", "lns_rate"] {
            let s = solver(name).expect("registered");
            let serial = s.solve(&SolveContext::new(inst, cost()));
            let parallel = s.solve(&SolveContext::with_threads(inst, cost(), 0));
            match (serial, parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.assignment, b.assignment, "seed {seed}, {name}");
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "seed {seed}, {name}"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, {name}");
                }
                other => panic!("seed {seed}, {name}: divergent feasibility {other:?}"),
            }
        }
    }
}

/// Portfolio v2: a seed-raced fanned slate with early cancellation is
/// bit-identical at `threads = 1` and `threads = 0`. Cancellation is
/// index-monotone (a member can only be skipped when a strictly earlier
/// member already matched the routed bound), so the winner, its value,
/// and every per-member report agree regardless of scheduling.
#[test]
fn fanned_early_cancel_portfolios_are_bit_identical_across_thread_counts() {
    use elpc::mapping::{portfolio::solve_portfolio, FannedMember, PortfolioConfig};
    for seed in 0..6u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());
        for (objective, base) in [
            (Objective::MinDelay, "lns_delay"),
            (Objective::MaxRate, "lns_rate"),
        ] {
            let config = |threads: usize| {
                PortfolioConfig::for_objective(objective)
                    .fan(FannedMember {
                        base,
                        seeds: vec![7, 8, 9],
                        budgets: vec![500, 5000],
                    })
                    .early_cancel()
                    .threads(threads)
            };
            let serial = solve_portfolio(&ctx, objective, &config(1));
            let parallel = solve_portfolio(&ctx, objective, &config(0));
            match (serial, parallel) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.winner, b.winner, "seed {seed}, {base}");
                    assert_eq!(
                        a.solution.assignment, b.solution.assignment,
                        "seed {seed}, {base}"
                    );
                    assert_eq!(
                        a.solution.objective_ms.to_bits(),
                        b.solution.objective_ms.to_bits(),
                        "seed {seed}, {base}"
                    );
                    assert_eq!(a.members.len(), b.members.len());
                    for (x, y) in a.members.iter().zip(&b.members) {
                        assert_eq!(x.name, y.name, "seed {seed}, {base}");
                        assert_eq!(
                            x.objective_ms.map(f64::to_bits),
                            y.objective_ms.map(f64::to_bits),
                            "seed {seed}, {base}, member {}",
                            x.name
                        );
                        assert_eq!(x.won, y.won, "seed {seed}, {base}, member {}", x.name);
                        assert_eq!(
                            x.cancelled, y.cancelled,
                            "seed {seed}, {base}, member {}",
                            x.name
                        );
                    }
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, {base}");
                }
                other => panic!("seed {seed}, {base}: divergent feasibility {other:?}"),
            }
        }
    }
}

/// ISSUE 5 kernel equivalence, part 1: on every suite instance the dense
/// kernel's full evaluation is bit-identical to the closure-backed routed
/// evaluators — the values every solver reports are the values the
/// evaluators would have produced.
#[test]
fn kernel_equivalence_full_evaluations_are_bit_identical() {
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let k = inst.network.node_count();
        let n = inst.n_modules();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4B45524E); // "KERN"
        for _ in 0..40 {
            let mut a: Vec<NodeId> = (0..n)
                .map(|_| NodeId::from_index(rng.gen_range(0..k)))
                .collect();
            a[0] = inst.src;
            *a.last_mut().unwrap() = inst.dst;
            let delay = routed::routed_delay_ms_ctx(&ctx, &a).expect("suite nets are connected");
            assert_eq!(
                delay.to_bits(),
                kernel.full_delay_ms(&a).to_bits(),
                "seed {seed}: delay mismatch on {a:?}"
            );
            match routed::routed_bottleneck_ms_ctx(&ctx, &a, true) {
                Ok(b) => assert_eq!(
                    b.to_bits(),
                    kernel.full_bottleneck_ms(&a, true).to_bits(),
                    "seed {seed}: bottleneck mismatch on {a:?}"
                ),
                // host reuse: the evaluator rejects, the kernel reports ∞
                Err(_) => assert!(kernel.full_bottleneck_ms(&a, true).is_infinite()),
            }
        }
    }
}

/// ISSUE 5 kernel equivalence, part 2: a seeded random sequence of
/// delta-applied reassign/swap moves stays exactly reconciled — after
/// every committed move the tracked objective is bit-identical to a fresh
/// full evaluation (which part 1 ties to the routed evaluators), and every
/// candidate's feasibility verdict agrees with its full evaluation.
#[test]
fn kernel_equivalence_delta_moves_reconcile_exactly() {
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let k = inst.network.node_count();
        let n = inst.n_modules();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE17A);
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let start: Vec<NodeId> = match objective {
                Objective::MinDelay => {
                    let mut a = vec![inst.src; n];
                    *a.last_mut().unwrap() = inst.dst;
                    a
                }
                Objective::MaxRate => {
                    // lowest-index distinct interior hosts
                    let mut a = vec![inst.src; n];
                    *a.last_mut().unwrap() = inst.dst;
                    let mut next = 0usize;
                    for slot in a.iter_mut().take(n - 1).skip(1) {
                        while next < k {
                            let cand = NodeId::from_index(next);
                            next += 1;
                            if cand != inst.src && cand != inst.dst {
                                *slot = cand;
                                break;
                            }
                        }
                    }
                    a
                }
            };
            let mut state = DeltaEval::new(Arc::clone(&kernel), objective, &start);
            let mut shadow = start.clone();
            for _ in 0..80 {
                let mv = match objective {
                    Objective::MinDelay if rng.gen_bool(0.5) => MoveSpec::Reassign {
                        stage: 1 + rng.gen_range(0..n - 2),
                        to: NodeId::from_index(rng.gen_range(0..k)),
                    },
                    Objective::MaxRate if n < k && rng.gen_bool(0.5) => {
                        let used = state.used_hosts();
                        let free: Vec<usize> = (0..k).filter(|&v| !used[v]).collect();
                        MoveSpec::Reassign {
                            stage: 1 + rng.gen_range(0..n - 2),
                            to: NodeId::from_index(free[rng.gen_range(0..free.len())]),
                        }
                    }
                    _ => {
                        let a = 1 + rng.gen_range(0..n - 2);
                        let mut b = 1 + rng.gen_range(0..n - 2);
                        if b == a {
                            b = if b + 1 < n - 1 { b + 1 } else { 1 };
                        }
                        MoveSpec::Swap { a, b }
                    }
                };
                let mut cand = shadow.clone();
                match mv {
                    MoveSpec::Reassign { stage, to } => cand[stage] = to,
                    MoveSpec::Swap { a, b } => cand.swap(a, b),
                }
                let full_cand = kernel.full_objective_ms(objective, &cand);
                match state.eval_move(mv) {
                    Some(ms) => {
                        assert!(full_cand.is_finite(), "seed {seed}: feasibility diverged");
                        assert!(
                            (ms - full_cand).abs() <= 1e-9 * full_cand.abs().max(1.0),
                            "seed {seed}: candidate {ms} vs full {full_cand}"
                        );
                    }
                    None => assert!(full_cand.is_infinite(), "seed {seed}: feasibility diverged"),
                }
                let committed = state.apply(mv);
                shadow = cand;
                let full_now = kernel.full_objective_ms(objective, &shadow);
                match committed {
                    Some(ms) => assert_eq!(
                        ms.to_bits(),
                        full_now.to_bits(),
                        "seed {seed}: committed objective must reconcile exactly"
                    ),
                    None => assert!(full_now.is_infinite()),
                }
            }
        }
    }
}
