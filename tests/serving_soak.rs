//! Coalescing soak: many clients race requests for the *same* topology
//! fingerprint at a wide worker pool, interleaved with perturbed-topology
//! requests. The server must build each distinct all-pairs closure
//! **exactly once** — the racing requests coalesce onto one leader's
//! build — and the closure-bank statistics must stay exact:
//!
//! * `misses` == number of distinct bank keys (one cold build each),
//! * `hits + misses` == executed solve requests (each request checks the
//!   bank out exactly once),
//! * perturbed topologies never hit the base topology's entry,
//! * per-reply `banked`/`coalesced` flags sum to the server counters.

use elpc_mapping::{solver, CostModel, EdgeId, NetworkDelta, SolveContext};
use elpc_netsim::Link;
use elpc_serving::{
    Client, ClientError, RemapRequest, ServeError, Server, ServerConfig, SolveRequest,
};
use elpc_workloads::bank::bank_key;
use elpc_workloads::{InstanceSpec, ProblemInstance};
use std::path::PathBuf;

const CLIENTS: usize = 8;
const BASE_PER_CLIENT: usize = 6;
const PERTURBED: usize = 4;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("elpc-soak-{}-{tag}.sock", std::process::id()))
}

fn base_instance() -> ProblemInstance {
    // Large enough that the all-pairs closure build is real work worth
    // coalescing, small enough to keep the soak quick.
    InstanceSpec::sized(5, 48, 110).generate(1000).expect("gen")
}

fn perturbed_instances() -> Vec<ProblemInstance> {
    // Same spec, different seeds: structurally similar topologies whose
    // fingerprints (and thus bank keys) must all differ from the base.
    (0..PERTURBED)
        .map(|i| {
            InstanceSpec::sized(5, 48, 110)
                .generate(2000 + i as u64)
                .expect("gen")
        })
        .collect()
}

fn solve_req(inst: &ProblemInstance) -> SolveRequest {
    SolveRequest {
        solver: "elpc_delay_routed".into(),
        cost: CostModel::default(),
        threads: 1,
        timeout_ms: None,
        instance: inst.clone(),
    }
}

#[test]
fn racing_clients_build_each_closure_exactly_once() {
    let base = base_instance();
    let perturbed = perturbed_instances();

    // Precondition: every perturbed topology really has a different key.
    let cost = CostModel::default();
    let base_key = bank_key(&base.as_instance(), &cost);
    for p in &perturbed {
        assert_ne!(
            bank_key(&p.as_instance(), &cost),
            base_key,
            "perturbed topology must not share the base bank key"
        );
    }

    let socket = socket_path("race");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: CLIENTS, // force in-pool concurrency even on 1 CPU
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Every client hammers the base topology and sprinkles in one
    // perturbed topology; collect each reply's telemetry flags.
    let flags: Vec<(bool, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let socket = &socket;
                let base = &base;
                let perturbed = &perturbed;
                s.spawn(move || {
                    let mut client = Client::connect(socket).expect("connect");
                    let mut flags = Vec::new();
                    for k in 0..BASE_PER_CLIENT {
                        let reply = client.solve(solve_req(base)).expect("base solve");
                        flags.push((reply.banked, reply.coalesced));
                        if k == BASE_PER_CLIENT / 2 {
                            let p = &perturbed[c % PERTURBED];
                            let reply = client.solve(solve_req(p)).expect("perturbed solve");
                            flags.push((reply.banked, reply.coalesced));
                        }
                    }
                    flags
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let stats = server.shutdown();
    let total = (CLIENTS * (BASE_PER_CLIENT + 1)) as u64;
    let distinct = 1 + PERTURBED as u64;

    assert_eq!(flags.len() as u64, total);
    assert_eq!(stats.requests, total);
    assert_eq!(stats.completed, total, "every request must succeed");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.timeouts, 0);

    // The tentpole invariants: one cold build per distinct key, and the
    // bank was consulted exactly once per request.
    assert_eq!(
        stats.bank_misses, distinct,
        "each distinct topology must be built exactly once"
    );
    assert_eq!(
        stats.bank_hits + stats.bank_misses,
        total,
        "bank stats must stay exact: hits + misses == queries"
    );
    assert_eq!(stats.bank_deposits, distinct);

    // Reply telemetry must agree with the server counters bit for bit.
    let banked = flags.iter().filter(|(b, _)| *b).count() as u64;
    let coalesced = flags.iter().filter(|(_, c)| *c).count() as u64;
    assert_eq!(banked, stats.bank_hits, "banked flags must equal bank hits");
    assert_eq!(
        coalesced, stats.coalesced,
        "coalesced flags must equal the coalesced counter"
    );
    // A request that waited on a leader's build then checked out that
    // deposit: coalesced implies banked.
    for &(banked, coalesced) in &flags {
        assert!(!coalesced || banked, "a coalesced request must end banked");
    }

    assert_eq!(stats.queue_depth, 0, "drain must leave an empty queue");
    assert!(!socket.exists(), "drain must remove the socket file");
}

/// Degrades `count` undirected links of a copy of `inst` by halving their
/// bandwidth, returning the perturbed instance.
fn degraded(inst: &ProblemInstance, count: usize) -> ProblemInstance {
    let mut out = inst.clone();
    for k in 0..count {
        let id = EdgeId((2 * k) as u32);
        let old = out.network.link(id).expect("valid link").clone();
        out.network
            .set_link_symmetric(id, Link::new(old.bw_mbps * 0.5, old.mld_ms))
            .expect("same shape");
    }
    out
}

/// The churn serving path: a client that knows what changed ships the old
/// bank key plus the exact delta, and the server repairs the banked
/// closure in place — the perturbed-topology solve is a bank **hit**, not
/// a cold rebuild, and every counter stays exact.
#[test]
fn perturb_then_remap_repairs_the_banked_closure_in_place() {
    let base = base_instance();
    let cost = CostModel::default();
    let base_key = bank_key(&base.as_instance(), &cost);

    let live = degraded(&base, 2);
    let delta = NetworkDelta::between(&base.network, &live.network).expect("same shape");
    assert_eq!(delta.links.len(), 4, "two links, both directions each");

    let socket = socket_path("remap-repair");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(&socket).expect("connect");

    // 1. a cold solve banks the pre-churn topology
    let first = client.solve(solve_req(&base)).expect("base solve");
    assert!(!first.banked, "first sight of this topology");

    // 2. perturb-then-remap with the repair fields: the banked entry
    //    migrates to the perturbed key, so this solve is banked
    let remap = client
        .remap(RemapRequest {
            solve: solve_req(&live),
            previous: first.assignment.clone(),
            previous_key: Some(base_key),
            delta: Some(delta.clone()),
        })
        .expect("remap");
    assert!(remap.repaired, "the delta must repair the banked closure");
    assert!(
        remap.reply.banked,
        "an in-place repair turns the perturbed solve into a bank hit"
    );
    assert!(!remap.reply.coalesced, "nothing to coalesce with");

    // the repaired solve is bit-identical to solving the perturbed
    // instance from scratch
    let ctx = SolveContext::new(live.as_instance(), cost);
    let cold = solver("elpc_delay_routed")
        .expect("registered")
        .solve(&ctx)
        .expect("cold solve");
    assert_eq!(remap.reply.assignment, cold.assignment);
    assert_eq!(
        remap.reply.objective_ms.to_bits(),
        cold.objective_ms.to_bits(),
        "repaired and cold objectives must be bit-identical"
    );

    // 3. a remap naming a key that was never banked falls back to the
    //    normal cold path — no repair, no error
    let other = degraded(&base, 4);
    let other_delta = NetworkDelta::between(&live.network, &other.network).expect("same shape");
    let fallback = client
        .remap(RemapRequest {
            solve: solve_req(&other),
            previous: remap.reply.assignment.clone(),
            previous_key: Some(0xDEAD_BEEF),
            delta: Some(other_delta),
        })
        .expect("fallback remap");
    assert!(!fallback.repaired, "unknown key cannot repair");
    assert!(!fallback.reply.banked, "fallback is a cold build");

    let stats = server.shutdown();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.completed, 3, "every request must succeed");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.bank_repairs, 1, "exactly the one repair");
    assert_eq!(
        stats.bank_misses, 2,
        "base cold build + fallback cold build; the repaired remap hit"
    );
    assert_eq!(stats.bank_hits, 1, "the repaired remap");
    assert_eq!(
        stats.bank_hits + stats.bank_misses,
        3,
        "bank consulted exactly once per request, repairs are not checkouts"
    );
    assert_eq!(stats.coalesced, 0);
}

/// A topology whose serial all-pairs closure build takes long enough to
/// reliably out-wait the millisecond deadlines below.
fn slow_instance() -> ProblemInstance {
    InstanceSpec::sized(6, 300, 900).generate(77).expect("gen")
}

fn expect_timeout(tag: &str, r: Result<elpc_serving::SolveReply, ClientError>) {
    match r {
        Err(ClientError::Server(ServeError::Timeout { .. })) => {}
        other => panic!("{tag}: expected a Timeout answer, got {other:?}"),
    }
}

/// ISSUE 9 queued-timeout fix, part 1: requests whose deadline expires
/// while they sit in the queue behind a saturated worker are answered
/// `Timeout` at dequeue and never burn a solve — the bank counters keep
/// counting executed solves only (`hits + misses` excludes every expired
/// request).
#[test]
fn expired_in_queue_requests_never_burn_a_solve() {
    let slow = slow_instance();
    let socket = socket_path("expired-queue");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    const FOLLOWERS: usize = 4;
    std::thread::scope(|s| {
        let socket = &socket;
        let slow = &slow;
        // saturate the single worker with a no-deadline cold solve
        let blocker = s.spawn(move || {
            let mut client = Client::connect(socket).expect("connect");
            client.solve(solve_req(slow)).expect("blocker solve")
        });
        // let the worker dequeue the blocker, then enqueue requests whose
        // 1 ms deadlines expire long before the blocker's build finishes
        std::thread::sleep(std::time::Duration::from_millis(10));
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(socket).expect("connect");
                    let mut req = solve_req(slow);
                    req.timeout_ms = Some(1);
                    client.solve(req)
                })
            })
            .collect();
        for (i, h) in followers.into_iter().enumerate() {
            expect_timeout(&format!("queued follower {i}"), h.join().expect("thread"));
        }
        blocker.join().expect("thread");
    });

    let stats = server.shutdown();
    assert_eq!(stats.requests, 1 + FOLLOWERS as u64);
    assert_eq!(stats.timeouts, FOLLOWERS as u64, "every follower expired");
    assert_eq!(stats.completed, 1, "only the blocker solved");
    assert_eq!(stats.errors, 0, "timeouts are not errors");
    // the exactness invariant the fix protects: expired requests never
    // check the bank out, so hits + misses counts executed solves only
    assert_eq!(stats.bank_misses, 1, "one cold build for the blocker");
    assert_eq!(
        stats.bank_hits + stats.bank_misses,
        stats.completed,
        "expired-in-queue requests must not increment the solve counters"
    );
}

/// ISSUE 9 queued-timeout fix, part 2: a coalesce *follower* — dequeued in
/// time, but blocked inside `coalesce()` on another request's closure
/// build until past its deadline — is answered `Timeout` after the wait
/// without checking out a context or burning a solve.
#[test]
fn expired_coalesce_followers_never_burn_a_solve() {
    let slow = slow_instance();
    let socket = socket_path("expired-coalesce");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 2, // the follower is dequeued while the leader builds
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    std::thread::scope(|s| {
        let socket = &socket;
        let slow = &slow;
        let leader = s.spawn(move || {
            let mut client = Client::connect(socket).expect("connect");
            client.solve(solve_req(slow)).expect("leader solve")
        });
        // same bank key, a deadline far shorter than the leader's build:
        // the free second worker dequeues this immediately (so the
        // dequeue-time expiry check passes) and it blocks in coalesce()
        std::thread::sleep(std::time::Duration::from_millis(10));
        let follower = s.spawn(move || {
            let mut client = Client::connect(socket).expect("connect");
            let mut req = solve_req(slow);
            req.timeout_ms = Some(25);
            client.solve(req)
        });
        expect_timeout("coalesce follower", follower.join().expect("thread"));
        leader.join().expect("thread");
    });

    let stats = server.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.timeouts, 1, "the follower expired in coalesce()");
    assert_eq!(stats.completed, 1, "only the leader solved");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.bank_misses, 1, "one cold build by the leader");
    assert_eq!(
        stats.bank_hits + stats.bank_misses,
        stats.completed,
        "an expired coalesce follower must not check a context out"
    );
}

/// Sequential control: with one client and one worker there is nothing to
/// coalesce, yet the exactness invariants must hold identically.
#[test]
fn sequential_soak_has_exact_stats_and_no_coalescing() {
    let base = base_instance();
    let socket = socket_path("seq");
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut client = Client::connect(&socket).expect("connect");
    let rounds = 5usize;
    for k in 0..rounds {
        let reply = client.solve(solve_req(&base)).expect("solve");
        assert_eq!(reply.banked, k > 0, "first solve cold, rest banked");
        assert!(!reply.coalesced, "sequential requests never wait");
    }

    let stats = server.shutdown();
    assert_eq!(stats.bank_misses, 1);
    assert_eq!(stats.bank_hits, rounds as u64 - 1);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.completed, rounds as u64);
}
