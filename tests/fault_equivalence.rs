//! The differential fault suite: closures repaired after **failures**
//! (link cuts, node crashes — removals, not perturbations) must be
//! indistinguishable from building over the failed network from scratch.
//!
//! Mirrors `churn_equivalence.rs`, but the churn steps are drawn from the
//! failure model: links cut to the `bw = 0` sentinel, nodes crashed with
//! every incident link taken down, and previously failed elements
//! restored. After every step the repaired closure must be
//! **byte-identical** (distance bit patterns and predecessor links) to a
//! cold closure of the failed network, with the repaired state chained
//! forward so a wrongly kept tree would compound.
//!
//! The second half proves the property end to end: every registry solver,
//! on a bank context repaired across a node crash plus a link cut via
//! `update_in_place`, returns the bit-identical solution it returns on a
//! cold context of the failed instance.

use elpc_mapping::delta::repair_closure;
use elpc_mapping::{
    registry, CostModel, EdgeId, MetricClosure, NetworkDelta, NodeId, SolveContext,
};
use elpc_netsim::{Link, Network};
use elpc_workloads::bank::bank_key;
use elpc_workloads::{ClosureBank, InstanceSpec, ProblemInstance, TopologyKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const STEPS: usize = 6;

fn topologies() -> Vec<(&'static str, TopologyKind)> {
    vec![
        ("random", TopologyKind::RandomConnected),
        ("scale_free", TopologyKind::ScaleFree { attach: 2 }),
        ("small_world", TopologyKind::SmallWorld { k: 4, beta: 0.2 }),
    ]
}

fn instance(topology: TopologyKind, seed: u64) -> ProblemInstance {
    let mut spec = InstanceSpec::sized(4, 24, 60);
    spec.topology = topology;
    spec.generate(seed).expect("spec generates")
}

/// What a fault step did, with enough state to undo it later.
enum Fault {
    Link {
        edge: EdgeId,
        old: Link,
    },
    Node {
        node: NodeId,
        old_power: f64,
        links: Vec<(EdgeId, Link)>,
    },
}

/// One random fault step: cut a healthy link, crash a healthy node, or
/// (when something is down) restore a previous failure. Always changes
/// the network.
fn fault_step(net: &Network, down: &mut Vec<Fault>, rng: &mut ChaCha8Rng) -> Network {
    let mut out = net.clone();
    let restore = !down.is_empty() && rng.gen_bool(0.35);
    if restore {
        let idx = rng.gen_range(0..down.len());
        match down.swap_remove(idx) {
            Fault::Link { edge, old } => {
                out.set_link_symmetric(edge, old).expect("same shape");
            }
            Fault::Node {
                node,
                old_power,
                links,
            } => {
                out.node_mut(node).expect("valid node").power = old_power;
                for (edge, old) in links {
                    out.set_link_symmetric(edge, old).expect("same shape");
                }
            }
        }
        return out;
    }
    // crash/cut only healthy elements so every step is a real removal
    if rng.gen_bool(0.35) {
        let healthy: Vec<NodeId> = out.node_ids().filter(|&v| !out.node_is_failed(v)).collect();
        let node = healthy[rng.gen_range(0..healthy.len())];
        let (old_power, links) = out.fail_node(node).expect("valid node");
        down.push(Fault::Node {
            node,
            old_power,
            links,
        });
    } else {
        let healthy: Vec<EdgeId> = (0..out.link_count())
            .map(|k| EdgeId((2 * k) as u32))
            .filter(|&e| !out.link(e).expect("valid link").is_failed())
            .collect();
        let edge = healthy[rng.gen_range(0..healthy.len())];
        let old = out.fail_link_symmetric(edge).expect("valid link");
        down.push(Fault::Link { edge, old });
    }
    out
}

fn export_closure<'a>(
    net: &'a Network,
    cost: CostModel,
    inst: &ProblemInstance,
) -> MetricClosure<'a> {
    let sources: Vec<NodeId> = net.node_ids().collect();
    let payloads: Vec<f64> = (1..inst.pipeline.len())
        .map(|j| inst.pipeline.input_bytes(j))
        .collect();
    let closure = MetricClosure::new(net, cost);
    closure.par_warm(&sources, &payloads, 1);
    closure
}

fn assert_byte_identical(
    label: &str,
    a: &[elpc_mapping::CachedTree],
    b: &[elpc_mapping::CachedTree],
) {
    assert_eq!(a.len(), b.len(), "{label}: tree counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.key, y.key, "{label}: key order differs");
        for (p, q) in x.tree.dist.iter().zip(&y.tree.dist) {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: a repaired distance differs from the cold build"
            );
        }
        assert_eq!(
            x.tree.prev, y.tree.prev,
            "{label}: a repaired predecessor differs from the cold build"
        );
    }
}

/// Chained failure/restore sequences over random, scale-free, and
/// small-world topologies: the repaired closure is byte-identical to a
/// cold build of the failed network at every step.
#[test]
fn failure_sequences_repair_byte_identically() {
    let cost = CostModel::default();
    for (label, topology) in topologies() {
        let inst = instance(topology, 0xFA17);
        let mut net = inst.network.clone();
        let mut entries = export_closure(&net, cost, &inst).export();

        let mut down = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD ^ label.len() as u64);
        let mut saw_failure_delta = false;
        for step in 0..STEPS {
            let next = fault_step(&net, &mut down, &mut rng);
            let delta = NetworkDelta::between(&net, &next).expect("same shape");
            assert!(!delta.is_empty(), "{label} step {step}: a fault must move");
            saw_failure_delta |= delta.has_failures();

            let target = MetricClosure::new(&next, cost);
            let report = repair_closure(&target, &entries, &delta, 1);
            assert_eq!(
                report.kept + report.rebuilt,
                entries.len(),
                "{label} step {step}: every tree is either kept or rebuilt"
            );
            let repaired = target.export();
            let cold = export_closure(&next, cost, &inst).export();
            assert_byte_identical(&format!("{label} step {step}"), &repaired, &cold);

            // chain the REPAIRED state forward: a tree wrongly kept across
            // a removal would compound into later steps
            entries = repaired;
            net = next;
        }
        assert!(
            saw_failure_delta,
            "{label}: the sequence must classify at least one real failure"
        );
    }
}

/// Fail → repair → restore → repair returns the closure to **exactly**
/// its pre-failure bytes: the failure leaves no residue in the repaired
/// state.
#[test]
fn failure_then_restore_round_trips_to_the_original_closure() {
    let cost = CostModel::default();
    let inst = instance(TopologyKind::RandomConnected, 0x0F0F);
    let net = inst.network.clone();
    let original = export_closure(&net, cost, &inst).export();

    // cut a link the closure certainly routes through somewhere
    let mut failed_net = net.clone();
    let edge = EdgeId(4);
    let old = failed_net.fail_link_symmetric(edge).expect("valid link");
    let cut = NetworkDelta::between(&net, &failed_net).expect("same shape");
    // both directions of the symmetric cut classify as failures
    assert_eq!(
        cut.link_failures.len(),
        2,
        "the cut is a failure, not churn"
    );
    assert!(cut.links.is_empty());

    let during = MetricClosure::new(&failed_net, cost);
    repair_closure(&during, &original, &cut, 1);
    assert_byte_identical(
        "failed",
        &during.export(),
        &export_closure(&failed_net, cost, &inst).export(),
    );

    // restore: healthy-from-failed diffs as an ordinary perturbation
    let mut restored_net = failed_net.clone();
    restored_net
        .set_link_symmetric(edge, old)
        .expect("same shape");
    let restore = NetworkDelta::between(&failed_net, &restored_net).expect("same shape");
    assert_eq!(restore.links.len(), 2, "a restore is churn, not a failure");
    assert!(restore.link_failures.is_empty());

    let after = MetricClosure::new(&restored_net, cost);
    let entries = during.export();
    repair_closure(&after, &entries, &restore, 1);
    assert_byte_identical("restored", &after.export(), &original);
}

/// End-to-end over the full registry: a bank context repaired across a
/// node crash plus a link cut yields bit-identical solver output to a
/// cold context of the failed instance.
#[test]
fn every_registry_solver_is_bit_identical_repaired_vs_cold_after_failures() {
    let cost = CostModel::default();
    for (label, topology) in topologies() {
        // tiny instance: the registry includes exponential exact solvers
        let mut spec = InstanceSpec::sized(3, 8, 14);
        spec.topology = topology;
        let base = spec.generate(0xFEED).expect("spec generates");
        let old_key = bank_key(&base.as_instance(), &cost);

        let bank = ClosureBank::new();
        {
            let ctx = bank.context_for(base.as_instance(), cost, 1);
            for entry in registry() {
                let _ = entry.solve(&ctx);
            }
            bank.deposit(&ctx);
        }

        // crash an interior node (not a pipeline endpoint) and cut a link
        let mut live = base.clone();
        let crash = live
            .network
            .node_ids()
            .find(|&v| v != base.src && v != base.dst)
            .expect("an interior node exists");
        live.network.fail_node(crash).expect("valid node");
        let healthy = (0..live.network.link_count())
            .map(|k| EdgeId((2 * k) as u32))
            .find(|&e| !live.network.link(e).expect("valid link").is_failed())
            .expect("a healthy link survives the crash");
        live.network
            .fail_link_symmetric(healthy)
            .expect("valid link");

        let delta = NetworkDelta::between(&base.network, &live.network).expect("same shape");
        assert_eq!(delta.node_failures.len(), 1, "{label}: crash classified");
        assert!(
            !delta.link_failures.is_empty(),
            "{label}: cuts classified (crash incidents + explicit cut)"
        );
        assert!(delta.forces_remap(&[crash]), "{label}: dead host detected");
        assert!(!delta.forces_remap(&[base.src, base.dst]));

        bank.update_in_place(old_key, live.as_instance(), cost, &delta, 1)
            .expect("the base entry is banked");
        let warm = bank.context_for(live.as_instance(), cost, 1);
        let cold = SolveContext::new(live.as_instance(), cost);
        let stats = bank.stats();
        assert_eq!(stats.hits, 1, "{label}: the repaired checkout must hit");
        assert_eq!(stats.repairs, 1);

        for entry in registry() {
            match (entry.solve(&warm), entry.solve(&cold)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.assignment,
                        b.assignment,
                        "{label}: solver {} moved on a repaired failed context",
                        entry.name()
                    );
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "{label}: solver {} objective drifted",
                        entry.name()
                    );
                    assert!(
                        !a.assignment.contains(&crash),
                        "{label}: solver {} mapped a module onto a crashed host",
                        entry.name()
                    );
                }
                (Err(_), Err(_)) => {} // both infeasible the same way
                (warm_r, cold_r) => panic!(
                    "{label}: solver {} disagreed on feasibility: warm {:?} cold {:?}",
                    entry.name(),
                    warm_r.is_ok(),
                    cold_r.is_ok()
                ),
            }
        }
    }
}
