//! The differential churn suite: incremental closure repair must be
//! indistinguishable from starting over.
//!
//! Random perturbation *sequences* — bandwidth up and down, MLD shifts,
//! node-power swings, several links at a time — are applied to random,
//! scale-free, and small-world topologies. After every step the repaired
//! closure (`MetricClosure::export`) must be **byte-identical** (distance
//! bit patterns and predecessor links) to a from-scratch closure of the
//! perturbed network, and the repaired state (not the cold control) is
//! carried into the next step, so errors would compound if the
//! invalidation rule ever kept a tree it shouldn't.
//!
//! The second half proves the property end to end: every registry solver,
//! solving on a bank context repaired via `update_in_place`, must return
//! the bit-identical solution it returns on a cold context of the
//! perturbed instance.
//!
//! Instances use continuous random weights, so exact shortest-path ties
//! (the one documented caveat of the kept-tree rule) occur with
//! probability zero.

use elpc_mapping::delta::{partition_stale, repair_closure};
use elpc_mapping::{
    registry, CachedTree, CostModel, DeltaEval, EdgeId, EvalKernel, Instance, MetricClosure,
    MoveSpec, NetworkDelta, NodeId, Objective, SolveContext,
};
use elpc_netsim::{Link, Network};
use elpc_workloads::bank::bank_key;
use elpc_workloads::{ClosureBank, InstanceSpec, ProblemInstance, TopologyKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const STEPS: usize = 6;

fn topologies() -> Vec<(&'static str, TopologyKind)> {
    vec![
        ("random", TopologyKind::RandomConnected),
        ("scale_free", TopologyKind::ScaleFree { attach: 2 }),
        ("small_world", TopologyKind::SmallWorld { k: 4, beta: 0.2 }),
    ]
}

fn instance(topology: TopologyKind, seed: u64) -> ProblemInstance {
    let mut spec = InstanceSpec::sized(4, 24, 60);
    spec.topology = topology;
    spec.generate(seed).expect("spec generates")
}

/// One random churn step: 1–3 links get bandwidth scaled (up or down) or
/// MLD shifted, and sometimes a node's power moves too.
fn perturb(net: &Network, rng: &mut ChaCha8Rng) -> Network {
    let mut out = net.clone();
    let scales = [0.5, 0.8, 1.25, 2.0];
    for _ in 0..rng.gen_range(1..=3usize) {
        let k = rng.gen_range(0..net.link_count());
        let id = EdgeId((2 * k) as u32);
        let old = out.link(id).expect("valid link").clone();
        let next = if rng.gen_bool(0.75) {
            Link::new(
                old.bw_mbps * scales[rng.gen_range(0..scales.len())],
                old.mld_ms,
            )
        } else {
            Link::new(old.bw_mbps, old.mld_ms + rng.gen_range(0.01..1.0))
        };
        out.set_link_symmetric(id, next).expect("same shape");
    }
    if rng.gen_bool(0.5) {
        let v = NodeId(rng.gen_range(0..net.node_count()) as u32);
        out.node_mut(v).expect("valid node").power *= rng.gen_range(0.3..2.0);
    }
    out
}

fn assert_byte_identical(label: &str, a: &[CachedTree], b: &[CachedTree]) {
    assert_eq!(a.len(), b.len(), "{label}: tree counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.key, y.key, "{label}: key order differs");
        assert_eq!(
            x.tree.dist.len(),
            y.tree.dist.len(),
            "{label}: tree shapes differ"
        );
        for (p, q) in x.tree.dist.iter().zip(&y.tree.dist) {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: a repaired distance differs from the cold build"
            );
        }
        assert_eq!(
            x.tree.prev, y.tree.prev,
            "{label}: a repaired predecessor differs from the cold build"
        );
    }
}

#[test]
fn random_perturbation_sequences_repair_byte_identically() {
    let cost = CostModel::default();
    for (label, topology) in topologies() {
        let inst = instance(topology, 0x5EED);
        let sources: Vec<NodeId> = inst.network.node_ids().collect();
        let payloads: Vec<f64> = (1..inst.pipeline.len())
            .map(|j| inst.pipeline.input_bytes(j))
            .collect();

        // the maintained state: the current network and its (repaired)
        // closure entries, chained step to step
        let mut net = inst.network.clone();
        let mut entries = {
            let base = MetricClosure::new(&net, cost);
            base.par_warm(&sources, &payloads, 1);
            base.export()
        };

        let mut rng = ChaCha8Rng::seed_from_u64(0xC4A0 ^ label.len() as u64);
        for step in 0..STEPS {
            let next = perturb(&net, &mut rng);
            let delta = NetworkDelta::between(&net, &next).expect("same shape");

            let target = MetricClosure::new(&next, cost);
            let report = repair_closure(&target, &entries, &delta, 1);
            assert_eq!(
                report.kept + report.rebuilt,
                entries.len(),
                "{label} step {step}: every tree is either kept or rebuilt"
            );
            let repaired = target.export();

            let control = MetricClosure::new(&next, cost);
            control.par_warm(&sources, &payloads, 1);
            let cold = control.export();

            assert_byte_identical(&format!("{label} step {step}"), &repaired, &cold);

            // chain the REPAIRED state forward: compounding would expose
            // any tree the rule wrongly kept
            entries = repaired;
            net = next;
        }
    }
}

/// A power-only churn sequence never rebuilds a single tree — transfer
/// costs do not depend on node power — yet stays byte-identical.
#[test]
fn power_only_churn_keeps_the_entire_closure() {
    let cost = CostModel::default();
    let inst = instance(TopologyKind::RandomConnected, 0xCAFE);
    let sources: Vec<NodeId> = inst.network.node_ids().collect();
    let payloads: Vec<f64> = (1..inst.pipeline.len())
        .map(|j| inst.pipeline.input_bytes(j))
        .collect();
    let base = MetricClosure::new(&inst.network, cost);
    let total = base.par_warm(&sources, &payloads, 1);
    let entries = base.export();

    let mut next = inst.network.clone();
    for i in 0..next.node_count() {
        next.node_mut(NodeId(i as u32)).expect("valid node").power *= 0.5 + (i as f64) * 0.01;
    }
    let delta = NetworkDelta::between(&inst.network, &next).expect("same shape");
    assert!(delta.links.is_empty());
    assert_eq!(delta.nodes.len(), next.node_count());

    let target = MetricClosure::new(&next, cost);
    let report = repair_closure(&target, &entries, &delta, 1);
    assert_eq!(report.kept, total, "power churn must keep every tree");
    assert_eq!(report.rebuilt, 0);

    let control = MetricClosure::new(&next, cost);
    control.par_warm(&sources, &payloads, 1);
    assert_byte_identical("power-only", &target.export(), &control.export());
}

/// Drives every candidate kernel through the exact workload `reference`
/// sees — seeded random full evaluations under both objectives, then
/// delta-applied reassign/swap sequences — and requires every produced
/// number to match `reference` to the bit.
fn assert_kernels_indistinguishable(
    tag: &str,
    inst: &Instance<'_>,
    reference: &Arc<EvalKernel>,
    candidates: &[(&str, &Arc<EvalKernel>)],
    seed: u64,
) {
    let k = inst.network.node_count();
    let n = inst.n_modules();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // full evaluations on random (often infeasible) assignments: ∞ and
    // finite values alike must agree bitwise
    for _ in 0..30 {
        let mut a: Vec<NodeId> = (0..n)
            .map(|_| NodeId::from_index(rng.gen_range(0..k)))
            .collect();
        a[0] = inst.src;
        *a.last_mut().unwrap() = inst.dst;
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let want = reference.full_objective_ms(objective, &a);
            for (name, kernel) in candidates {
                assert_eq!(
                    want.to_bits(),
                    kernel.full_objective_ms(objective, &a).to_bits(),
                    "{tag}: {name} full {objective:?} differs on {a:?}"
                );
            }
        }
    }

    // delta-move sequences: candidate verdicts and committed objectives
    // must stay locked to the reference move by move
    for objective in [Objective::MinDelay, Objective::MaxRate] {
        let mut start = vec![inst.src; n];
        *start.last_mut().unwrap() = inst.dst;
        if objective == Objective::MaxRate {
            // distinct interior hosts so the rate walk starts feasible
            let mut next = 0usize;
            for slot in start.iter_mut().take(n - 1).skip(1) {
                while next < k {
                    let cand = NodeId::from_index(next);
                    next += 1;
                    if cand != inst.src && cand != inst.dst {
                        *slot = cand;
                        break;
                    }
                }
            }
        }
        let mut state = DeltaEval::new(Arc::clone(reference), objective, &start);
        let mut shadows: Vec<(&str, DeltaEval)> = candidates
            .iter()
            .map(|(name, kernel)| (*name, DeltaEval::new(Arc::clone(kernel), objective, &start)))
            .collect();
        for _ in 0..60 {
            let mv = if rng.gen_bool(0.5) {
                MoveSpec::Reassign {
                    stage: 1 + rng.gen_range(0..n - 2),
                    to: NodeId::from_index(rng.gen_range(0..k)),
                }
            } else {
                let a = 1 + rng.gen_range(0..n - 2);
                let mut b = 1 + rng.gen_range(0..n - 2);
                if b == a {
                    b = if b + 1 < n - 1 { b + 1 } else { 1 };
                }
                MoveSpec::Swap { a, b }
            };
            let want = state.eval_move(mv).map(f64::to_bits);
            for (name, shadow) in &mut shadows {
                assert_eq!(
                    want,
                    shadow.eval_move(mv).map(f64::to_bits),
                    "{tag}: {name} verdict differs on {mv:?}"
                );
            }
            if want.is_some() {
                let committed = state.apply(mv).map(f64::to_bits);
                for (name, shadow) in &mut shadows {
                    assert_eq!(
                        committed,
                        shadow.apply(mv).map(f64::to_bits),
                        "{tag}: {name} committed objective drifted on {mv:?}"
                    );
                }
            }
        }
    }
}

/// ISSUE 9: the dense eval kernel a churn-repaired bank context lazily
/// rebuilds must be **bit-identical** to a cold context's kernel — full
/// evaluations AND delta-applied move sequences — across chained
/// perturbations (the repaired bank state, not the cold control, carries
/// into the next step). The previous step's kernel patched via
/// [`EvalKernel::patched_for_churn`] over `partition_stale`'s verdicts is
/// held to the same standard, so the O(stale) patch path can never drift
/// from a from-scratch build.
#[test]
fn repaired_context_kernels_are_bit_identical_across_chained_churn() {
    let cost = CostModel::default();
    for (label, topology) in topologies() {
        let base = instance(topology, 0x6E55);

        let bank = ClosureBank::new();
        let (mut prev_kernel, mut prev_entries) = {
            let ctx = bank.context_for(base.as_instance(), cost, 1);
            // the kernel build materializes every (payload, source) tree,
            // so the deposit banks the full table the repairs will chew on
            let kernel = ctx.eval_kernel();
            let entries = ctx.closure().export();
            bank.deposit(&ctx);
            (kernel, entries)
        };

        let mut live = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(0x6B31 + label.len() as u64);
        for step in 0..STEPS {
            let old_key = bank_key(&live.as_instance(), &cost);
            let next = perturb(&live.network, &mut rng);
            let delta = NetworkDelta::between(&live.network, &next).expect("same shape");
            live.network = next;

            bank.update_in_place(old_key, live.as_instance(), cost, &delta, 1)
                .expect("the chained entry is banked");
            let warm = bank.context_for(live.as_instance(), cost, 1);
            let cold = SolveContext::new(live.as_instance(), cost);
            let rebuilt = warm.eval_kernel();
            let reference = cold.eval_kernel();

            let (_, stale) = partition_stale(&prev_entries, &live.network, &cost, &delta);
            let patched = Arc::new(prev_kernel.patched_for_churn(&warm, &delta, &stale));

            assert_kernels_indistinguishable(
                &format!("{label} step {step}"),
                &live.as_instance(),
                &reference,
                &[("repaired-rebuilt", &rebuilt), ("patched", &patched)],
                0x4B4E ^ (step as u64) ^ label.len() as u64,
            );

            // chain the REPAIRED state forward; a wrongly kept tree or a
            // mispatched row would compound into later steps
            bank.deposit(&warm);
            prev_entries = warm.closure().export();
            prev_kernel = rebuilt;
        }
        let stats = bank.stats();
        assert_eq!(
            stats.repairs, STEPS as u64,
            "{label}: every step must repair in place"
        );
    }
}

/// End-to-end: every registry solver returns the bit-identical solution on
/// a repaired bank context as on a cold context of the perturbed instance.
#[test]
fn every_registry_solver_is_bit_identical_repaired_vs_cold() {
    let cost = CostModel::default();
    for (label, topology) in topologies() {
        // tiny instance: the registry includes exponential exact solvers
        let mut spec = InstanceSpec::sized(3, 8, 14);
        spec.topology = topology;
        let base = spec.generate(0xD1FF).expect("spec generates");
        let old_key = bank_key(&base.as_instance(), &cost);

        let bank = ClosureBank::new();
        {
            // populate the banked closure with whatever the full roster
            // touches, then deposit it
            let ctx = bank.context_for(base.as_instance(), cost, 1);
            for entry in registry() {
                let _ = entry.solve(&ctx);
            }
            bank.deposit(&ctx);
        }

        // a multi-link perturbation, both directions priced
        let mut live = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(0xA11 + label.len() as u64);
        live.network = perturb(&live.network, &mut rng);
        let delta = NetworkDelta::between(&base.network, &live.network).expect("same shape");
        assert!(!delta.is_empty(), "the perturbation must move something");

        bank.update_in_place(old_key, live.as_instance(), cost, &delta, 1)
            .expect("the base entry is banked");

        let warm = bank.context_for(live.as_instance(), cost, 1);
        let cold = SolveContext::new(live.as_instance(), cost);
        let stats = bank.stats();
        assert_eq!(stats.hits, 1, "{label}: the repaired checkout must hit");
        assert_eq!(stats.repairs, 1);

        for entry in registry() {
            match (entry.solve(&warm), entry.solve(&cold)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.assignment,
                        b.assignment,
                        "{label}: solver {} moved on a repaired context",
                        entry.name()
                    );
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "{label}: solver {} objective drifted",
                        entry.name()
                    );
                }
                (Err(_), Err(_)) => {} // both infeasible the same way
                (warm_r, cold_r) => panic!(
                    "{label}: solver {} disagreed on feasibility: warm {:?} cold {:?}",
                    entry.name(),
                    warm_r.is_ok(),
                    cold_r.is_ok()
                ),
            }
        }
    }
}
