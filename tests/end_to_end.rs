//! Cross-crate integration: the full workflow a downstream user runs —
//! generate/describe a network, build a pipeline, solve both objectives
//! with every algorithm, execute the result in the simulator, and
//! round-trip everything through serialization.

use elpc::mapping::{elpc_delay, elpc_rate, exact, greedy, streamline, CostModel, Stage};
use elpc::netsim::format;
use elpc::prelude::*;
use elpc::simcore::{simulate, Workload};
use elpc::workloads::cases;

fn cost() -> CostModel {
    CostModel::default()
}

/// A hand-written network in the paper's text format, exercised end to end.
const WAN_TEXT: &str = "\
# three sites and a relay
node 0 4000 10.0.1.1
node 1 20000 10.0.2.1
node 2 9000 10.0.3.1
node 3 2500 10.0.4.1
link 0 1 622 2.0
link 1 2 1000 1.0
link 2 3 100 5.0
link 0 2 155 8.0
link 1 3 45 12.0
";

#[test]
fn parse_solve_simulate_roundtrip() {
    let network = format::from_text(WAN_TEXT).expect("the fixture parses");
    assert_eq!(network.node_count(), 4);
    assert_eq!(network.link_count(), 5);

    let pipeline = Pipeline::from_stages(3e6, &[(2.5, 8e5), (4.0, 2e5)], 0.8).unwrap();
    let inst = Instance::new(&network, &pipeline, NodeId(0), NodeId(3)).unwrap();

    // delay: DP vs exhaustive vs greedy
    let dp = elpc_delay::solve(&inst, &cost()).unwrap();
    let ex = exact::min_delay(&inst, &cost(), exact::ExactLimits::default()).unwrap();
    assert!((dp.delay_ms - ex.delay_ms).abs() < 1e-6 * ex.delay_ms);
    let g = greedy::solve_min_delay(&inst, &cost()).unwrap();
    assert!(dp.delay_ms <= g.delay_ms + 1e-9);

    // rate: heuristic vs exhaustive
    let rate = elpc_rate::solve(&inst, &cost()).unwrap();
    let ex_rate = exact::max_rate(&inst, &cost(), exact::ExactLimits::default()).unwrap();
    assert!(ex_rate.bottleneck_ms <= rate.bottleneck_ms + 1e-9);

    // streamline produces a pinned, evaluable placement
    let sl = streamline::solve_min_delay(&inst, &cost()).unwrap();
    assert_eq!(sl.assignment[0], NodeId(0));
    assert_eq!(*sl.assignment.last().unwrap(), NodeId(3));

    // simulate both optima and check the analytic agreement
    let rep = simulate(&inst, &cost(), &dp.mapping, Workload::single()).unwrap();
    assert!((rep.end_to_end_delay_ms(0).unwrap() - dp.delay_ms).abs() < 1e-6);
    let rep = simulate(&inst, &cost(), &rate.mapping, Workload::stream(30)).unwrap();
    assert!((rep.steady_interdeparture_ms().unwrap() - rate.bottleneck_ms).abs() < 1e-6);

    // round-trip the network description
    let text = format::to_text(&network);
    let back = format::from_text(&text).unwrap();
    assert_eq!(back.node_count(), network.node_count());
    assert_eq!(back.link_count(), network.link_count());

    // and the solutions through JSON
    let json = serde_json::to_string(&dp).unwrap();
    let dp2: elpc::mapping::DelaySolution = serde_json::from_str(&json).unwrap();
    assert_eq!(dp.mapping, dp2.mapping);
}

#[test]
fn suite_prefix_runs_all_algorithms_consistently() {
    for case in &cases::paper_cases()[..4] {
        let owned = case.generate().unwrap();
        let inst = owned.as_instance();
        let dp = elpc_delay::solve(&inst, &cost()).unwrap();
        // every solver's solution re-evaluates to its reported objective
        let re = cost().delay_ms(&inst, &dp.mapping).unwrap();
        assert!((re - dp.delay_ms).abs() < 1e-6 * dp.delay_ms.max(1.0));
        if let Ok(rate) = elpc_rate::solve(&inst, &cost()) {
            let re = cost().bottleneck_ms(&inst, &rate.mapping).unwrap();
            assert!((re - rate.bottleneck_ms).abs() < 1e-6 * rate.bottleneck_ms.max(1.0));
            // streaming throughput: simulate a short stream
            let frames = 3 * owned.pipeline.len();
            let rep = simulate(&inst, &cost(), &rate.mapping, Workload::stream(frames)).unwrap();
            let gap = rep.steady_interdeparture_ms().unwrap();
            assert!((gap - rate.bottleneck_ms).abs() < 1e-6 * rate.bottleneck_ms.max(1.0));
        }
    }
}

#[test]
fn stage_breakdown_reconciles_with_objectives() {
    let owned = cases::small_case().unwrap();
    let inst = owned.as_instance();
    let dp = elpc_delay::solve(&inst, &cost()).unwrap();
    let stages = cost().stage_times(&inst, &dp.mapping).unwrap();
    let sum: f64 = stages.iter().map(Stage::ms).sum();
    let max = stages.iter().map(Stage::ms).fold(0.0, f64::max);
    assert!((sum - dp.delay_ms).abs() < 1e-6 * dp.delay_ms);
    assert!(max <= sum);
    assert!(
        stages.len() == 2 * dp.mapping.q() - 1,
        "compute and transfer stages must alternate"
    );
}

#[test]
fn scenario_pipelines_map_onto_scenario_networks() {
    // the §1 scenarios must be solvable on a reasonable WAN out of the box
    let network = format::from_text(WAN_TEXT).unwrap();
    for pipe in [
        elpc::pipeline::scenarios::remote_visualization(1e7),
        elpc::pipeline::scenarios::video_surveillance(1e6),
    ] {
        let inst = Instance::new(&network, &pipe, NodeId(0), NodeId(3)).unwrap();
        let dp = elpc_delay::solve(&inst, &cost()).unwrap();
        assert!(dp.delay_ms.is_finite() && dp.delay_ms > 0.0);
        // with 6 modules on 4 nodes, streaming needs reuse: the strict
        // solver must refuse and the extension must succeed
        assert!(elpc_rate::solve(&inst, &cost()).is_err());
        let grouped = elpc::extensions::reuse_rate::solve(&inst, &cost()).unwrap();
        assert!(grouped.bottleneck_ms.is_finite());
        let rep = simulate(
            &inst,
            &cost(),
            &grouped.mapping,
            Workload::stream(3 * pipe.len()),
        )
        .unwrap();
        let gap = rep.steady_interdeparture_ms().unwrap();
        assert!((gap - grouped.bottleneck_ms).abs() < 1e-6 * grouped.bottleneck_ms);
    }
}

#[test]
fn measurement_feeds_mapping() {
    // estimate links from probes, build the network from estimates, map
    use elpc::netsim::measure::{estimate_link, ProbePlan};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let plan = ProbePlan {
        repeats: 20,
        noise_frac: 0.03,
        ..ProbePlan::default()
    };
    let truth = [
        Link::new(622.0, 2.0),
        Link::new(1000.0, 1.0),
        Link::new(100.0, 5.0),
    ];
    let mut b = Network::builder();
    let n0 = b.add_node(4000.0).unwrap();
    let n1 = b.add_node(20000.0).unwrap();
    let n2 = b.add_node(9000.0).unwrap();
    let n3 = b.add_node(2500.0).unwrap();
    let est0 = estimate_link(&truth[0], &plan, &mut rng).unwrap().to_link();
    let est1 = estimate_link(&truth[1], &plan, &mut rng).unwrap().to_link();
    let est2 = estimate_link(&truth[2], &plan, &mut rng).unwrap().to_link();
    b.add_link_payload(n0, n1, est0).unwrap();
    b.add_link_payload(n1, n2, est1).unwrap();
    b.add_link_payload(n2, n3, est2).unwrap();
    let net = b.build().unwrap();
    let pipe = Pipeline::from_stages(2e6, &[(1.5, 5e5), (3.0, 1e5)], 0.5).unwrap();
    let inst = Instance::new(&net, &pipe, n0, n3).unwrap();
    let sol = elpc_delay::solve(&inst, &cost()).unwrap();
    assert!(sol.delay_ms.is_finite());
    // estimates are near truth, so the mapped delay should be near the
    // ground-truth mapped delay
    let mut b2 = Network::builder();
    let m0 = b2.add_node(4000.0).unwrap();
    let m1 = b2.add_node(20000.0).unwrap();
    let m2 = b2.add_node(9000.0).unwrap();
    let m3 = b2.add_node(2500.0).unwrap();
    b2.add_link_payload(m0, m1, truth[0].clone()).unwrap();
    b2.add_link_payload(m1, m2, truth[1].clone()).unwrap();
    b2.add_link_payload(m2, m3, truth[2].clone()).unwrap();
    let net_true = b2.build().unwrap();
    let inst_true = Instance::new(&net_true, &pipe, m0, m3).unwrap();
    let sol_true = elpc_delay::solve(&inst_true, &cost()).unwrap();
    let rel = (sol.delay_ms - sol_true.delay_ms).abs() / sol_true.delay_ms;
    assert!(
        rel < 0.15,
        "estimated-network delay off by {:.0}%",
        rel * 100.0
    );
}
