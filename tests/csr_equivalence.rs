//! Cross-layer equivalence suite for the CSR snapshot fast path.
//!
//! The CSR kernels promise **bit-for-bit** identity with the legacy
//! adjacency-list algorithms — not approximate agreement: the same `f64`
//! bits in `dist`/`width` and the same `prev` parent/edge choices,
//! including on ties (the kernel reproduces `std::BinaryHeap`'s pop order
//! exactly; see `elpc_netgraph::csr` docs for the argument). That promise
//! is what lets `MetricClosure::par_warm` and the lazy `routed_from` path
//! share one cache without the build order ever becoming observable.
//!
//! Property-tested here at three layers:
//! 1. raw kernels vs `algo::{dijkstra, widest_paths}` on random connected,
//!    disconnected, and generator (Barabási–Albert / Watts–Strogatz)
//!    topologies, with tie-heavy integer weights to exercise equal-key
//!    heap order;
//! 2. the closure cache: `par_warm` and per-source lazy queries must leave
//!    byte-identical caches;
//! 3. registry solvers on a cold context vs a pre-warmed shared context.

use elpc_mapping::{solver, CostModel, MetricClosure, NodeId, SolveContext};
use elpc_netgraph::csr::{dijkstra_csr, widest_csr, Csr};
use elpc_netgraph::gen::{self, Topology};
use elpc_netgraph::{algo, Graph};
use elpc_netsim::{Link, Network, Node};
use elpc_workloads::{InstanceSpec, TopologyKind};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Tie-heavy deterministic weights: a small integer lattice scaled to
/// fractional values, so distinct paths frequently collide on bit-equal
/// distances and the heap's equal-key pop order becomes observable.
fn lattice_weight(a: u32, b: u32) -> f64 {
    0.25 * (1 + (a * 31 + b * 17) % 7) as f64
}

fn connected_graph(n: usize, links: usize, seed: u64) -> Graph<(), f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = gen::random_connected(n, links, &mut rng).expect("feasible budget");
    topo.into_graph(|_| (), lattice_weight)
}

/// Two random connected components with no edges between them — the
/// unreachable-node case (`dist = +inf`, `prev = None`) must round-trip
/// through the CSR path bit-for-bit too.
fn disconnected_graph(n1: usize, n2: usize, seed: u64) -> Graph<(), f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t1 = gen::random_connected(n1, n1 - 1, &mut rng).expect("tree budget");
    let t2 = gen::random_connected(n2, n2 - 1, &mut rng).expect("tree budget");
    let mut g: Graph<(), f64> = Graph::new();
    for _ in 0..n1 + n2 {
        g.add_node(());
    }
    let off = n1 as u32;
    for e in t1.links() {
        g.add_edge(NodeId(e.0), NodeId(e.1), lattice_weight(e.0, e.1))
            .unwrap();
        g.add_edge(NodeId(e.1), NodeId(e.0), lattice_weight(e.0, e.1))
            .unwrap();
    }
    for e in t2.links() {
        g.add_edge(
            NodeId(e.0 + off),
            NodeId(e.1 + off),
            lattice_weight(e.0 + off, e.1 + off),
        )
        .unwrap();
        g.add_edge(
            NodeId(e.1 + off),
            NodeId(e.0 + off),
            lattice_weight(e.0 + off, e.1 + off),
        )
        .unwrap();
    }
    g
}

/// Asserts the CSR and legacy runs agree bit-for-bit from every source.
fn assert_sssp_identical(g: &Graph<(), f64>) {
    let csr = Csr::from_graph(g);
    let costs = csr.cost_vector(|eid| g.edge(eid).expect("live edge").payload);
    for src in g.node_ids() {
        let legacy = algo::dijkstra(g, src, |_, e| e.payload);
        let fast = dijkstra_csr(&csr, src, &costs);
        for v in 0..g.node_count() {
            assert_eq!(
                legacy.dist[v].to_bits(),
                fast.dist[v].to_bits(),
                "dist divergence src={src:?} v={v}"
            );
            assert_eq!(
                legacy.prev[v], fast.prev[v],
                "prev divergence src={src:?} v={v}"
            );
        }
    }
}

fn assert_widest_identical(g: &Graph<(), f64>) {
    let csr = Csr::from_graph(g);
    let widths = csr.cost_vector(|eid| g.edge(eid).expect("live edge").payload);
    for src in g.node_ids() {
        let legacy = algo::widest_paths(g, src, |_, e| e.payload);
        let fast = widest_csr(&csr, src, &widths);
        for v in 0..g.node_count() {
            assert_eq!(
                legacy.width[v].to_bits(),
                fast.width[v].to_bits(),
                "width divergence src={src:?} v={v}"
            );
            assert_eq!(
                legacy.prev[v], fast.prev[v],
                "prev divergence src={src:?} v={v}"
            );
        }
    }
}

fn topo_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=14, any::<u64>()).prop_flat_map(|(n, seed)| {
        let min = n - 1;
        let max = Topology::max_links(n);
        (Just(n), min..=max, Just(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_dijkstra_matches_legacy_on_random_topologies((n, links, seed) in topo_params()) {
        assert_sssp_identical(&connected_graph(n, links, seed));
    }

    #[test]
    fn csr_widest_matches_legacy_on_random_topologies((n, links, seed) in topo_params()) {
        assert_widest_identical(&connected_graph(n, links, seed));
    }

    #[test]
    fn csr_kernels_match_legacy_on_disconnected_graphs(
        (n1, n2, seed) in (2usize..=8, 2usize..=8, any::<u64>())
    ) {
        let g = disconnected_graph(n1, n2, seed);
        assert_sssp_identical(&g);
        assert_widest_identical(&g);
    }

    #[test]
    fn csr_kernels_match_legacy_on_generator_topologies(
        (n, attach, k, seed) in (6usize..=24, 1usize..=3, 1usize..=2, any::<u64>())
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ba = gen::barabasi_albert(n, attach, &mut rng).expect("valid BA params");
        let g = ba.into_graph(|_| (), lattice_weight);
        assert_sssp_identical(&g);
        assert_widest_identical(&g);

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5);
        let ws = gen::watts_strogatz(n, 2 * k, 0.3, &mut rng).expect("valid WS params");
        let g = ws.into_graph(|_| (), lattice_weight);
        assert_sssp_identical(&g);
        assert_widest_identical(&g);
    }
}

/// A small BA network with the suite's §4.1 parameter ranges.
fn ba_network(n: usize, seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = gen::barabasi_albert(n, 2, &mut rng).expect("valid BA params");
    let powers: Vec<f64> = (0..n)
        .map(|_| 50.0 + 4950.0 * ((seed >> 3) % 97) as f64 / 97.0)
        .collect();
    let mut wrng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
    Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| {
            use rand::Rng;
            Link::new(wrng.gen_range(1.0..1000.0), wrng.gen_range(0.1..10.0))
        },
    )
    .expect("BA topologies materialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The closure invariant the whole reuse design hangs on: a batched
    /// `par_warm` and a per-source lazy walk leave *identical* caches, so
    /// which path materialized an entry can never be observed downstream.
    #[test]
    fn par_warm_and_lazy_queries_leave_identical_caches(
        (n, seed) in (4usize..=24, any::<u64>())
    ) {
        let net = ba_network(n, seed);
        let cost = CostModel::default();
        let payloads = [1e5, 1e6];

        let lazy = MetricClosure::new(&net, cost);
        for &bytes in &payloads {
            for s in net.node_ids() {
                lazy.routed_from(s, bytes);
            }
        }
        let warm = MetricClosure::new(&net, cost);
        let sources: Vec<NodeId> = net.node_ids().collect();
        let built = warm.par_warm(&sources, &payloads, 1);
        prop_assert_eq!(built, n * payloads.len());

        let a = lazy.export();
        let b = warm.export();
        prop_assert_eq!(a.len(), b.len());
        for (ea, eb) in a.iter().zip(&b) {
            prop_assert_eq!(ea.key, eb.key);
            for v in 0..n {
                prop_assert_eq!(ea.tree.dist[v].to_bits(), eb.tree.dist[v].to_bits());
                prop_assert_eq!(ea.tree.prev[v], eb.tree.prev[v]);
            }
        }
    }

    /// Registry solvers see the same world whether the closure was warmed
    /// through the CSR batch path or filled lazily by their own queries.
    #[test]
    fn solvers_agree_on_cold_and_csr_warmed_contexts(seed in 0u64..2048) {
        let mut spec = InstanceSpec::sized(5, 12, 0);
        spec.topology = TopologyKind::ScaleFree { attach: 2 };
        let owned = spec.generate(seed).expect("BA instances generate");
        let inst = owned.as_instance();
        let cost = CostModel::default();

        let cold = SolveContext::new(inst, cost);

        let closure = MetricClosure::new(&owned.network, cost);
        let sources: Vec<NodeId> = owned.network.node_ids().collect();
        let payloads: Vec<f64> = (1..owned.pipeline.len())
            .map(|j| owned.pipeline.input_bytes(j))
            .collect();
        closure.par_warm(&sources, &payloads, 1);
        let warmed = SolveContext::from_shared(inst, Arc::new(closure), 1)
            .expect("closure shares the instance network");

        for name in [
            "elpc_delay",
            "elpc_rate",
            "streamline_delay",
            "streamline_rate",
            "greedy_delay",
            "elpc_delay_routed",
        ] {
            let s = solver(name).expect("registered");
            let a = s.solve(&cold);
            let b = s.solve(&warmed);
            match (a, b) {
                (Ok(sa), Ok(sb)) => {
                    prop_assert_eq!(&sa.assignment, &sb.assignment, "{}", name);
                    prop_assert_eq!(
                        sa.objective_ms.to_bits(),
                        sb.objective_ms.to_bits(),
                        "{}", name
                    );
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "{name}: cold {a:?} vs warmed {b:?}"),
            }
        }
    }
}
