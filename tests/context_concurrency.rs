//! Concurrency and determinism lockdown for the sharded `MetricClosure`,
//! the parallel warm-up path, and the cross-instance `ClosureBank`.
//!
//! The contract under test: thread counts and cache seeding change *when*
//! shortest-path trees are built and *where* they come from — never their
//! contents, never a solver's output, and never the exactness of the
//! statistics. CI runs the `determinism_` tests both at
//! `RUST_TEST_THREADS=1` and with `threads = 0` (all CPUs) warm-ups.

use elpc::mapping::{solver, CostModel, MetricClosure, NodeId, SolveContext};
use elpc::netgraph::algo::dijkstra;
use elpc::workloads::compare::{run_case, run_case_opts, run_cases, CompareOptions};
use elpc::workloads::{cases, ClosureBank, InstanceSpec, ProblemInstance};

fn cost() -> CostModel {
    CostModel::default()
}

/// The distinct stage-boundary payload sizes of an instance's pipeline.
fn boundary_payloads(inst: &ProblemInstance) -> Vec<f64> {
    let mut p: Vec<f64> = (1..inst.pipeline.len())
        .map(|j| inst.pipeline.input_bytes(j))
        .collect();
    p.sort_by(|a, b| a.partial_cmp(b).expect("payloads are finite"));
    p.dedup();
    p
}

// --------------------------------------------------------------------------
// parallel-vs-serial determinism
// --------------------------------------------------------------------------

/// `par_warm` at `threads = 1` and `threads = 0` leaves bit-for-bit
/// identical caches on ≥ 20 generated instances.
#[test]
fn determinism_par_warm_thread_counts_are_bit_identical() {
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(5, 10, 24).generate(seed).unwrap();
        let net = &owned.network;
        let payloads = boundary_payloads(&owned);
        let sources: Vec<NodeId> = net.node_ids().collect();

        let serial = MetricClosure::new(net, cost());
        let parallel = MetricClosure::new(net, cost());
        let built_serial = serial.par_warm(&sources, &payloads, 1);
        let built_parallel = parallel.par_warm(&sources, &payloads, 0);
        assert_eq!(built_serial, built_parallel, "seed {seed}");
        assert_eq!(serial.cached_trees(), parallel.cached_trees());

        for &src in &sources {
            for &bytes in &payloads {
                let a = serial.routed_from(src, bytes);
                let b = parallel.routed_from(src, bytes);
                let fresh = dijkstra(net.graph(), src, |eid, _| {
                    cost().edge_transfer_ms(net, eid, bytes)
                });
                for v in 0..net.node_count() {
                    assert_eq!(
                        a.dist[v].to_bits(),
                        b.dist[v].to_bits(),
                        "seed {seed}, src {src}, payload {bytes}, node {v}"
                    );
                    assert_eq!(a.prev[v], b.prev[v]);
                    assert_eq!(a.dist[v].to_bits(), fresh.dist[v].to_bits());
                    assert_eq!(a.prev[v], fresh.prev[v]);
                }
            }
        }
    }
}

/// Every solver produces identical output on lazy-serial, serial-warm, and
/// all-CPU-warm contexts, on ≥ 20 generated instances. For the routed DPs
/// the thread count also drives the chunked column relax, and for the
/// metaheuristics it must not perturb the seeded search.
#[test]
fn determinism_solver_outputs_are_warm_up_invariant() {
    let names = [
        "elpc_delay_routed",
        "elpc_rate_routed",
        "streamline_delay",
        "streamline_rate",
        "anneal_delay",
        "genetic_rate",
    ];
    for seed in 100..120u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        for name in names {
            let s = solver(name).expect("registered");
            let lazy = s.solve(&SolveContext::new(inst, cost()));
            let warm1 = s.solve(&SolveContext::with_threads(inst, cost(), 2));
            let warm0 = s.solve(&SolveContext::with_threads(inst, cost(), 0));
            match (lazy, warm1, warm0) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "seed {seed}, solver {name}"
                    );
                    assert_eq!(a.objective_ms.to_bits(), c.objective_ms.to_bits());
                    assert_eq!(a.assignment, b.assignment);
                    assert_eq!(a.assignment, c.assignment);
                }
                (Err(a), Err(b), Err(c)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, solver {name}");
                    assert_eq!(a.to_string(), c.to_string());
                }
                other => panic!("seed {seed}, solver {name}: divergent feasibility {other:?}"),
            }
        }
    }
}

/// The chunked per-stage relax loops of the routed DPs: `threads = 1`
/// (serial, no workers) and `threads = 0` (all CPUs, chunked columns)
/// produce bit-for-bit identical DP outputs — objective *and* assignment —
/// on instances large enough that every chunk boundary shape occurs. Node
/// counts cover both parallel-relax crossover bands: ≥ 64 chunks both DPs,
/// and the 30-node case chunks only the (heavier) rate DP.
#[test]
fn determinism_parallel_relax_is_bit_identical_to_serial() {
    for (seed, (m, n, l)) in [
        (31u64, (8, 70, 220)),
        (32, (6, 64, 160)),
        (33, (10, 90, 300)),
        (34, (7, 30, 100)),
    ]
    .into_iter()
    .cycle()
    .take(8)
    .enumerate()
    .map(|(i, (s, dims))| (s + 100 * i as u64, dims))
    {
        let owned = InstanceSpec::sized(m, n, l).generate(seed).unwrap();
        let inst = owned.as_instance();
        for name in ["elpc_delay_routed", "elpc_rate_routed"] {
            let s = solver(name).expect("registered");
            let serial = s.solve(&SolveContext::with_threads(inst, cost(), 1));
            let two = s.solve(&SolveContext::with_threads(inst, cost(), 2));
            let all = s.solve(&SolveContext::with_threads(inst, cost(), 0));
            match (serial, two, all) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        b.objective_ms.to_bits(),
                        "seed {seed}, {name}: t1 vs t2"
                    );
                    assert_eq!(
                        a.objective_ms.to_bits(),
                        c.objective_ms.to_bits(),
                        "seed {seed}, {name}: t1 vs t0"
                    );
                    assert_eq!(a.assignment, b.assignment, "seed {seed}, {name}");
                    assert_eq!(a.assignment, c.assignment, "seed {seed}, {name}");
                }
                (Err(a), Err(b), Err(c)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, {name}");
                    assert_eq!(a.to_string(), c.to_string(), "seed {seed}, {name}");
                }
                other => panic!("seed {seed}, {name}: divergent feasibility {other:?}"),
            }
        }
    }
}

// --------------------------------------------------------------------------
// concurrent stress
// --------------------------------------------------------------------------

/// Many threads hammer one shared closure with a mixed hit/miss key
/// pattern: the final statistics stay exact (`hits + misses == queries`)
/// and every cached entry equals a fresh Dijkstra run.
#[test]
fn concurrent_stress_keeps_stats_exact_and_entries_correct() {
    let owned = InstanceSpec::sized(6, 20, 60).generate(4242).unwrap();
    let net = &owned.network;
    let k = net.node_count();
    let payloads: Vec<f64> = (1..=6).map(|i| 2.5e5 * i as f64).collect();
    let mc = MetricClosure::new(net, cost());

    const THREADS: usize = 8;
    const PER_THREAD: usize = 500;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mc = &mc;
            let payloads = &payloads;
            scope.spawn(move || {
                // a cheap deterministic per-thread LCG walk over the keys,
                // revisiting hot keys often (hits) and spreading over the
                // full space (misses)
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1);
                for _ in 0..PER_THREAD {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let src = NodeId::from_index(((state >> 33) as usize) % k);
                    let bytes = payloads[((state >> 7) as usize) % payloads.len()];
                    let tree = mc.routed_from(src, bytes);
                    assert_eq!(tree.dist.len(), k);
                }
            });
        }
    });

    let stats = mc.stats();
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * PER_THREAD) as u64,
        "every query must count exactly one hit or one miss"
    );
    // each cached tree cost at least one miss (racing builders may add more)
    assert!(stats.misses as usize >= mc.cached_trees());
    assert!(mc.cached_trees() <= k * payloads.len());
    assert!(
        stats.hit_rate() > 0.5,
        "the walk revisits keys; most queries must hit ({stats:?})"
    );

    // every entry the stress built equals a fresh Dijkstra, bit for bit
    for v in 0..k {
        let src = NodeId::from_index(v);
        for &bytes in &payloads {
            if !mc.contains(src, bytes) {
                continue;
            }
            let cached = mc.routed_from(src, bytes);
            let fresh = dijkstra(net.graph(), src, |eid, _| {
                cost().edge_transfer_ms(net, eid, bytes)
            });
            for u in 0..k {
                assert_eq!(cached.dist[u].to_bits(), fresh.dist[u].to_bits());
                assert_eq!(cached.prev[u], fresh.prev[u]);
            }
        }
    }
}

/// The strongest concurrency stress the closure faces: both portfolio
/// slates — twelve registered solvers, metaheuristics included — hammer
/// **one** shared context at full parallelism (the two races themselves on
/// separate threads, each racing its slate on all CPUs). The lockdown:
///
/// * every member's query count is deterministic and cache-independent, so
///   the concurrent run's `hits + misses` must equal the serial run's
///   total **exactly** (racing builders each record their own miss, so
///   only the hit/miss split may shift — never the sum);
/// * both race winners are bit-identical to the serial references;
/// * every closure entry the stress built equals a fresh serial Dijkstra.
#[test]
fn concurrent_portfolio_races_keep_stats_exact_and_closure_correct() {
    use elpc::mapping::portfolio::{solve_portfolio, PortfolioConfig};
    use elpc::mapping::Objective;

    let owned = InstanceSpec::sized(6, 14, 40).generate(2024).unwrap();
    let inst = owned.as_instance();

    // serial reference: both slates, one at a time, on a fresh context
    let serial_ctx = SolveContext::new(inst, cost());
    let serial_delay = solve_portfolio(
        &serial_ctx,
        Objective::MinDelay,
        &PortfolioConfig::for_objective(Objective::MinDelay),
    )
    .expect("delay slate solves");
    let serial_rate = solve_portfolio(
        &serial_ctx,
        Objective::MaxRate,
        &PortfolioConfig::for_objective(Objective::MaxRate),
    )
    .expect("rate slate solves");
    let serial_stats = serial_ctx.closure().stats();

    // concurrent: one shared context, both races at once, slates on all CPUs
    let ctx = SolveContext::new(inst, cost());
    let (delay, rate) = std::thread::scope(|scope| {
        let d = scope.spawn(|| {
            solve_portfolio(
                &ctx,
                Objective::MinDelay,
                &PortfolioConfig::for_objective(Objective::MinDelay).threads(0),
            )
            .expect("delay slate solves")
        });
        let r = scope.spawn(|| {
            solve_portfolio(
                &ctx,
                Objective::MaxRate,
                &PortfolioConfig::for_objective(Objective::MaxRate).threads(0),
            )
            .expect("rate slate solves")
        });
        (d.join().unwrap(), r.join().unwrap())
    });

    for (concurrent, serial) in [(&delay, &serial_delay), (&rate, &serial_rate)] {
        assert_eq!(concurrent.winner, serial.winner);
        assert_eq!(concurrent.solution.assignment, serial.solution.assignment);
        assert_eq!(
            concurrent.solution.objective_ms.to_bits(),
            serial.solution.objective_ms.to_bits()
        );
        for (a, b) in concurrent.members.iter().zip(&serial.members) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.objective_ms, b.objective_ms, "member {}", a.name);
            assert_eq!(a.won, b.won, "member {}", a.name);
        }
    }

    // exact statistics: the sum is the (deterministic) query count
    let stats = ctx.closure().stats();
    assert_eq!(
        stats.hits + stats.misses,
        serial_stats.hits + serial_stats.misses,
        "hits + misses must equal the slates' total query count \
         (concurrent {stats:?} vs serial {serial_stats:?})"
    );
    // each cached tree cost at least one miss (racing builders may add more)
    assert!(stats.misses as usize >= ctx.closure().cached_trees());

    // every entry the stress built equals a fresh serial Dijkstra
    for entry in ctx.closure().export() {
        let src = entry.key.source_node();
        let bytes = entry.key.payload();
        let fresh = dijkstra(owned.network.graph(), src, |eid, _| {
            cost().edge_transfer_ms(&owned.network, eid, bytes)
        });
        for v in 0..owned.network.node_count() {
            assert_eq!(
                entry.tree.dist[v].to_bits(),
                fresh.dist[v].to_bits(),
                "src {src}, payload {bytes}, node {v}"
            );
            assert_eq!(entry.tree.prev[v], fresh.prev[v]);
        }
    }
}

/// A single `SolveContext` shared by reference across threads: concurrent
/// solves agree with the serial baseline exactly.
#[test]
fn concurrent_solves_share_one_context_safely() {
    let owned = InstanceSpec::sized(6, 14, 40).generate(777).unwrap();
    let inst = owned.as_instance();
    let baseline = solver("elpc_delay_routed")
        .unwrap()
        .solve(&SolveContext::new(inst, cost()))
        .unwrap();

    let ctx = SolveContext::new(inst, cost());
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let ctx = &ctx;
                scope.spawn(move || {
                    solver("elpc_delay_routed")
                        .unwrap()
                        .solve(ctx)
                        .expect("feasible")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for sol in results {
        assert_eq!(sol.objective_ms.to_bits(), baseline.objective_ms.to_bits());
        assert_eq!(sol.assignment, baseline.assignment);
    }
    let stats = ctx.closure().stats();
    assert!(stats.hits > 0, "six solves on one closure must share trees");
}

// --------------------------------------------------------------------------
// ClosureBank identity and the banked sweep/compare path
// --------------------------------------------------------------------------

/// The golden-CSV pin: `fig2_table`-shaped rows over the suite prefix are
/// character-identical with the bank on and off.
#[test]
fn determinism_fig2_rows_identical_with_bank_on_and_off() {
    use elpc_experiments::{fmt_fps, fmt_ms};
    let to_csv = |rows: &[elpc::workloads::compare::CaseResult]| -> String {
        let mut csv = String::from(
            "case,m,n,l,elpc_delay,streamline_delay,greedy_delay,\
             elpc_rate,streamline_rate,greedy_rate\n",
        );
        for (i, r) in rows.iter().enumerate() {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                i + 1,
                r.dims.0,
                r.dims.1,
                r.dims.2,
                fmt_ms(&r.delay_elpc),
                fmt_ms(&r.delay_streamline),
                fmt_ms(&r.delay_greedy),
                fmt_fps(&r.rate_elpc),
                fmt_fps(&r.rate_streamline),
                fmt_fps(&r.rate_greedy),
            ));
        }
        csv
    };

    let specs = &cases::paper_cases()[..4];
    let plain: Vec<_> = specs
        .iter()
        .map(|c| run_case(&c.generate().unwrap(), &cost()))
        .collect();
    let bank = ClosureBank::new();
    let banked: Vec<_> = specs
        .iter()
        .map(|c| {
            run_case_opts(
                &c.generate().unwrap(),
                &cost(),
                CompareOptions::banked(&bank),
            )
        })
        .collect();
    assert_eq!(plain, banked, "bank must not change any row");
    assert_eq!(to_csv(&plain), to_csv(&banked), "golden CSV must pin");
    // four distinct topologies: all misses, all deposited
    assert_eq!(bank.stats().misses, 4);
    assert_eq!(bank.len(), 4);
}

/// The sweep/compare path reuses a banked closure across cases sharing a
/// network, and a perturbed network misses the bank.
#[test]
fn banked_sweep_hits_on_shared_topology_and_misses_on_perturbation() {
    let spec = InstanceSpec::sized(6, 12, 30);
    let inst = spec.generate(9).unwrap();
    let baseline = run_case(&inst, &cost());

    // three sweep cases over one network → one cold build, two bank hits
    let suite = vec![inst.clone(), inst.clone(), inst.clone()];
    let bank = ClosureBank::new();
    let rows = run_cases(&suite, &cost(), 1, CompareOptions::banked(&bank));
    for row in &rows {
        assert_eq!(row, &baseline);
    }
    let stats = bank.stats();
    assert_eq!((stats.hits, stats.misses), (2, 1));
    assert!(stats.hit_rate() > 0.6);

    // perturb one link bandwidth: the fingerprint guard must force a miss
    let mut perturbed = spec.generate(9).unwrap();
    let link = perturbed
        .network
        .link(elpc::netgraph::EdgeId(0))
        .unwrap()
        .clone();
    perturbed
        .network
        .set_link_symmetric(
            elpc::netgraph::EdgeId(0),
            elpc::netsim::Link::new(link.bw_mbps + 0.5, link.mld_ms),
        )
        .unwrap();
    run_case_opts(&perturbed, &cost(), CompareOptions::banked(&bank));
    assert_eq!(bank.stats().misses, 2, "perturbed bandwidth must miss");

    // ... and a perturbed MLD likewise
    let mut perturbed = spec.generate(9).unwrap();
    perturbed
        .network
        .set_link_symmetric(
            elpc::netgraph::EdgeId(0),
            elpc::netsim::Link::new(link.bw_mbps, link.mld_ms + 0.25),
        )
        .unwrap();
    run_case_opts(&perturbed, &cost(), CompareOptions::banked(&bank));
    assert_eq!(bank.stats().misses, 3, "perturbed MLD must miss");
}
