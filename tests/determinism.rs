//! Reproducibility guarantees: every component of the experiment stack is
//! a pure function of its seeds — a hard requirement for a credible
//! reproduction (same seed ⇒ same table, on any machine).

use elpc::mapping::{elpc_delay, elpc_rate, streamline, CostModel};
use elpc::simcore::{simulate, Workload};
use elpc::workloads::{cases, compare, sweep, InstanceSpec};

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn instances_are_bitwise_reproducible() {
    let spec = InstanceSpec::sized(8, 16, 40);
    let a = spec.generate(123).unwrap();
    let b = spec.generate(123).unwrap();
    assert_eq!(
        serde_json::to_string(&a.network).unwrap(),
        serde_json::to_string(&b.network).unwrap()
    );
    assert_eq!(a.pipeline, b.pipeline);
}

#[test]
fn solvers_are_deterministic() {
    let owned = InstanceSpec::sized(7, 14, 30).generate(55).unwrap();
    let inst = owned.as_instance();
    let d1 = elpc_delay::solve(&inst, &cost()).unwrap();
    let d2 = elpc_delay::solve(&inst, &cost()).unwrap();
    assert_eq!(d1.mapping, d2.mapping);
    assert_eq!(d1.delay_ms.to_bits(), d2.delay_ms.to_bits());
    if let (Ok(r1), Ok(r2)) = (
        elpc_rate::solve(&inst, &cost()),
        elpc_rate::solve(&inst, &cost()),
    ) {
        assert_eq!(r1.mapping, r2.mapping);
    }
    let s1 = streamline::solve_min_delay(&inst, &cost()).unwrap();
    let s2 = streamline::solve_min_delay(&inst, &cost()).unwrap();
    assert_eq!(s1, s2);
}

#[test]
fn simulation_is_deterministic() {
    let owned = InstanceSpec::sized(6, 12, 25).generate(7).unwrap();
    let inst = owned.as_instance();
    let sol = elpc_delay::solve(&inst, &cost()).unwrap();
    let r1 = simulate(&inst, &cost(), &sol.mapping, Workload::stream(20)).unwrap();
    let r2 = simulate(&inst, &cost(), &sol.mapping, Workload::stream(20)).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn parallel_sweep_equals_sequential_run() {
    // thread count must never change results (no data races, no
    // order-dependence)
    let specs = &cases::paper_cases()[..3];
    let seq: Vec<compare::CaseResult> = specs
        .iter()
        .map(|s| compare::run_case(&s.generate().unwrap(), &cost()))
        .collect();
    let par = sweep::run_parallel(specs, 3, |_, s| {
        compare::run_case(&s.generate().unwrap(), &cost())
    });
    assert_eq!(seq, par);
}

/// The full 20-case suite produces identical `compare` rows at
/// `threads = 1` and `threads = 0` (all CPUs): every worker builds its own
/// per-instance `SolveContext`, so the shared metric-closure cache cannot
/// leak state across threads or make results schedule-dependent.
#[test]
fn parallel_sweep_is_thread_count_invariant_over_the_full_suite() {
    let specs = cases::paper_cases();
    let run = |threads: usize| {
        sweep::run_parallel(&specs, threads, |_, s| {
            compare::run_case(&s.generate().expect("suite cases generate"), &cost())
        })
    };
    let sequential = run(1);
    let parallel = run(0);
    assert_eq!(sequential.len(), 20);
    for (seq_row, par_row) in sequential.iter().zip(&parallel) {
        assert_eq!(seq_row, par_row, "row diverged for {}", seq_row.label);
        // bit-level check on the headline columns (PartialEq on f64 is
        // already exact, but make the intent explicit for the objectives)
        if let (Some(a), Some(b)) = (seq_row.delay_elpc.ms(), par_row.delay_elpc.ms()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        if let (Some(a), Some(b)) = (seq_row.rate_elpc.ms(), par_row.rate_elpc.ms()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn suite_case_one_matches_published_seed_values() {
    // pin the published-seed values of the smallest suite case: if the
    // generator drifts, recorded experiment numbers silently rot.
    // (Update both together when intentionally changing the generator.)
    //
    // These values were re-derived when the workspace moved to the offline
    // rand/rand_chacha shims, whose streams are deterministic but not
    // bit-compatible with upstream rand (the pre-shim pins were 4243.6 ms
    // and 0.43 fps).
    let inst = cases::paper_cases()[0].generate().unwrap();
    let view = inst.as_instance();
    let d = elpc_delay::solve(&view, &cost()).unwrap();
    assert!(
        (d.delay_ms - 1864.0).abs() < 0.1,
        "case 1 delay drifted: {:.1} (pinned 1864.0)",
        d.delay_ms
    );
    // note: the Fig. 2 table's rate column is the routed-overlay portfolio;
    // the strict single-label DP is what is pinned here
    let r = elpc_rate::solve(&view, &cost()).unwrap();
    assert!(
        (r.frame_rate_fps() - 0.35).abs() < 0.01,
        "case 1 strict rate drifted: {:.2} (pinned 0.35)",
        r.frame_rate_fps()
    );
}
