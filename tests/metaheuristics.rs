//! Lockdown for the metaheuristic solver family (ISSUE 3): registry
//! membership, seeded-RNG determinism across runs and thread counts, and
//! the `quality_gap ≥ 1` contract against the exact solvers of the same
//! routed search space on 20 small instances.

use elpc::mapping::{
    exact, metaheuristic, solver, AnnealConfig, CostModel, GeneticConfig, Objective, SolveContext,
};
use elpc::workloads::compare::run_case;
use elpc::workloads::InstanceSpec;

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn metaheuristics_are_registered_with_the_expected_objectives() {
    for (name, objective) in [
        ("anneal_delay", Objective::MinDelay),
        ("anneal_rate", Objective::MaxRate),
        ("genetic_delay", Objective::MinDelay),
        ("genetic_rate", Objective::MaxRate),
    ] {
        let s = solver(name).unwrap_or_else(|| panic!("`{name}` missing from the registry"));
        assert_eq!(s.objective(), objective, "{name}");
        assert!(!s.is_exact(), "{name} is a heuristic");
    }
}

/// Same seed ⇒ identical mapping, across repeated runs and across context
/// thread counts (the closure warm-up and the parallel relax loops must
/// not leak into the search).
#[test]
fn determinism_same_seed_same_mapping_across_runs_and_thread_counts() {
    let names = [
        "anneal_delay",
        "anneal_rate",
        "genetic_delay",
        "genetic_rate",
    ];
    for seed in 0..10u64 {
        let owned = InstanceSpec::sized(5, 9, 20).generate(seed).unwrap();
        let inst = owned.as_instance();
        for name in names {
            let s = solver(name).expect("registered");
            let lazy = s.solve(&SolveContext::new(inst, cost()));
            let rerun = s.solve(&SolveContext::new(inst, cost()));
            let all_cpus = s.solve(&SolveContext::with_threads(inst, cost(), 0));
            match (lazy, rerun, all_cpus) {
                (Ok(a), Ok(b), Ok(c)) => {
                    assert_eq!(a.assignment, b.assignment, "seed {seed}, {name}: rerun");
                    assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
                    assert_eq!(a.assignment, c.assignment, "seed {seed}, {name}: threads");
                    assert_eq!(a.objective_ms.to_bits(), c.objective_ms.to_bits());
                }
                (Err(a), Err(b), Err(c)) => {
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}, {name}");
                    assert_eq!(a.to_string(), c.to_string(), "seed {seed}, {name}");
                }
                other => panic!("seed {seed}, {name}: divergent feasibility {other:?}"),
            }
        }
    }
}

/// Configs are honored, not ignored. The guaranteed-monotone comparison:
/// with an identical temperature schedule, `restarts = 3` replays the
/// `restarts = 1` chain verbatim (same RNG stream prefix) and then only
/// adds candidates to the best-ever tracking, so its objective can never
/// be worse. (Comparing different `iterations` values would be fragile:
/// the cooling factor — and therefore the acceptance trajectory — depends
/// on the iteration count.)
#[test]
fn configs_are_honored() {
    let owned = InstanceSpec::sized(5, 10, 24).generate(99).unwrap();
    let inst = owned.as_instance();
    let ctx = SolveContext::new(inst, cost());
    let schedule = AnnealConfig {
        iterations: 400,
        restarts: 1,
        ..Default::default()
    };
    let one = metaheuristic::solve_anneal(&ctx, Objective::MinDelay, &schedule).unwrap();
    let three = metaheuristic::solve_anneal(
        &ctx,
        Objective::MinDelay,
        &AnnealConfig {
            restarts: 3,
            ..schedule
        },
    )
    .unwrap();
    assert!(three.objective_ms <= one.objective_ms + 1e-9);
    let ga = metaheuristic::solve_genetic(
        &ctx,
        Objective::MinDelay,
        &GeneticConfig {
            population: 8,
            generations: 5,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(ga.objective_ms.is_finite() && ga.objective_ms > 0.0);
}

/// The acceptance contract: on 20 small instances the metaheuristics never
/// beat the exact solver of their own search space — `quality_gap ≥ 1.0`
/// for both objectives, through the public `workloads::compare` column and
/// against the exact references directly.
#[test]
fn quality_gap_is_at_least_one_against_exact_on_twenty_small_instances() {
    let mut delay_gaps = 0usize;
    let mut rate_gaps = 0usize;
    for seed in 0..20u64 {
        let owned = InstanceSpec::sized(4, 8, 16).generate(seed).unwrap();
        let inst = owned.as_instance();

        // via the public compare column
        let row = run_case(&owned, &cost());
        if let Some(gap) = row.quality_gap_delay {
            assert!(
                gap >= 1.0 - 1e-9,
                "seed {seed}: delay quality_gap {gap} < 1"
            );
            delay_gaps += 1;
        }
        if let Some(gap) = row.quality_gap_rate {
            assert!(gap >= 1.0 - 1e-9, "seed {seed}: rate quality_gap {gap} < 1");
            rate_gaps += 1;
        }

        // and directly against the exact solvers of the same space
        let ctx = SolveContext::new(inst, cost());
        let exact_delay = solver("elpc_delay_routed")
            .unwrap()
            .solve(&ctx)
            .expect("suite instances are delay-feasible");
        for name in ["anneal_delay", "genetic_delay"] {
            let meta = solver(name).unwrap().solve(&ctx).unwrap();
            assert!(
                meta.objective_ms >= exact_delay.objective_ms - 1e-9,
                "seed {seed}: {name} {} beat the routed optimum {}",
                meta.objective_ms,
                exact_delay.objective_ms
            );
        }
        if let Ok(exact_rate) = exact::max_rate_routed(&ctx, exact::ExactLimits::default()) {
            for name in ["anneal_rate", "genetic_rate"] {
                if let Ok(meta) = solver(name).unwrap().solve(&ctx) {
                    assert!(
                        meta.objective_ms >= exact_rate.objective_ms - 1e-9,
                        "seed {seed}: {name} {} beat the routed-exact bottleneck {}",
                        meta.objective_ms,
                        exact_rate.objective_ms
                    );
                }
            }
        }
    }
    assert!(
        delay_gaps >= 15 && rate_gaps >= 15,
        "too few instances produced gaps (delay {delay_gaps}, rate {rate_gaps})"
    );
}

/// The pinned Fig. 2 small case: the compare row must carry a quality gap
/// of at least 1 and the annealer should sit essentially on the optimum.
#[test]
fn quality_gap_on_the_pinned_fig2_case() {
    let inst = elpc::workloads::cases::paper_cases()[0].generate().unwrap();
    let row = run_case(&inst, &cost());
    let gap = row.quality_gap_delay.expect("case 1 solves both sides");
    assert!(gap >= 1.0 - 1e-9, "delay gap {gap} < 1 on the pinned case");
    assert!(
        gap <= 1.05,
        "annealing should land within 5% of the optimum on K6 (gap {gap})"
    );
    let rate_gap = row.quality_gap_rate.expect("K6 is within the rate budget");
    assert!(rate_gap >= 1.0 - 1e-9, "rate gap {rate_gap} < 1");
}
