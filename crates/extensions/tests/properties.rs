//! Property-based tests for the §5 extension algorithms.

use elpc_extensions::{adaptive, reuse_rate, workflow};
use elpc_mapping::{elpc_delay, elpc_rate, CostModel, Instance, MappingError, NodeId};
use elpc_netsim::dynamics::{DynamicNetwork, LoadModel};
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn build_instance(seed: u64) -> (Network, Pipeline) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(3usize..=8);
    let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
    let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
    let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(10.0..1000.0)).collect();
    let mut lr = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD);
    let net = Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| Link::new(lr.gen_range(1.0..500.0), lr.gen_range(0.05..5.0)),
    )
    .unwrap();
    let n = rng.gen_range(2usize..=6);
    let pipe = PipelineSpec {
        modules: n,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    (net, pipe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grouping strictly generalizes one-to-one mapping: wherever the
    /// strict no-reuse solver succeeds, the reuse solver is at least as
    /// good; and the reuse solver solves a superset of instances.
    #[test]
    fn reuse_rate_generalizes_strict_rate(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        match (elpc_rate::solve(&inst, &cm), reuse_rate::solve(&inst, &cm)) {
            (Ok(strict), Ok(grouped)) => {
                prop_assert!(grouped.bottleneck_ms <= strict.bottleneck_ms + 1e-9);
            }
            // reuse feasible where strict is not: fine (that is the point)
            (Err(MappingError::Infeasible(_)), Ok(_)) => {}
            (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
            // strict feasible but grouped infeasible would be a bug:
            // every one-to-one mapping IS a grouped mapping
            (Ok(s), Err(e)) => prop_assert!(false, "grouped lost a feasible instance: {s:?} vs {e:?}"),
            (a, b) => prop_assert!(false, "unexpected: {a:?} vs {b:?}"),
        }
    }

    /// The grouped-rate solution always re-evaluates to its objective and
    /// never revisits a node.
    #[test]
    fn reuse_rate_solutions_are_consistent(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = reuse_rate::solve(&inst, &cm) {
            prop_assert!(sol.mapping.uses_distinct_nodes());
            let re = cm.bottleneck_ms(&inst, &sol.mapping).unwrap();
            prop_assert!((re - sol.bottleneck_ms).abs() <= 1e-6 * sol.bottleneck_ms.max(1.0));
        }
    }

    /// HEFT on a chain workflow can never beat the optimal delay DP, and
    /// its schedule is causally consistent.
    #[test]
    fn dag_scheduler_is_sound_on_chains(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = (NodeId(0), NodeId((net.node_count() - 1) as u32));
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        let wf = workflow::DagWorkflow::from_pipeline(&pipe);
        let n = pipe.len();
        if let (Ok(opt), Ok(sched)) = (
            elpc_delay::solve(&inst, &cm),
            workflow::map_dag(&wf, &net, &cm, &[(0, src), (n - 1, dst)]),
        ) {
            // routed HEFT can exploit shortcuts the strict DP cannot, so
            // compare against the routed-overlay optimum instead
            let routed_opt = elpc_delay::solve_routed(&inst, &cm).unwrap();
            prop_assert!(sched.makespan_ms + 1e-6 >= routed_opt.objective_ms,
                "HEFT {} beat the routed optimum {}", sched.makespan_ms, routed_opt.objective_ms);
            let _ = opt;
            for i in 0..n {
                prop_assert!(sched.start_ms[i] <= sched.finish_ms[i] + 1e-12);
            }
            for i in 1..n {
                // chain: module i starts after its predecessor finishes
                prop_assert!(sched.start_ms[i] + 1e-9 >= sched.finish_ms[i - 1]);
            }
        }
    }

    /// The adaptive loop's epoch-0 candidate lower-bounds both strategies
    /// at every later epoch evaluated on its own snapshot, and the static
    /// strategy never switches.
    #[test]
    fn adaptive_invariants(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = (NodeId(0), NodeId((net.node_count() - 1) as u32));
        let cm = CostModel::default();
        let k = net.node_count();
        let links = net.link_count();
        let node_models: Vec<LoadModel> = (0..k)
            .map(|i| LoadModel::RandomEpochs { epoch_ms: 400.0, floor: 0.4, seed: seed ^ i as u64 })
            .collect();
        let link_models = vec![LoadModel::Constant(1.0); links];
        let dyn_net = DynamicNetwork::new(net, node_models, link_models).unwrap();
        let report = match adaptive::run_delay_adaptation(
            &dyn_net, &pipe, src, dst, &cm,
            adaptive::AdaptiveConfig { period_ms: 500.0, hysteresis: 0.1, switch_cost_ms: 10.0 },
            4000.0,
        ) {
            Ok(r) => r,
            Err(MappingError::Infeasible(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        prop_assert_eq!(report.epochs.len(), 8);
        for e in &report.epochs {
            prop_assert!(e.candidate_delay_ms <= e.static_delay_ms + 1e-9);
            // the hysteresis rule bounds how far the retained mapping may
            // lag the optimum: no switch happens only while
            // retained < candidate / (1 - hysteresis); a switch costs 10 ms
            prop_assert!(
                e.adaptive_delay_ms <= e.candidate_delay_ms / (1.0 - 0.1) + 10.0 + 1e-9,
                "epoch at {} ms: adaptive {} exceeds hysteresis bound of candidate {}",
                e.t_ms, e.adaptive_delay_ms, e.candidate_delay_ms
            );
        }
        prop_assert!(!report.epochs[0].switched);
    }
}
