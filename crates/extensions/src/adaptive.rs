//! Adaptive remapping under time-varying resources (§5 future work).
//!
//! "The time-varying nature of system resources' availability makes it
//! challenging to perform an accurate prediction or estimation of the
//! execution time of a computing module in a real network environment."
//! The authors' own earlier system (\[13\], the self-adaptive visualization
//! pipeline) re-configures when conditions change; this module reproduces
//! that control loop on top of [`elpc_netsim::dynamics::DynamicNetwork`]:
//!
//! 1. every `period_ms`, snapshot the network and re-solve through a
//!    registered [`Solver`] (the ELPC-delay DP by default) — re-mapping is
//!    the hottest repeated-solve path in the stack, so each epoch builds
//!    one [`SolveContext`] and the candidate solve plus both strategy
//!    re-evaluations share its metric closure;
//! 2. switch to the new mapping only when it improves on the retained one
//!    by more than the `hysteresis` fraction (switching costs real time —
//!    pipeline drain + redeploy — modeled as `switch_cost_ms` added to the
//!    epoch where the switch happens);
//! 3. compare against the *static* strategy that keeps the epoch-0 mapping
//!    forever.
//!
//! Beyond load churn, [`run_failover_remap`] handles outright *failures*:
//! a seeded [`FaultSchedule`] of crashes, cuts, and degradations plays out
//! over the dynamic network, the closure bank is repaired in place through
//! the removal-aware [`NetworkDelta`], and only the pipelines a failure
//! actually touched (dead host, or drifted delay) are re-solved — with
//! measured time-to-recovery against the cold re-solve baseline.

use elpc_mapping::{
    routed, solver, CostModel, Instance, MappingError, NetworkDelta, Objective, RepairReport,
    Solution, SolveContext, Solver,
};
use elpc_netgraph::NodeId;
use elpc_netsim::dynamics::DynamicNetwork;
use elpc_netsim::faults::FaultSchedule;
use elpc_netsim::Network;
use elpc_pipeline::Pipeline;
use elpc_workloads::bank::bank_key;
use elpc_workloads::ClosureBank;
use serde::{Deserialize, Serialize};

/// Control-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Re-evaluation period in ms.
    pub period_ms: f64,
    /// Relative improvement required to switch (0.1 = new mapping must be
    /// ≥ 10% better than the retained one's current delay).
    pub hysteresis: f64,
    /// One-off cost (ms) charged to an epoch when a switch happens.
    pub switch_cost_ms: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            period_ms: 1_000.0,
            hysteresis: 0.10,
            switch_cost_ms: 0.0,
        }
    }
}

/// One epoch of the control loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Snapshot time.
    pub t_ms: f64,
    /// Delay of the freshly-solved candidate mapping on this snapshot.
    pub candidate_delay_ms: f64,
    /// Delay the adaptive strategy actually experiences this epoch
    /// (retained or switched mapping, plus switch cost when it switched).
    pub adaptive_delay_ms: f64,
    /// Delay the static (epoch-0) mapping experiences this epoch.
    pub static_delay_ms: f64,
    /// Whether the adaptive strategy switched mappings this epoch.
    pub switched: bool,
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Number of switches (excluding the initial mapping).
    pub switches: usize,
    /// Mean per-epoch delay of the adaptive strategy (includes switch costs).
    pub adaptive_mean_ms: f64,
    /// Mean per-epoch delay of the static strategy.
    pub static_mean_ms: f64,
}

impl AdaptiveReport {
    /// Relative improvement of adaptive over static (positive = adaptive
    /// wins).
    pub fn improvement(&self) -> f64 {
        if self.static_mean_ms <= 0.0 {
            return 0.0;
        }
        1.0 - self.adaptive_mean_ms / self.static_mean_ms
    }
}

/// Runs the adaptive control loop for `horizon_ms` of simulated time with
/// the registry's optimal ELPC-delay DP as the re-mapping solver.
pub fn run_delay_adaptation(
    dyn_net: &DynamicNetwork,
    pipeline: &Pipeline,
    src: NodeId,
    dst: NodeId,
    cost: &CostModel,
    config: AdaptiveConfig,
    horizon_ms: f64,
) -> crate::Result<AdaptiveReport> {
    run_adaptation(
        dyn_net,
        pipeline,
        src,
        dst,
        cost,
        config,
        horizon_ms,
        solver("elpc_delay").expect("elpc_delay is registered"),
    )
}

/// Runs the adaptive control loop re-mapping through the **portfolio**
/// meta-solver (`portfolio_delay`): each epoch races the default delay
/// slate on the snapshot's shared context and adopts the best member's
/// mapping. Because the routed-optimal `elpc_delay_routed` leads the
/// slate, every epoch's candidate is the routed-space optimum of its
/// snapshot — the portfolio adds the attribution of how the heuristics
/// compare without ever degrading the control loop's choice.
pub fn run_portfolio_adaptation(
    dyn_net: &DynamicNetwork,
    pipeline: &Pipeline,
    src: NodeId,
    dst: NodeId,
    cost: &CostModel,
    config: AdaptiveConfig,
    horizon_ms: f64,
) -> crate::Result<AdaptiveReport> {
    run_adaptation(
        dyn_net,
        pipeline,
        src,
        dst,
        cost,
        config,
        horizon_ms,
        solver("portfolio_delay").expect("portfolio_delay is registered"),
    )
}

/// Evaluates a retained solution's delay on the current snapshot: strict
/// Eq. 1 when the solver produced an adjacent-path mapping, routed
/// semantics otherwise — the same semantics its `objective_ms` was
/// reported under, so hysteresis compares like with like.
fn current_delay(ctx: &SolveContext<'_>, sol: &Solution) -> crate::Result<f64> {
    match &sol.mapping {
        Some(m) => ctx.cost().delay_ms(ctx.instance(), m),
        None => routed::routed_delay_ms_ctx(ctx, &sol.assignment),
    }
}

/// Runs the adaptive control loop with any registered minimum-delay
/// [`Solver`] — the generic form behind [`run_delay_adaptation`]. Rejects
/// rate-objective solvers with [`MappingError::BadConfig`].
#[allow(clippy::too_many_arguments)]
pub fn run_adaptation(
    dyn_net: &DynamicNetwork,
    pipeline: &Pipeline,
    src: NodeId,
    dst: NodeId,
    cost: &CostModel,
    config: AdaptiveConfig,
    horizon_ms: f64,
    remap_solver: &dyn Solver,
) -> crate::Result<AdaptiveReport> {
    run_adaptation_banked(
        dyn_net,
        pipeline,
        src,
        dst,
        cost,
        config,
        horizon_ms,
        remap_solver,
        None,
    )
}

/// [`run_adaptation`] with an optional cross-epoch [`ClosureBank`]: each
/// epoch's context is checked out of the bank and deposited back, so when
/// the network holds still between snapshots (steady or slowly varying
/// resources — the common regime between re-mapping triggers) the epoch
/// skips the routed all-pairs work entirely. The bank is keyed on the
/// snapshot's structural fingerprint, so any drifted epoch misses and
/// solves cold — results are bit-identical with or without a bank.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptation_banked(
    dyn_net: &DynamicNetwork,
    pipeline: &Pipeline,
    src: NodeId,
    dst: NodeId,
    cost: &CostModel,
    config: AdaptiveConfig,
    horizon_ms: f64,
    remap_solver: &dyn Solver,
    bank: Option<&ClosureBank>,
) -> crate::Result<AdaptiveReport> {
    if remap_solver.objective() != Objective::MinDelay {
        return Err(MappingError::BadConfig(format!(
            "adaptive remapping optimizes delay; solver `{}` optimizes rate",
            remap_solver.name()
        )));
    }
    if !(config.period_ms > 0.0) {
        return Err(MappingError::BadConfig(format!(
            "period must be positive, got {}",
            config.period_ms
        )));
    }
    if !(config.hysteresis >= 0.0) {
        return Err(MappingError::BadConfig(format!(
            "hysteresis must be non-negative, got {}",
            config.hysteresis
        )));
    }
    if !(horizon_ms >= config.period_ms) {
        return Err(MappingError::BadConfig(
            "horizon shorter than one period".into(),
        ));
    }

    let mut epochs = Vec::new();
    let mut switches = 0usize;
    let mut retained: Option<Solution> = None;
    let mut static_solution: Option<Solution> = None;

    let mut t = 0.0;
    while t < horizon_ms {
        let snapshot = dyn_net.snapshot_at(t);
        let inst = Instance::new(&snapshot, pipeline, src, dst)?;
        // one context per epoch: the candidate solve and both strategy
        // re-evaluations share this snapshot's metric closure, and a bank
        // carries it to the next epoch when the snapshot repeats
        let ctx = match bank {
            Some(b) => b.context_for(inst, *cost, 1),
            None => SolveContext::new(inst, *cost),
        };
        let candidate = remap_solver.solve(&ctx)?;

        let (adaptive_delay, switched) = match &retained {
            None => {
                // epoch 0: adopt the candidate; no switch is counted
                retained = Some(candidate.clone());
                static_solution = Some(candidate.clone());
                (candidate.objective_ms, false)
            }
            Some(current) => {
                let current_delay = current_delay(&ctx, current)?;
                if candidate.objective_ms < current_delay * (1.0 - config.hysteresis) {
                    retained = Some(candidate.clone());
                    switches += 1;
                    (candidate.objective_ms + config.switch_cost_ms, true)
                } else {
                    (current_delay, false)
                }
            }
        };
        let static_delay = current_delay(&ctx, static_solution.as_ref().expect("set at epoch 0"))?;
        if let Some(b) = bank {
            b.deposit(&ctx);
        }
        epochs.push(EpochRecord {
            t_ms: t,
            candidate_delay_ms: candidate.objective_ms,
            adaptive_delay_ms: adaptive_delay,
            static_delay_ms: static_delay,
            switched,
        });
        t += config.period_ms;
    }

    let n = epochs.len() as f64;
    let adaptive_mean_ms = epochs.iter().map(|e| e.adaptive_delay_ms).sum::<f64>() / n;
    let static_mean_ms = epochs.iter().map(|e| e.static_delay_ms).sum::<f64>() / n;
    Ok(AdaptiveReport {
        epochs,
        switches,
        adaptive_mean_ms,
        static_mean_ms,
    })
}

/// Churn-loop configuration: how often to sample the dynamic network and
/// how much incumbent degradation is tolerated before paying a re-solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Sampling period in ms.
    pub period_ms: f64,
    /// Relative degradation of the incumbent's re-evaluated delay — versus
    /// the delay accepted at its adoption or last re-solve — that triggers
    /// a re-solve (0.1 = re-solve once the incumbent runs ≥ 10% slower
    /// than when it was last vetted).
    pub drift_threshold: f64,
    /// One-off cost (ms) charged to an epoch when a switch happens.
    pub switch_cost_ms: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            period_ms: 1_000.0,
            drift_threshold: 0.10,
            switch_cost_ms: 0.0,
        }
    }
}

/// One epoch of the churn loop: what moved, what the repair did about it,
/// and what the re-solve decision cost or saved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEpoch {
    /// Snapshot time.
    pub t_ms: f64,
    /// Undirected links perturbed since the previous epoch.
    pub changed_links: usize,
    /// Nodes whose power changed since the previous epoch.
    pub changed_nodes: usize,
    /// Cached trees examined by this epoch's in-place repair (0 when the
    /// network held still or the bank had nothing to repair).
    pub trees_total: usize,
    /// Trees the invalidation rule kept bit-for-bit.
    pub trees_kept: usize,
    /// Trees rebuilt through the CSR kernel.
    pub trees_rebuilt: usize,
    /// Delay the loop actually experiences this epoch (incumbent or fresh
    /// candidate, plus switch cost when it switched).
    pub incumbent_delay_ms: f64,
    /// Whether this epoch paid a full re-solve (epoch 0 always does).
    pub resolved: bool,
    /// The fresh candidate's delay when this epoch re-solved.
    pub candidate_delay_ms: Option<f64>,
    /// How much delay the stale incumbent was costing over the fresh
    /// optimum at the moment of the re-solve (0 on non-resolve epochs).
    pub staleness_ms: f64,
    /// Whether the loop adopted the fresh candidate this epoch.
    pub switched: bool,
}

/// Outcome of a churn run: per-epoch staleness vs re-solve cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Per-epoch records.
    pub epochs: Vec<ChurnEpoch>,
    /// Number of full re-solves paid (including the mandatory epoch-0 one).
    pub resolves: usize,
    /// Number of incumbent switches (excluding the initial adoption).
    pub switches: usize,
    /// Total trees kept bit-for-bit across every repair.
    pub trees_kept_total: usize,
    /// Total trees rebuilt through the CSR kernel across every repair.
    pub trees_rebuilt_total: usize,
    /// Mean per-epoch delay experienced (includes switch costs).
    pub mean_incumbent_delay_ms: f64,
}

/// Drift-triggered continuous remap loop over a [`DynamicNetwork`], kept
/// warm by **in-place bank repair** instead of per-epoch cold rebuilds.
///
/// Every `period_ms` the loop snapshots the network and, when
/// [`DynamicNetwork::changes_between`] reports movement since the previous
/// snapshot, turns the changed-element set into an exact
/// [`NetworkDelta`] (O(|changes|), no whole-network diff) and calls
/// [`ClosureBank::update_in_place`]: the previous epoch's closure entry
/// migrates to the new snapshot's key with only the trees the perturbation
/// can affect rebuilt. Every epoch's checkout after the first is therefore
/// a bank *hit* — churn never forces the all-pairs cold path.
///
/// Re-solving is hysteretic: the incumbent mapping is re-evaluated on each
/// snapshot (through the repaired closure), and a full solver run is paid
/// only when that delay degrades more than `drift_threshold` past the
/// delay accepted at the incumbent's adoption or last vetting. On a
/// re-solve the loop adopts the candidate when it beats the incumbent's
/// current delay; otherwise it accepts the degraded delay as the new
/// reference so a plateau is not re-solved every epoch. The per-epoch
/// records report staleness (incumbent minus fresh optimum at re-solve
/// time) against re-solve cost (which epochs paid a solve, and how many
/// trees each repair had to rebuild).
#[allow(clippy::too_many_arguments)]
pub fn run_churn_adaptation(
    dyn_net: &DynamicNetwork,
    pipeline: &Pipeline,
    src: NodeId,
    dst: NodeId,
    cost: &CostModel,
    config: ChurnConfig,
    horizon_ms: f64,
    remap_solver: &dyn Solver,
    bank: &ClosureBank,
) -> crate::Result<ChurnReport> {
    if remap_solver.objective() != Objective::MinDelay {
        return Err(MappingError::BadConfig(format!(
            "churn remapping optimizes delay; solver `{}` optimizes rate",
            remap_solver.name()
        )));
    }
    if !(config.period_ms > 0.0) {
        return Err(MappingError::BadConfig(format!(
            "period must be positive, got {}",
            config.period_ms
        )));
    }
    if !(config.drift_threshold >= 0.0) {
        return Err(MappingError::BadConfig(format!(
            "drift threshold must be non-negative, got {}",
            config.drift_threshold
        )));
    }
    if !(horizon_ms >= config.period_ms) {
        return Err(MappingError::BadConfig(
            "horizon shorter than one period".into(),
        ));
    }

    let mut epochs: Vec<ChurnEpoch> = Vec::new();
    let mut resolves = 0usize;
    let mut switches = 0usize;
    let mut incumbent: Option<Solution> = None;
    // the delay the incumbent was accepted at (adoption or last re-solve);
    // drift is measured against this, not against the previous epoch
    let mut reference_delay = f64::INFINITY;
    let mut previous: Option<(f64, Network, u64)> = None;

    let mut t = 0.0;
    while t < horizon_ms {
        let snapshot = dyn_net.snapshot_at(t);
        let inst = Instance::new(&snapshot, pipeline, src, dst)?;
        let key = bank_key(&inst, cost);

        let mut changed_links = 0usize;
        let mut changed_nodes = 0usize;
        let mut repair = RepairReport::default();
        if let Some((t_prev, prev_net, prev_key)) = &previous {
            let changes = dyn_net.changes_between(*t_prev, t);
            if !changes.is_empty() {
                changed_links = changes.links.len();
                changed_nodes = changes.nodes.len();
                let delta = NetworkDelta::from_changed_elements(
                    prev_net,
                    &snapshot,
                    &changes.links,
                    &changes.nodes,
                )?;
                if !delta.is_empty() {
                    // migrate the previous epoch's entry to this snapshot's
                    // key; a None (entry evicted meanwhile) just means the
                    // checkout below misses and solves cold — still correct
                    if let Some(rep) = bank.update_in_place(*prev_key, inst, *cost, &delta, 1) {
                        repair = rep;
                    }
                }
            }
        }

        let ctx = bank.context_for(inst, *cost, 1);
        let (incumbent_delay, resolved, candidate_delay, staleness, switched) = match &incumbent {
            None => {
                // epoch 0: mandatory cold solve, adopt unconditionally
                let sol = remap_solver.solve(&ctx)?;
                let d = sol.objective_ms;
                reference_delay = d;
                incumbent = Some(sol);
                (d, true, Some(d), 0.0, false)
            }
            Some(current) => {
                let cur = current_delay(&ctx, current)?;
                if cur > reference_delay * (1.0 + config.drift_threshold) {
                    let cand = remap_solver.solve(&ctx)?;
                    let cand_ms = cand.objective_ms;
                    let staleness = cur - cand_ms;
                    if cand_ms < cur {
                        reference_delay = cand_ms;
                        incumbent = Some(cand);
                        switches += 1;
                        (
                            cand_ms + config.switch_cost_ms,
                            true,
                            Some(cand_ms),
                            staleness,
                            true,
                        )
                    } else {
                        // nothing better exists: accept the degraded delay
                        // as the new reference so a plateau is not
                        // re-solved every epoch
                        reference_delay = cur;
                        (cur, true, Some(cand_ms), staleness, false)
                    }
                } else {
                    (cur, false, None, 0.0, false)
                }
            }
        };
        if resolved {
            resolves += 1;
        }
        bank.deposit(&ctx);
        drop(ctx);
        epochs.push(ChurnEpoch {
            t_ms: t,
            changed_links,
            changed_nodes,
            trees_total: repair.total,
            trees_kept: repair.kept,
            trees_rebuilt: repair.rebuilt,
            incumbent_delay_ms: incumbent_delay,
            resolved,
            candidate_delay_ms: candidate_delay,
            staleness_ms: staleness,
            switched,
        });
        previous = Some((t, snapshot, key));
        t += config.period_ms;
    }

    let n = epochs.len() as f64;
    let mean_incumbent_delay_ms = epochs.iter().map(|e| e.incumbent_delay_ms).sum::<f64>() / n;
    Ok(ChurnReport {
        resolves,
        switches,
        trees_kept_total: epochs.iter().map(|e| e.trees_kept).sum(),
        trees_rebuilt_total: epochs.iter().map(|e| e.trees_rebuilt).sum(),
        mean_incumbent_delay_ms,
        epochs,
    })
}

/// Failover-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailoverConfig {
    /// Sampling period in ms.
    pub period_ms: f64,
    /// Relative degradation of a pipeline's re-evaluated delay (vs the
    /// delay accepted at its adoption or last remap) that marks it
    /// *affected* and triggers a targeted re-solve. Pipelines whose host
    /// died are always affected, regardless of this threshold.
    pub drift_threshold: f64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            period_ms: 1_000.0,
            drift_threshold: 0.10,
        }
    }
}

/// One epoch of the failover loop: what failed, what the repair salvaged,
/// which pipelines had to move, and what the recovery cost against the
/// cold-re-solve baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverEpoch {
    /// Snapshot time.
    pub t_ms: f64,
    /// Directed edges that failed since the previous epoch.
    pub failed_links: usize,
    /// Nodes that crashed since the previous epoch.
    pub failed_nodes: usize,
    /// Ordinary perturbations in the same delta (degrades and restores).
    pub perturbed_elements: usize,
    /// Cached trees examined by this epoch's in-place repairs.
    pub trees_total: usize,
    /// Trees the invalidation rule kept bit-for-bit.
    pub trees_kept: usize,
    /// Trees rebuilt through the CSR kernel.
    pub trees_rebuilt: usize,
    /// Pipelines whose host died this epoch (forced remaps).
    pub forced_remaps: usize,
    /// Pipelines re-solved this epoch (forced + drift-affected).
    pub remapped: usize,
    /// Measured wall-clock of the targeted path: bank repair + per-pipeline
    /// re-evaluation + affected re-solves. Zero on no-change epochs.
    pub recovery_ms: f64,
    /// Measured wall-clock of the baseline a naive system pays: fresh
    /// contexts and full re-solves for *every* pipeline. Zero on no-change
    /// epochs (a naive system would also do nothing).
    pub cold_resolve_ms: f64,
}

/// Outcome of a failover run: time-to-recovery accounting for the targeted
/// repair-and-remap path against the cold re-solve baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Per-epoch records.
    pub epochs: Vec<FailoverEpoch>,
    /// Number of pipelines under management.
    pub pipelines: usize,
    /// Total forced remaps (dead hosts) across the run.
    pub forced_remaps_total: usize,
    /// Total targeted re-solves across the run.
    pub remapped_total: usize,
    /// Total measured time-to-recovery of the targeted path, ms.
    pub recovery_ms_total: f64,
    /// Total measured cost of the cold re-solve baseline, ms.
    pub cold_resolve_ms_total: f64,
}

impl FailoverReport {
    /// How many times faster the targeted repair-and-remap path recovered
    /// than cold re-solving everything (> 1 = targeted wins).
    pub fn recovery_speedup(&self) -> f64 {
        if self.recovery_ms_total <= 0.0 {
            return 1.0;
        }
        self.cold_resolve_ms_total / self.recovery_ms_total
    }
}

/// Failure-driven remap loop: a [`FaultSchedule`] plays out over a
/// [`DynamicNetwork`], and the loop repairs the closure bank in place and
/// re-solves **only the affected pipelines**, measuring time-to-recovery
/// against the cold baseline that rebuilds and re-solves everything.
///
/// Every `period_ms` the loop materializes the degraded snapshot
/// ([`FaultSchedule::apply_at`] over [`DynamicNetwork::snapshot_at`]) and
/// diffs it against the previous one through the union of
/// [`DynamicNetwork::changes_between`] and
/// [`FaultSchedule::changed_elements_between`] — an O(|changes|)
/// [`NetworkDelta`] that now carries *failures* (removals) separately from
/// perturbations. The bank entry migrates via
/// [`ClosureBank::update_in_place`] (trees crossing a failed element
/// rebuild, everything else is kept bit-for-bit), then each pipeline is
/// re-evaluated through the repaired closure: pipelines whose host died
/// ([`NetworkDelta::forces_remap`]) or whose delay drifted past
/// `drift_threshold` re-solve on the banked context; the rest keep their
/// mapping untouched. Restores (flapping elements healing) flow through the
/// same path as ordinary perturbations.
///
/// Both sides of the reported comparison are measured on this process, back
/// to back: `recovery_ms` times the targeted path, `cold_resolve_ms` times
/// fresh per-pipeline contexts + full re-solves on the same snapshot (the
/// bank is never touched by the baseline).
#[allow(clippy::too_many_arguments)]
pub fn run_failover_remap(
    dyn_net: &DynamicNetwork,
    faults: &FaultSchedule,
    pipelines: &[(Pipeline, NodeId, NodeId)],
    cost: &CostModel,
    config: FailoverConfig,
    horizon_ms: f64,
    remap_solver: &dyn Solver,
    bank: &ClosureBank,
) -> crate::Result<FailoverReport> {
    if remap_solver.objective() != Objective::MinDelay {
        return Err(MappingError::BadConfig(format!(
            "failover remapping optimizes delay; solver `{}` optimizes rate",
            remap_solver.name()
        )));
    }
    if pipelines.is_empty() {
        return Err(MappingError::BadConfig(
            "failover loop needs at least one pipeline".into(),
        ));
    }
    if !(config.period_ms > 0.0) {
        return Err(MappingError::BadConfig(format!(
            "period must be positive, got {}",
            config.period_ms
        )));
    }
    if !(config.drift_threshold >= 0.0) {
        return Err(MappingError::BadConfig(format!(
            "drift threshold must be non-negative, got {}",
            config.drift_threshold
        )));
    }
    if !(horizon_ms >= config.period_ms) {
        return Err(MappingError::BadConfig(
            "horizon shorter than one period".into(),
        ));
    }

    let mut epochs: Vec<FailoverEpoch> = Vec::new();
    let mut incumbents: Vec<Option<Solution>> = vec![None; pipelines.len()];
    let mut references: Vec<f64> = vec![f64::INFINITY; pipelines.len()];
    // previous epoch's applied snapshot plus each pipeline's bank key
    let mut previous: Option<(f64, Network, Vec<u64>)> = None;

    let mut t = 0.0;
    while t < horizon_ms {
        let snapshot = faults.apply_at(&dyn_net.snapshot_at(t), t)?;

        let mut record = FailoverEpoch {
            t_ms: t,
            failed_links: 0,
            failed_nodes: 0,
            perturbed_elements: 0,
            trees_total: 0,
            trees_kept: 0,
            trees_rebuilt: 0,
            forced_remaps: 0,
            remapped: 0,
            recovery_ms: 0.0,
            cold_resolve_ms: 0.0,
        };

        match &previous {
            None => {
                // epoch 0: mandatory cold adoption for every pipeline
                for (i, (pipe, src, dst)) in pipelines.iter().enumerate() {
                    let inst = Instance::new(&snapshot, pipe, *src, *dst)?;
                    let ctx = bank.context_for(inst, *cost, 1);
                    let sol = remap_solver.solve(&ctx)?;
                    references[i] = sol.objective_ms;
                    incumbents[i] = Some(sol);
                    bank.deposit(&ctx);
                }
            }
            Some((t_prev, prev_net, prev_keys)) => {
                let mut changes = dyn_net.changes_between(*t_prev, t);
                let fault_changes = faults.changed_elements_between(dyn_net.base(), *t_prev, t);
                changes.links.extend(fault_changes.links);
                changes.nodes.extend(fault_changes.nodes);
                let delta = if changes.is_empty() {
                    NetworkDelta::default()
                } else {
                    NetworkDelta::from_changed_elements(
                        prev_net,
                        &snapshot,
                        &changes.links,
                        &changes.nodes,
                    )?
                };
                record.failed_links = delta.link_failures.len();
                record.failed_nodes = delta.node_failures.len();
                record.perturbed_elements = delta.links.len() + delta.nodes.len();

                if !delta.is_empty() {
                    // ---- targeted path, timed end to end ----
                    let started = std::time::Instant::now();
                    // migrate each distinct bank entry exactly once
                    let mut migrated: Vec<u64> = Vec::new();
                    for (i, (pipe, src, dst)) in pipelines.iter().enumerate() {
                        let prev_key = prev_keys[i];
                        if migrated.contains(&prev_key) {
                            continue;
                        }
                        migrated.push(prev_key);
                        let inst = Instance::new(&snapshot, pipe, *src, *dst)?;
                        if let Some(rep) = bank.update_in_place(prev_key, inst, *cost, &delta, 1) {
                            record.trees_total += rep.total;
                            record.trees_kept += rep.kept;
                            record.trees_rebuilt += rep.rebuilt;
                        }
                    }
                    for (i, (pipe, src, dst)) in pipelines.iter().enumerate() {
                        let inst = Instance::new(&snapshot, pipe, *src, *dst)?;
                        let ctx = bank.context_for(inst, *cost, 1);
                        let current = incumbents[i].as_ref().expect("adopted at epoch 0");
                        let forced = delta.forces_remap(&current.assignment);
                        let cur = if forced {
                            f64::INFINITY // dead host: not worth re-pricing
                        } else {
                            current_delay(&ctx, current)?
                        };
                        let affected = forced
                            || !cur.is_finite()
                            || cur > references[i] * (1.0 + config.drift_threshold);
                        if affected {
                            let cand = remap_solver.solve(&ctx)?;
                            record.remapped += 1;
                            if forced {
                                record.forced_remaps += 1;
                            }
                            if forced || cand.objective_ms < cur {
                                references[i] = cand.objective_ms;
                                incumbents[i] = Some(cand);
                            } else {
                                // nothing better exists: accept the degraded
                                // delay as the new reference (plateau)
                                references[i] = cur;
                            }
                        }
                        bank.deposit(&ctx);
                    }
                    record.recovery_ms = started.elapsed().as_secs_f64() * 1e3;

                    // ---- cold baseline, same snapshot, no bank ----
                    let started = std::time::Instant::now();
                    for (pipe, src, dst) in pipelines {
                        let inst = Instance::new(&snapshot, pipe, *src, *dst)?;
                        let ctx = SolveContext::new(inst, *cost);
                        let _ = remap_solver.solve(&ctx)?;
                    }
                    record.cold_resolve_ms = started.elapsed().as_secs_f64() * 1e3;
                }
            }
        }

        let keys = pipelines
            .iter()
            .map(|(pipe, src, dst)| {
                Instance::new(&snapshot, pipe, *src, *dst).map(|inst| bank_key(&inst, cost))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        epochs.push(record);
        previous = Some((t, snapshot, keys));
        t += config.period_ms;
    }

    Ok(FailoverReport {
        pipelines: pipelines.len(),
        forced_remaps_total: epochs.iter().map(|e| e.forced_remaps).sum(),
        remapped_total: epochs.iter().map(|e| e.remapped).sum(),
        recovery_ms_total: epochs.iter().map(|e| e.recovery_ms).sum(),
        cold_resolve_ms_total: epochs.iter().map(|e| e.cold_resolve_ms).sum(),
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::dynamics::LoadModel;
    use elpc_netsim::Network;

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Two routes s→d: via a (initially fast) and via b (initially slower).
    fn base_net() -> Network {
        let mut bld = Network::builder();
        let s = bld.add_node(100.0).unwrap();
        let a = bld.add_node(1000.0).unwrap();
        let b = bld.add_node(600.0).unwrap();
        let d = bld.add_node(100.0).unwrap();
        bld.add_link(s, a, 500.0, 0.5).unwrap(); // link 0: s-a
        bld.add_link(a, d, 500.0, 0.5).unwrap(); // link 1: a-d
        bld.add_link(s, b, 500.0, 0.5).unwrap(); // link 2: s-b
        bld.add_link(b, d, 500.0, 0.5).unwrap(); // link 3: b-d
        bld.build().unwrap()
    }

    fn pipe() -> Pipeline {
        Pipeline::from_stages(1e6, &[(4.0, 1e5)], 0.5).unwrap()
    }

    #[test]
    fn steady_network_never_switches() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let report = run_delay_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig::default(),
            10_000.0,
        )
        .unwrap();
        assert_eq!(report.switches, 0);
        assert!((report.adaptive_mean_ms - report.static_mean_ms).abs() < 1e-9);
        assert_eq!(report.epochs.len(), 10);
        assert!(report.improvement().abs() < 1e-12);
    }

    /// Node `a` (the initial winner) degrades hard mid-run; adaptive should
    /// move to `b` and beat static.
    fn degrading() -> DynamicNetwork {
        let net = base_net();
        let node_models = vec![
            LoadModel::Constant(1.0),
            // node a: collapses to 5% availability after ~2 s
            LoadModel::Sinusoid {
                period_ms: 20_000.0,
                amplitude: 0.95,
                phase_ms: 0.0,
            },
            LoadModel::Constant(1.0),
            LoadModel::Constant(1.0),
        ];
        let link_models = vec![LoadModel::Constant(1.0); 4];
        DynamicNetwork::new(net, node_models, link_models).unwrap()
    }

    #[test]
    fn adaptation_beats_static_under_drift() {
        let report = run_delay_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig {
                period_ms: 500.0,
                hysteresis: 0.05,
                switch_cost_ms: 0.0,
            },
            10_000.0,
        )
        .unwrap();
        assert!(report.switches >= 1, "expected at least one switch");
        assert!(
            report.adaptive_mean_ms < report.static_mean_ms,
            "adaptive {} should beat static {}",
            report.adaptive_mean_ms,
            report.static_mean_ms
        );
        assert!(report.improvement() > 0.0);
    }

    #[test]
    fn infinite_hysteresis_degenerates_to_static() {
        let report = run_delay_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig {
                period_ms: 500.0,
                hysteresis: f64::INFINITY,
                switch_cost_ms: 0.0,
            },
            5_000.0,
        )
        .unwrap();
        assert_eq!(report.switches, 0);
        assert!((report.adaptive_mean_ms - report.static_mean_ms).abs() < 1e-9);
    }

    #[test]
    fn switch_costs_discourage_churn() {
        let cheap = run_delay_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig {
                period_ms: 500.0,
                hysteresis: 0.01,
                switch_cost_ms: 0.0,
            },
            10_000.0,
        )
        .unwrap();
        let costly = run_delay_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig {
                period_ms: 500.0,
                hysteresis: 0.01,
                switch_cost_ms: 1e9, // absurd switch cost
            },
            10_000.0,
        )
        .unwrap();
        // switching still happens (the decision ignores the sunk cost),
        // but the accounted mean reflects the penalty
        assert!(costly.adaptive_mean_ms >= cheap.adaptive_mean_ms);
    }

    #[test]
    fn candidate_is_never_worse_than_adaptive_choice() {
        let report = run_delay_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig {
                period_ms: 250.0,
                hysteresis: 0.2,
                switch_cost_ms: 0.0,
            },
            8_000.0,
        )
        .unwrap();
        for e in &report.epochs {
            // the fresh DP solution is optimal for the snapshot, so it lower
            // bounds whatever the strategies actually run
            assert!(e.candidate_delay_ms <= e.adaptive_delay_ms + 1e-9);
            assert!(e.candidate_delay_ms <= e.static_delay_ms + 1e-9);
        }
    }

    #[test]
    fn banked_epochs_reuse_the_closure_on_steady_networks() {
        let dyn_net = DynamicNetwork::steady(base_net());
        // a routed solver so the epochs actually consult the metric closure
        let s = solver("elpc_delay_routed").expect("registered");
        let plain = run_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig::default(),
            10_000.0,
            s,
        )
        .unwrap();
        let bank = ClosureBank::new();
        let banked = run_adaptation_banked(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            AdaptiveConfig::default(),
            10_000.0,
            s,
            Some(&bank),
        )
        .unwrap();
        assert_eq!(plain, banked, "the bank must not change any epoch");
        let stats = bank.stats();
        assert_eq!(stats.hits + stats.misses, 10, "one checkout per epoch");
        assert_eq!(stats.misses, 1, "only epoch 0 should solve cold");
        assert_eq!(bank.len(), 1, "steady snapshots share one key");
    }

    #[test]
    fn churn_loop_idles_on_a_steady_network() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_churn_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            ChurnConfig::default(),
            10_000.0,
            s,
            &bank,
        )
        .unwrap();
        assert_eq!(report.epochs.len(), 10);
        assert_eq!(report.resolves, 1, "only the mandatory epoch-0 solve");
        assert_eq!(report.switches, 0);
        assert_eq!(report.trees_kept_total + report.trees_rebuilt_total, 0);
        for e in &report.epochs {
            assert_eq!(e.changed_links + e.changed_nodes, 0);
            assert!(!e.switched);
        }
        let stats = bank.stats();
        assert_eq!(stats.hits + stats.misses, 10, "one checkout per epoch");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.repairs, 0, "nothing moved, nothing repaired");
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn churn_loop_repairs_in_place_and_resolves_on_drift() {
        // degrading(): node-power churn only, so every repair keeps every
        // tree — transfer costs never depend on power
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_churn_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            ChurnConfig {
                period_ms: 500.0,
                drift_threshold: 0.05,
                switch_cost_ms: 0.0,
            },
            10_000.0,
            s,
            &bank,
        )
        .unwrap();
        assert_eq!(report.epochs.len(), 20);
        assert!(report.resolves >= 2, "drift must trigger a re-solve");
        assert!(report.switches >= 1, "the loop should move off node a");
        assert_eq!(report.trees_rebuilt_total, 0, "power churn keeps trees");
        for e in &report.epochs {
            assert_eq!(e.trees_kept + e.trees_rebuilt, e.trees_total);
            if e.t_ms > 0.0 {
                assert_eq!(e.changed_nodes, 1, "only node a moves");
                assert_eq!(e.changed_links, 0);
            }
            if e.resolved {
                assert!(e.candidate_delay_ms.is_some());
                assert!(e.staleness_ms >= -1e-9, "routed optimum lower-bounds");
            } else {
                assert!(e.candidate_delay_ms.is_none());
                assert_eq!(e.staleness_ms, 0.0);
            }
        }
        let stats = bank.stats();
        assert_eq!(stats.hits + stats.misses, 20, "one checkout per epoch");
        assert_eq!(stats.misses, 1, "repairs keep every later epoch a hit");
        assert_eq!(stats.repairs, 19, "every epoch after the first moved");
        assert_eq!(bank.len(), 1, "identity migrated, never duplicated");
    }

    #[test]
    fn link_churn_rebuilds_only_through_the_repair_path() {
        // link 1 (a-d) bandwidth oscillates: trees crossing it rebuild,
        // the rest of the closure is kept in place
        let node_models = vec![LoadModel::Constant(1.0); 4];
        let mut link_models = vec![LoadModel::Constant(1.0); 4];
        link_models[1] = LoadModel::Sinusoid {
            period_ms: 4_000.0,
            amplitude: 0.6,
            phase_ms: 0.0,
        };
        let dyn_net = DynamicNetwork::new(base_net(), node_models, link_models).unwrap();
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_churn_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            ChurnConfig {
                period_ms: 500.0,
                drift_threshold: 0.05,
                switch_cost_ms: 0.0,
            },
            6_000.0,
            s,
            &bank,
        )
        .unwrap();
        assert!(
            report.trees_rebuilt_total > 0,
            "bandwidth churn must invalidate some trees"
        );
        for e in &report.epochs {
            assert_eq!(e.trees_kept + e.trees_rebuilt, e.trees_total);
            if e.t_ms > 0.0 {
                assert_eq!(e.changed_links, 1, "exactly link 1 moves");
            }
        }
        let stats = bank.stats();
        assert_eq!(stats.misses, 1, "repair keeps churned epochs banked");
        assert_eq!(stats.hits, report.epochs.len() as u64 - 1);
        assert_eq!(stats.repairs, report.epochs.len() as u64 - 1);
    }

    #[test]
    fn churn_loop_rejects_bad_configs() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        for config in [
            ChurnConfig {
                period_ms: 0.0,
                ..ChurnConfig::default()
            },
            ChurnConfig {
                drift_threshold: -0.1,
                ..ChurnConfig::default()
            },
        ] {
            assert!(run_churn_adaptation(
                &dyn_net,
                &pipe(),
                NodeId(0),
                NodeId(3),
                &cost(),
                config,
                10_000.0,
                s,
                &bank,
            )
            .is_err());
        }
        // horizon shorter than one period
        assert!(run_churn_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            ChurnConfig::default(),
            500.0,
            s,
            &bank,
        )
        .is_err());
    }

    use elpc_netsim::faults::{FaultEvent, FaultKind};
    use elpc_netsim::EdgeId;

    /// A crash of node `a` (the fast route's host) at t = 2100, permanent.
    fn crash_of_a() -> FaultSchedule {
        FaultSchedule::from_events(vec![FaultEvent {
            kind: FaultKind::NodeCrash { node: NodeId(1) },
            start_ms: 2_100.0,
            end_ms: f64::INFINITY,
        }])
    }

    #[test]
    fn failover_loop_is_quiet_without_faults() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_failover_remap(
            &dyn_net,
            &FaultSchedule::from_events(vec![]),
            &[(pipe(), NodeId(0), NodeId(3))],
            &cost(),
            FailoverConfig::default(),
            5_000.0,
            s,
            &bank,
        )
        .unwrap();
        assert_eq!(report.epochs.len(), 5);
        assert_eq!(report.remapped_total, 0);
        assert_eq!(report.forced_remaps_total, 0);
        assert_eq!(report.recovery_ms_total, 0.0);
        assert_eq!(report.cold_resolve_ms_total, 0.0);
        let stats = bank.stats();
        assert_eq!(stats.misses, 1, "only epoch 0 builds");
    }

    #[test]
    fn node_crash_forces_a_targeted_remap_and_the_pipeline_recovers() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_failover_remap(
            &dyn_net,
            &crash_of_a(),
            &[(pipe(), NodeId(0), NodeId(3))],
            &cost(),
            FailoverConfig {
                period_ms: 1_000.0,
                drift_threshold: 0.05,
            },
            6_000.0,
            s,
            &bank,
        )
        .unwrap();
        assert_eq!(report.epochs.len(), 6);
        // the crash lands between epochs 2 and 3
        let hit = &report.epochs[3];
        assert_eq!(hit.failed_nodes, 1);
        assert_eq!(hit.failed_links, 4, "both incident links, both directions");
        assert_eq!(hit.forced_remaps, 1, "the incumbent hosted on node a");
        assert_eq!(hit.remapped, 1);
        assert!(hit.recovery_ms > 0.0);
        assert!(hit.cold_resolve_ms > 0.0);
        assert!(hit.trees_kept + hit.trees_rebuilt == hit.trees_total);
        assert_eq!(report.forced_remaps_total, 1);
        // epochs after the crash are quiet again — the remapped pipeline
        // holds steady on the surviving route
        for e in &report.epochs[4..] {
            assert_eq!(e.remapped, 0);
            assert_eq!(e.failed_nodes + e.failed_links, 0);
        }
        let stats = bank.stats();
        assert_eq!(stats.misses, 1, "repair keeps every later epoch banked");
    }

    #[test]
    fn flapping_link_recovers_through_restore() {
        // cut the a-d link for one epoch, then it heals; both transitions
        // must flow through the delta path without a cold rebuild
        let sched = FaultSchedule::from_events(vec![FaultEvent {
            kind: FaultKind::LinkCut { link: EdgeId(2) }, // undirected link 1
            start_ms: 1_100.0,
            end_ms: 2_100.0,
        }]);
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let report = run_failover_remap(
            &dyn_net,
            &sched,
            &[(pipe(), NodeId(0), NodeId(3))],
            &cost(),
            FailoverConfig {
                period_ms: 1_000.0,
                drift_threshold: 0.05,
            },
            5_000.0,
            s,
            &bank,
        )
        .unwrap();
        let cut = &report.epochs[2];
        assert_eq!(cut.failed_links, 2, "one undirected link, two directions");
        assert_eq!(cut.forced_remaps, 0, "no host died");
        let heal = &report.epochs[3];
        assert_eq!(heal.failed_links, 0);
        assert_eq!(heal.perturbed_elements, 2, "restore is a perturbation");
        let stats = bank.stats();
        assert_eq!(stats.misses, 1, "cut and restore both repair in place");
        // structural determinism: a rerun reports identical non-timing data
        let bank2 = ClosureBank::new();
        let rerun = run_failover_remap(
            &dyn_net,
            &sched,
            &[(pipe(), NodeId(0), NodeId(3))],
            &cost(),
            FailoverConfig {
                period_ms: 1_000.0,
                drift_threshold: 0.05,
            },
            5_000.0,
            s,
            &bank2,
        )
        .unwrap();
        for (a, b) in report.epochs.iter().zip(&rerun.epochs) {
            assert_eq!(a.failed_links, b.failed_links);
            assert_eq!(a.failed_nodes, b.failed_nodes);
            assert_eq!(a.perturbed_elements, b.perturbed_elements);
            assert_eq!(a.trees_kept, b.trees_kept);
            assert_eq!(a.trees_rebuilt, b.trees_rebuilt);
            assert_eq!(a.remapped, b.remapped);
            assert_eq!(a.forced_remaps, b.forced_remaps);
        }
    }

    #[test]
    fn failover_loop_rejects_bad_configs() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let s = solver("elpc_delay_routed").expect("registered");
        let bank = ClosureBank::new();
        let sched = FaultSchedule::from_events(vec![]);
        let pipes = [(pipe(), NodeId(0), NodeId(3))];
        for (config, horizon, pipelines) in [
            (
                FailoverConfig {
                    period_ms: 0.0,
                    ..FailoverConfig::default()
                },
                5_000.0,
                &pipes[..],
            ),
            (
                FailoverConfig {
                    drift_threshold: -0.1,
                    ..FailoverConfig::default()
                },
                5_000.0,
                &pipes[..],
            ),
            (FailoverConfig::default(), 500.0, &pipes[..]),
            (FailoverConfig::default(), 5_000.0, &[][..]),
        ] {
            assert!(run_failover_remap(
                &dyn_net,
                &sched,
                pipelines,
                &cost(),
                config,
                horizon,
                s,
                &bank,
            )
            .is_err());
        }
    }

    /// The portfolio control loop equals the routed-optimal DP loop
    /// exactly: `elpc_delay_routed` leads the slate and no slate member
    /// can beat the routed optimum, so ties resolve to the DP's mapping
    /// every epoch.
    #[test]
    fn portfolio_adaptation_equals_the_routed_dp_loop() {
        let config = AdaptiveConfig {
            period_ms: 500.0,
            hysteresis: 0.05,
            switch_cost_ms: 0.0,
        };
        let via_portfolio = run_portfolio_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            config,
            8_000.0,
        )
        .unwrap();
        let via_dp = run_adaptation(
            &degrading(),
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            config,
            8_000.0,
            solver("elpc_delay_routed").expect("registered"),
        )
        .unwrap();
        assert_eq!(via_portfolio, via_dp);
        assert!(via_portfolio.switches >= 1, "drift must trigger a remap");
    }

    #[test]
    fn bad_configs_are_rejected() {
        let dyn_net = DynamicNetwork::steady(base_net());
        let bad_period = AdaptiveConfig {
            period_ms: 0.0,
            ..Default::default()
        };
        assert!(run_delay_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            bad_period,
            1000.0
        )
        .is_err());
        let bad_hyst = AdaptiveConfig {
            hysteresis: -0.5,
            ..Default::default()
        };
        assert!(run_delay_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            bad_hyst,
            1000.0
        )
        .is_err());
        let short = AdaptiveConfig {
            period_ms: 1000.0,
            ..Default::default()
        };
        assert!(run_delay_adaptation(
            &dyn_net,
            &pipe(),
            NodeId(0),
            NodeId(3),
            &cost(),
            short,
            500.0
        )
        .is_err());
    }
}
