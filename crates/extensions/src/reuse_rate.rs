//! Maximum frame rate *with* node reuse (§5 future work).
//!
//! The paper disables node reuse for streaming because "node reuse …
//! causes resource sharing, and hence affects the optimality of the
//! solutions to previous mapping subproblems". The clean generalization —
//! validated by the discrete-event simulator — is: map module groups onto a
//! *simple* path (each node visited at most once, so sharing happens only
//! within a group), where a group's stage time is the **sum** of its
//! modules' compute times, and the objective is still the Eq. 2 bottleneck.
//! Grouping trades transfer stages away at the cost of fattening compute
//! stages; on transfer-dominated workloads it beats the one-to-one mapping.
//!
//! The solver is a label-correcting DP over cells `(module j, node v)`;
//! a label carries the bottleneck of *closed* stages, the open group's
//! accumulated work on the current node, and the visited-node set. `stay`
//! transitions grow the open group; `move` transitions close it (folding
//! `open_work / p_v` and the transfer into the bottleneck). Like the
//! paper's no-reuse DP, keeping a bounded label set per cell makes it a
//! heuristic; `k_labels` controls the width and the exhaustive
//! [`exact`] solver provides small-instance ground truth.

use elpc_mapping::{CostModel, Instance, Mapping, MappingError, RateSolution};
use elpc_netgraph::NodeId;

/// Configuration for the grouped-rate DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseRateConfig {
    /// Labels kept per DP cell (wider = better and slower).
    pub k_labels: usize,
}

impl Default for ReuseRateConfig {
    fn default() -> Self {
        ReuseRateConfig { k_labels: 4 }
    }
}

#[derive(Debug, Clone)]
struct Label {
    /// Bottleneck over all *closed* stages so far.
    closed: f64,
    /// Accumulated compute work of the open group on the current node.
    open_work: f64,
    mask: Box<[u64]>,
    parent: Option<(NodeId, u32)>,
}

impl Label {
    fn mask_contains(&self, v: usize) -> bool {
        self.mask[v / 64] & (1 << (v % 64)) != 0
    }
    fn mask_with(&self, v: usize) -> Box<[u64]> {
        let mut m = self.mask.clone();
        m[v / 64] |= 1 << (v % 64);
        m
    }
    /// The label's objective if the pipeline ended here.
    fn objective(&self, power: f64) -> f64 {
        self.closed.max(self.open_work / power)
    }
}

/// Solves maximum frame rate with node reuse (grouped simple path).
pub fn solve(inst: &Instance<'_>, cost: &CostModel) -> crate::Result<RateSolution> {
    solve_with(inst, cost, ReuseRateConfig::default())
}

/// Solves with an explicit configuration.
pub fn solve_with(
    inst: &Instance<'_>,
    cost: &CostModel,
    config: ReuseRateConfig,
) -> crate::Result<RateSolution> {
    if config.k_labels == 0 {
        return Err(MappingError::BadConfig(
            "k_labels must be at least 1".into(),
        ));
    }
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    let words = k.div_ceil(64);

    let mut root_mask = vec![0u64; words].into_boxed_slice();
    root_mask[inst.src.index() / 64] |= 1 << (inst.src.index() % 64);
    let mut columns: Vec<Vec<Vec<Label>>> = Vec::with_capacity(n);
    let mut col0 = vec![Vec::new(); k];
    col0[inst.src.index()].push(Label {
        closed: 0.0,
        open_work: 0.0, // module 0 computes nothing
        mask: root_mask,
        parent: None,
    });
    columns.push(col0);

    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        let prev = &columns[j - 1];
        let mut cur: Vec<Vec<Label>> = vec![Vec::new(); k];
        // stay: module j joins the open group on the same node
        for v in 0..k {
            let power = net.power(NodeId::from_index(v));
            for (idx, label) in prev[v].iter().enumerate() {
                insert(
                    &mut cur[v],
                    Label {
                        closed: label.closed,
                        open_work: label.open_work + work,
                        mask: label.mask.clone(),
                        parent: Some((NodeId::from_index(v), idx as u32)),
                    },
                    config.k_labels,
                    power,
                );
            }
        }
        // move: close the group on u, transfer, open a group on v
        for (eid, e) in net.graph().edges() {
            let u = e.src.index();
            if prev[u].is_empty() {
                continue;
            }
            let v = e.dst.index();
            // NOTE: unlike the one-to-one rate DP, arriving at the
            // destination early is legal here — the final group may hold
            // several modules (the mask still prevents leaving and coming
            // back, so dst never appears mid-path in a completed label).
            let u_power = net.power(e.src);
            let v_power = net.power(e.dst);
            let transfer = cost.edge_transfer_ms(net, eid, in_bytes);
            for (idx, label) in prev[u].iter().enumerate() {
                if label.mask_contains(v) {
                    continue; // simple path: no node revisits
                }
                let closed = label.closed.max(label.open_work / u_power).max(transfer);
                insert(
                    &mut cur[v],
                    Label {
                        closed,
                        open_work: work,
                        mask: label.mask_with(v),
                        parent: Some((e.src, idx as u32)),
                    },
                    config.k_labels,
                    v_power,
                );
            }
        }
        columns.push(cur);
    }

    let dst_power = net.power(inst.dst);
    let final_labels = &columns[n - 1][inst.dst.index()];
    let Some((best_idx, best)) = final_labels.iter().enumerate().min_by(|a, b| {
        a.1.objective(dst_power)
            .partial_cmp(&b.1.objective(dst_power))
            .expect("objectives are not NaN")
    }) else {
        return Err(MappingError::Infeasible(format!(
            "no grouped simple path maps {} modules from {} to {}",
            n, inst.src, inst.dst
        )));
    };
    let bottleneck = best.objective(dst_power);

    // reconstruction: walk parents, tracking stay/move per column
    let mut assignment = vec![inst.dst; n];
    let mut cursor = (inst.dst, best_idx as u32);
    for j in (0..n).rev() {
        assignment[j] = cursor.0;
        let label = &columns[j][cursor.0.index()][cursor.1 as usize];
        if let Some(p) = label.parent {
            cursor = p;
        } else {
            debug_assert_eq!(j, 0);
        }
    }
    debug_assert_eq!(assignment[0], inst.src);

    let mapping = Mapping::from_assignment(&assignment)?;
    debug_assert!(mapping.uses_distinct_nodes(), "grouped paths stay simple");
    debug_assert!({
        let re = cost.bottleneck_ms(inst, &mapping)?;
        (re - bottleneck).abs() <= 1e-6 * bottleneck.max(1.0)
    });
    Ok(RateSolution {
        mapping,
        bottleneck_ms: bottleneck,
    })
}

/// True when every node in `a` is also in `b`.
fn mask_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// `a` dominates `b` when it is no worse on the closed bottleneck and the
/// open group's work, *and* has visited no extra nodes (so every future
/// completion of `b` is also available to `a` at equal or lower cost).
fn dominates(a: &Label, b: &Label) -> bool {
    a.closed <= b.closed && a.open_work <= b.open_work && mask_subset(&a.mask, &b.mask)
}

fn insert(labels: &mut Vec<Label>, label: Label, cap: usize, power: f64) {
    if labels.iter().any(|l| dominates(l, &label)) {
        return;
    }
    labels.retain(|l| !dominates(&label, l));
    let key = label.objective(power);
    let pos = labels.partition_point(|l| l.objective(power) <= key);
    if pos >= cap {
        return;
    }
    labels.insert(pos, label);
    labels.truncate(cap);
}

/// Exhaustive grouped-rate optimum for small instances: enumerates every
/// simple path of 1..=n nodes and every contiguous grouping onto it.
pub fn exact(
    inst: &Instance<'_>,
    cost: &CostModel,
    max_paths: usize,
) -> crate::Result<RateSolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let mut best: Option<RateSolution> = None;
    let mut budget = max_paths;
    for q in 1..=n.min(net.node_count()) {
        if inst.src == inst.dst && q != 1 {
            continue;
        }
        if q == 1 && inst.src != inst.dst {
            continue;
        }
        elpc_netgraph::algo::for_each_simple_path_exact_nodes(
            net.graph(),
            inst.src,
            inst.dst,
            q,
            |path| {
                if budget == 0 {
                    return elpc_netgraph::algo::PathVisit::Stop;
                }
                budget -= 1;
                // enumerate all compositions of n modules into q groups
                let mut sizes = vec![1usize; q];
                sizes[q - 1] = n - (q - 1);
                loop {
                    let mapping = Mapping::from_parts(path.to_vec(), sizes.clone())
                        .expect("composition sizes are positive");
                    if let Ok(b) = cost.bottleneck_ms(inst, &mapping) {
                        if best.as_ref().is_none_or(|s| b < s.bottleneck_ms) {
                            best = Some(RateSolution {
                                mapping,
                                bottleneck_ms: b,
                            });
                        }
                    }
                    if !next_composition(&mut sizes, n) {
                        break;
                    }
                }
                elpc_netgraph::algo::PathVisit::Continue
            },
        );
    }
    if budget == 0 {
        return Err(MappingError::BudgetExhausted { budget: max_paths });
    }
    best.ok_or_else(|| {
        MappingError::Infeasible(format!(
            "no grouped simple path maps {} modules from {} to {}",
            n, inst.src, inst.dst
        ))
    })
}

/// Advances `sizes` to the next composition of `total` into `sizes.len()`
/// positive parts. Compositions biject with `(q-1)`-subsets of cut points
/// `{1, …, total-1}`; this walks those subsets in lexicographic order with
/// the standard next-combination step. The first composition is
/// `[1, 1, …, total-(q-1)]` (cuts `1, 2, …, q-1`). Returns false after the
/// last one.
fn next_composition(sizes: &mut [usize], total: usize) -> bool {
    let q = sizes.len();
    if q <= 1 {
        return false;
    }
    let m = q - 1;
    // sizes → cumulative cut positions
    let mut cuts = Vec::with_capacity(m);
    let mut acc = 0usize;
    for s in &sizes[..m] {
        acc += *s;
        cuts.push(acc);
    }
    // rightmost position that can still advance
    let Some(j) = (0..m).rev().find(|&j| cuts[j] < total - 1 - (m - 1 - j)) else {
        return false;
    };
    cuts[j] += 1;
    for l in j + 1..m {
        cuts[l] = cuts[l - 1] + 1;
    }
    // cuts → sizes
    let mut prev = 0usize;
    for (i, &c) in cuts.iter().enumerate() {
        sizes[i] = c - prev;
        prev = c;
    }
    sizes[m] = total - prev;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_mapping::elpc_rate;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Slow links, fast nodes: grouping should beat one-to-one mapping.
    fn slow_link_net() -> Network {
        let mut b = Network::builder();
        let s = b.add_node(1000.0).unwrap();
        let m = b.add_node(1000.0).unwrap();
        let d = b.add_node(1000.0).unwrap();
        b.add_link(s, m, 1.0, 1.0).unwrap(); // 1 Mbps links
        b.add_link(m, d, 1.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn grouping_beats_one_to_one_on_transfer_dominated_pipelines() {
        let net = slow_link_net();
        // big intermediate data: every extra hop costs 8000 ms of transfer
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(1.0, 1e6),
            Module::new(1.0, 1e4),
            Module::new(1.0, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let grouped = solve(&inst, &cost()).unwrap();
        // one-to-one is infeasible here anyway (4 modules, 3 nodes), so
        // compare against the best no-reuse-on-4-nodes alternative: none.
        assert!(elpc_rate::solve(&inst, &cost()).is_err());
        // grouped solution exists and its bottleneck is the big transfer
        assert!(grouped.bottleneck_ms >= 8000.0);
        assert!(grouped.mapping.uses_distinct_nodes());
        // verify against exhaustive search
        let ex = exact(&inst, &cost(), 100_000).unwrap();
        assert!((grouped.bottleneck_ms - ex.bottleneck_ms).abs() < 1e-6);
    }

    #[test]
    fn reuse_never_hurts_compared_to_no_reuse() {
        // where one-to-one is feasible, the grouped optimum can only be
        // equal or better (grouping strictly generalizes it)
        let mut b = Network::builder();
        let powers = [100.0, 80.0, 120.0, 90.0, 110.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_link(ns[i], ns[j], 50.0, 0.5).unwrap();
            }
        }
        let net = b.build().unwrap();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 5e4), (2.0, 2e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, ns[0], ns[4]).unwrap();
        let no_reuse = elpc_rate::solve(&inst, &cost()).unwrap();
        let with_reuse = solve(&inst, &cost()).unwrap();
        assert!(with_reuse.bottleneck_ms <= no_reuse.bottleneck_ms + 1e-9);
    }

    #[test]
    fn dp_matches_exact_on_small_instances() {
        use rand::{Rng, SeedableRng};
        let mut hits = 0;
        for seed in 0..25u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let k = rng.gen_range(3..6);
            let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
            let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
            let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(10.0..500.0)).collect();
            let mut lr = rand_chacha::ChaCha8Rng::seed_from_u64(seed + 999);
            let net = Network::from_topology(
                &topo,
                |i| elpc_netsim::Node::with_power(powers[i]),
                |_, _| elpc_netsim::Link::new(lr.gen_range(1.0..100.0), lr.gen_range(0.1..2.0)),
            )
            .unwrap();
            let n = rng.gen_range(2..=4);
            let pipe = elpc_pipeline::gen::PipelineSpec {
                modules: n,
                ..Default::default()
            }
            .generate(&mut rng)
            .unwrap();
            let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
            let dp = solve_with(&inst, &cost(), ReuseRateConfig { k_labels: 8 });
            let ex = exact(&inst, &cost(), 100_000);
            match (dp, ex) {
                (Ok(dp), Ok(ex)) => {
                    // the DP is a heuristic; it must never beat exact, and
                    // with generous labels it should usually match
                    assert!(dp.bottleneck_ms + 1e-9 >= ex.bottleneck_ms, "seed {seed}");
                    if (dp.bottleneck_ms - ex.bottleneck_ms).abs() < 1e-6 {
                        hits += 1;
                    }
                }
                (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {
                    hits += 1;
                }
                (dp, ex) => panic!("seed {seed}: {dp:?} vs {ex:?}"),
            }
        }
        assert!(hits >= 20, "DP matched exact on only {hits}/25 instances");
    }

    #[test]
    fn single_node_pipeline_when_endpoints_coincide() {
        let net = slow_link_net();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(0)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.q(), 1);
        // bottleneck = all compute on node 0: (1e5 + 1e4)/1000 = 110 ms
        assert!((sol.bottleneck_ms - 110.0).abs() < 1e-9);
    }

    #[test]
    fn composition_iterator_is_exhaustive() {
        // compositions of 5 into 3 positive parts: C(4,2) = 6
        let mut sizes = vec![1, 1, 3];
        let mut seen = vec![sizes.clone()];
        while next_composition(&mut sizes, 5) {
            seen.push(sizes.clone());
        }
        assert_eq!(seen.len(), 6);
        for s in &seen {
            assert_eq!(s.iter().sum::<usize>(), 5);
            assert!(s.iter().all(|&x| x >= 1));
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "compositions must be distinct");
    }

    #[test]
    fn zero_labels_rejected() {
        let net = slow_link_net();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        assert!(matches!(
            solve_with(&inst, &cost(), ReuseRateConfig { k_labels: 0 }),
            Err(MappingError::BadConfig(_))
        ));
    }

    #[test]
    fn simulation_confirms_grouped_bottleneck() {
        let net = slow_link_net();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e5),
            Module::new(2.0, 1e5),
            Module::new(1.0, 1e4),
            Module::new(0.5, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        let report = elpc_simcore::simulate(
            &inst,
            &cost(),
            &sol.mapping,
            elpc_simcore::Workload::stream(25),
        )
        .unwrap();
        let gap = report.steady_interdeparture_ms().unwrap();
        assert!(
            (gap - sol.bottleneck_ms).abs() < 1e-6,
            "simulated gap {gap} vs analytic {}",
            sol.bottleneck_ms
        );
    }
}
