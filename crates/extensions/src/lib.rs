//! # elpc-extensions — the paper's §5 future-work items, implemented
//!
//! The conclusion of Wu et al. names three directions; this crate builds
//! all three on top of the core stack:
//!
//! * [`reuse_rate`] — "study the pipeline mapping problem for maximum frame
//!   rate in the case of node reuse": a label-correcting dynamic program
//!   over grouped simple paths, where a node hosting a group of modules
//!   serializes their work (`Σ c_j·m_{j-1} / p`), which is exactly how the
//!   discrete-event simulator says shared nodes behave.
//! * [`workflow`] — "extend linear pipelines to graph workflows": a DAG
//!   workflow model plus a HEFT-style list scheduler (upward-rank priority,
//!   earliest-finish-time placement with routed transfers).
//! * [`adaptive`] — "time-varying nature of system resources' availability":
//!   epoch-based remapping over an `elpc_netsim::dynamics::DynamicNetwork`
//!   with switching hysteresis, compared against a map-once static
//!   strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod reuse_rate;
pub mod workflow;

/// Result alias shared with the mapping crate.
pub type Result<T> = std::result::Result<T, elpc_mapping::MappingError>;
