//! Graph (DAG) workflows — the §5 "extend linear pipelines to graph
//! workflows" direction.
//!
//! A [`DagWorkflow`] generalizes the linear pipeline: modules form a
//! directed acyclic graph whose edges carry the transferred data sizes; a
//! module's compute work is `complexity × Σ incoming bytes` (which reduces
//! exactly to the paper's `c_j · m_{j-1}` on a chain).
//!
//! The mapper is a HEFT-style list scheduler (Topcuoglu et al.'s canonical
//! heuristic family, the natural baseline for DAG mapping): modules are
//! prioritized by *upward rank* (critical-path length under average costs)
//! and placed, in rank order, on the node minimizing their earliest finish
//! time given routed transfers from already-placed predecessors and
//! per-node serial availability. On a chain this degenerates to a
//! delay-style mapping, which the tests compare against the optimal
//! ELPC-delay DP.

use elpc_mapping::{CostModel, MappingError};
use elpc_netgraph::{Graph, NodeId};
use elpc_netsim::Network;
use serde::{Deserialize, Serialize};

/// A module in a DAG workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagModule {
    /// Per-input-byte computational complexity (the paper's `c`).
    pub complexity: f64,
    /// Optional stage name.
    pub name: Option<String>,
}

/// A directed acyclic workflow of modules; edge payloads are transfer sizes
/// in bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DagWorkflow {
    graph: Graph<DagModule, f64>,
}

impl Default for DagWorkflow {
    fn default() -> Self {
        Self::new()
    }
}

impl DagWorkflow {
    /// An empty workflow.
    pub fn new() -> Self {
        DagWorkflow {
            graph: Graph::new(),
        }
    }

    /// Adds a module, returning its index.
    pub fn add_module(&mut self, complexity: f64, name: Option<&str>) -> usize {
        self.graph
            .add_node(DagModule {
                complexity,
                name: name.map(str::to_string),
            })
            .index()
    }

    /// Adds a data dependency `from → to` carrying `bytes`.
    pub fn add_dependency(&mut self, from: usize, to: usize, bytes: f64) -> crate::Result<()> {
        if !(bytes >= 0.0) || !bytes.is_finite() {
            return Err(MappingError::BadConfig(format!(
                "dependency bytes must be finite and non-negative, got {bytes}"
            )));
        }
        self.graph
            .add_edge(NodeId::from_index(from), NodeId::from_index(to), bytes)
            .map_err(|e| MappingError::BadConfig(e.to_string()))?;
        Ok(())
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when the workflow has no modules.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Converts a linear [`elpc_pipeline::Pipeline`] into the equivalent
    /// chain workflow.
    pub fn from_pipeline(pipe: &elpc_pipeline::Pipeline) -> Self {
        let mut wf = DagWorkflow::new();
        for m in pipe.modules() {
            wf.add_module(m.complexity, m.name.as_deref());
        }
        for j in 0..pipe.len() - 1 {
            wf.add_dependency(j, j + 1, pipe.module(j).output_bytes)
                .expect("pipeline sizes are valid");
        }
        wf
    }

    /// Total input bytes of module `i` (sum over incoming edges).
    pub fn input_bytes(&self, i: usize) -> f64 {
        self.graph
            .edges()
            .filter(|(_, e)| e.dst.index() == i)
            .map(|(_, e)| e.payload)
            .sum()
    }

    /// Compute work of module `i`: `c_i × Σ incoming bytes`.
    pub fn compute_work(&self, i: usize) -> f64 {
        self.graph
            .node(NodeId::from_index(i))
            .expect("valid module index")
            .complexity
            * self.input_bytes(i)
    }

    /// Kahn topological order; errors on cycles.
    pub fn topo_order(&self) -> crate::Result<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, e) in self.graph.edges() {
            indeg[e.dst.index()] += 1;
        }
        let mut ready: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop_front() {
            order.push(i);
            for nb in self.graph.neighbors(NodeId::from_index(i)) {
                let d = &mut indeg[nb.node.index()];
                *d -= 1;
                if *d == 0 {
                    ready.push_back(nb.node.index());
                }
            }
        }
        if order.len() != n {
            return Err(MappingError::BadConfig(
                "workflow contains a dependency cycle".into(),
            ));
        }
        Ok(order)
    }

    /// Successor edges of module `i` as `(successor, bytes)`.
    fn successors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.graph.neighbors(NodeId::from_index(i)).map(move |nb| {
            let e = self.graph.edge(nb.edge).expect("valid edge");
            (nb.node.index(), e.payload)
        })
    }

    /// Predecessor edges of module `i` as `(predecessor, bytes)`.
    fn predecessors(&self, i: usize) -> Vec<(usize, f64)> {
        self.graph
            .edges()
            .filter(|(_, e)| e.dst.index() == i)
            .map(|(_, e)| (e.src.index(), e.payload))
            .collect()
    }
}

/// A computed DAG schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSchedule {
    /// Network node hosting each module.
    pub assignment: Vec<NodeId>,
    /// Start time (ms) per module.
    pub start_ms: Vec<f64>,
    /// Finish time (ms) per module.
    pub finish_ms: Vec<f64>,
    /// Overall makespan (ms).
    pub makespan_ms: f64,
}

/// Maps a DAG workflow onto a network with HEFT-style list scheduling.
///
/// `pinned` fixes module→node placements (e.g. data sources and display
/// sinks, the DAG analogue of §4.1's pinned endpoints).
pub fn map_dag(
    wf: &DagWorkflow,
    net: &Network,
    cost: &CostModel,
    pinned: &[(usize, NodeId)],
) -> crate::Result<DagSchedule> {
    if wf.is_empty() {
        return Err(MappingError::BadConfig("empty workflow".into()));
    }
    let order = wf.topo_order()?;
    let n = wf.len();
    let k = net.node_count();
    let mut pin: Vec<Option<NodeId>> = vec![None; n];
    for &(m, node) in pinned {
        if m >= n {
            return Err(MappingError::BadConfig(format!(
                "pinned module {m} out of range ({n} modules)"
            )));
        }
        net.graph()
            .check_node(node)
            .map_err(elpc_netsim::NetworkError::from)?;
        pin[m] = Some(node);
    }

    // --- upward ranks under average costs ---
    let avg_power = net.node_ids().map(|v| net.power(v)).sum::<f64>() / k as f64;
    let mut bw_sum = 0.0;
    let mut bw_cnt = 0usize;
    for (_, e) in net.graph().edges() {
        bw_sum += e.payload.bw_mbps;
        bw_cnt += 1;
    }
    let avg_bw = if bw_cnt > 0 {
        bw_sum / bw_cnt as f64
    } else {
        1.0
    };
    let mut rank = vec![0.0_f64; n];
    for &i in order.iter().rev() {
        let own = wf.compute_work(i) / avg_power;
        let tail = wf
            .successors(i)
            .map(|(s, bytes)| elpc_netsim::units::serialization_ms(bytes, avg_bw) + rank[s])
            .fold(0.0, f64::max);
        rank[i] = own + tail;
    }
    let mut priority: Vec<usize> = (0..n).collect();
    priority.sort_by(|&a, &b| {
        rank[b]
            .partial_cmp(&rank[a])
            .expect("ranks are finite")
            // stable, deterministic tie-break; also keeps topological
            // consistency for equal ranks on chains
            .then_with(|| {
                order
                    .iter()
                    .position(|&x| x == a)
                    .cmp(&order.iter().position(|&x| x == b))
            })
    });

    // --- EFT placement ---
    // one metric closure for the whole placement: every (predecessor host,
    // payload) transfer tree is computed once and read k times across the
    // candidate loop, instead of one throwaway Dijkstra per (candidate,
    // predecessor) query
    let closure = elpc_mapping::MetricClosure::new(net, *cost);
    let mut host: Vec<Option<NodeId>> = vec![None; n];
    let mut finish = vec![f64::NAN; n];
    let mut start = vec![f64::NAN; n];
    let mut node_free = vec![0.0_f64; k];
    for &i in &priority {
        // all predecessors of i are already placed: rank(pred) > rank(i)
        // strictly on weighted DAGs; equal-rank chains keep topo order
        let preds = wf.predecessors(i);
        debug_assert!(preds.iter().all(|&(p, _)| host[p].is_some()));
        let work = wf.compute_work(i);
        let candidates: Vec<NodeId> = match pin[i] {
            Some(v) => vec![v],
            None => net.node_ids().collect(),
        };
        let mut best: Option<(f64, f64, NodeId)> = None; // (eft, est, node)
        for v in candidates {
            let mut est = node_free[v.index()];
            let mut routable = true;
            for &(p, bytes) in &preds {
                let hp = host[p].expect("predecessors placed first");
                let t = if hp == v {
                    0.0
                } else {
                    match closure.routed_transfer_ms(hp, v, bytes) {
                        Ok(t) => t,
                        Err(_) => {
                            routable = false;
                            break;
                        }
                    }
                };
                est = est.max(finish[p] + t);
            }
            if !routable {
                continue;
            }
            let eft = est + work / net.power(v);
            if best.is_none_or(|(b, _, _)| eft < b) {
                best = Some((eft, est, v));
            }
        }
        let Some((eft, est, v)) = best else {
            return Err(MappingError::Infeasible(format!(
                "module {i} cannot receive its inputs on any node"
            )));
        };
        host[i] = Some(v);
        start[i] = est;
        finish[i] = eft;
        node_free[v.index()] = eft;
    }

    let makespan = finish.iter().copied().fold(0.0, f64::max);
    Ok(DagSchedule {
        assignment: host.into_iter().map(|h| h.expect("all placed")).collect(),
        start_ms: start,
        finish_ms: finish,
        makespan_ms: makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_mapping::{elpc_delay, Instance};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    fn net4() -> Network {
        let mut b = Network::builder();
        let powers = [100.0, 400.0, 400.0, 100.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        b.build().unwrap()
    }

    /// fork-join: 0 → {1, 2} → 3
    fn diamond_wf() -> DagWorkflow {
        let mut wf = DagWorkflow::new();
        let s = wf.add_module(0.0, Some("source"));
        let a = wf.add_module(2.0, Some("branch-a"));
        let b = wf.add_module(2.0, Some("branch-b"));
        let t = wf.add_module(0.5, Some("join"));
        wf.add_dependency(s, a, 1e5).unwrap();
        wf.add_dependency(s, b, 1e5).unwrap();
        wf.add_dependency(a, t, 5e4).unwrap();
        wf.add_dependency(b, t, 5e4).unwrap();
        wf
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let wf = diamond_wf();
        let order = wf.topo_order().unwrap();
        let pos = |m: usize| order.iter().position(|&x| x == m).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycles_are_detected() {
        let mut wf = DagWorkflow::new();
        let a = wf.add_module(1.0, None);
        let b = wf.add_module(1.0, None);
        wf.add_dependency(a, b, 10.0).unwrap();
        wf.add_dependency(b, a, 10.0).unwrap();
        assert!(matches!(wf.topo_order(), Err(MappingError::BadConfig(_))));
    }

    #[test]
    fn fork_branches_run_in_parallel_on_different_nodes() {
        let wf = diamond_wf();
        let net = net4();
        let sched = map_dag(&wf, &net, &cost(), &[(0, NodeId(0)), (3, NodeId(3))]).unwrap();
        assert_eq!(sched.assignment[0], NodeId(0));
        assert_eq!(sched.assignment[3], NodeId(3));
        // the two heavy branches land on the two fast nodes, in parallel
        assert_ne!(sched.assignment[1], sched.assignment[2]);
        let overlap =
            sched.start_ms[1].max(sched.start_ms[2]) < sched.finish_ms[1].min(sched.finish_ms[2]);
        assert!(overlap, "branches should overlap in time: {sched:?}");
        // makespan beats any serial execution of both branches on one node
        let serial_work = (wf.compute_work(1) + wf.compute_work(2)) / 400.0;
        assert!(sched.makespan_ms < serial_work + 1e4);
    }

    #[test]
    fn chain_workflow_is_never_better_than_optimal_elpc() {
        // on a chain, the DAG makespan is an Eq. 1 delay, so the HEFT
        // heuristic cannot beat the optimal DP (it may tie or lose)
        let net = net4();
        let pipe = Pipeline::from_stages(2e5, &[(1.0, 1e5), (3.0, 2e4)], 0.5).unwrap();
        let wf = DagWorkflow::from_pipeline(&pipe);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let optimal = elpc_delay::solve(&inst, &cost()).unwrap();
        let sched = map_dag(&wf, &net, &cost(), &[(0, NodeId(0)), (3, NodeId(3))]).unwrap();
        assert!(
            sched.makespan_ms + 1e-9 >= optimal.delay_ms,
            "HEFT {} beat the optimal DP {}",
            sched.makespan_ms,
            optimal.delay_ms
        );
        // and it should be within a small factor on such easy instances
        assert!(sched.makespan_ms <= optimal.delay_ms * 3.0);
    }

    #[test]
    fn pinning_is_enforced_and_validated() {
        let wf = diamond_wf();
        let net = net4();
        let sched = map_dag(&wf, &net, &cost(), &[(1, NodeId(3))]).unwrap();
        assert_eq!(sched.assignment[1], NodeId(3));
        assert!(map_dag(&wf, &net, &cost(), &[(9, NodeId(0))]).is_err());
        assert!(map_dag(&wf, &net, &cost(), &[(0, NodeId(77))]).is_err());
    }

    #[test]
    fn chain_conversion_preserves_work() {
        let pipe = Pipeline::from_stages(1e5, &[(2.0, 5e4)], 1.0).unwrap();
        let wf = DagWorkflow::from_pipeline(&pipe);
        assert_eq!(wf.len(), 3);
        for j in 0..3 {
            assert!((wf.compute_work(j) - pipe.compute_work(j)).abs() < 1e-9);
        }
    }

    #[test]
    fn start_finish_times_are_consistent() {
        let wf = diamond_wf();
        let net = net4();
        let sched = map_dag(&wf, &net, &cost(), &[]).unwrap();
        for i in 0..wf.len() {
            assert!(sched.start_ms[i] <= sched.finish_ms[i]);
        }
        // a module never starts before its predecessors finish
        assert!(sched.start_ms[3] >= sched.finish_ms[1].max(sched.finish_ms[2]) - 1e-9);
        assert_eq!(sched.makespan_ms, sched.finish_ms[3]);
    }

    #[test]
    fn empty_workflow_is_rejected() {
        let wf = DagWorkflow::new();
        let net = net4();
        assert!(map_dag(&wf, &net, &cost(), &[]).is_err());
    }

    #[test]
    fn negative_dependency_bytes_are_rejected() {
        let mut wf = DagWorkflow::new();
        let a = wf.add_module(1.0, None);
        let b = wf.add_module(1.0, None);
        assert!(wf.add_dependency(a, b, -5.0).is_err());
        assert!(wf.add_dependency(a, b, f64::NAN).is_err());
    }
}
