//! Property-based tests for the network model, measurement, and dynamics.

use elpc_netsim::dynamics::LoadModel;
use elpc_netsim::measure::{estimate_link, fit_link, ProbePlan, ProbeSample};
use elpc_netsim::{format, Link, Network, Node};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is monotone in bytes and anti-monotone in bandwidth.
    #[test]
    fn transfer_time_monotonicity(
        bytes in 1.0_f64..1e9,
        bw in 0.1_f64..1e4,
        mld in 0.0_f64..100.0,
    ) {
        let link = Link::new(bw, mld);
        let t = link.transfer_time_ms(bytes);
        prop_assert!(t >= mld);
        prop_assert!(link.transfer_time_ms(bytes * 2.0) > t);
        let faster = Link::new(bw * 2.0, mld);
        prop_assert!(faster.transfer_time_ms(bytes) < t);
    }

    /// Noiseless probes always recover link parameters exactly, for any
    /// parameter combination.
    #[test]
    fn regression_is_exact_without_noise(
        bw in 0.5_f64..5e3,
        mld in 0.0_f64..500.0,
        seed in any::<u64>(),
    ) {
        let link = Link::new(bw, mld);
        let plan = ProbePlan { noise_frac: 0.0, ..ProbePlan::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = estimate_link(&link, &plan, &mut rng).unwrap();
        prop_assert!((est.bw_mbps - bw).abs() / bw < 1e-9);
        prop_assert!((est.mld_ms - mld).abs() < 1e-6);
    }

    /// The fitted line always passes through the sample centroid
    /// (an OLS identity), whatever the samples.
    #[test]
    fn ols_passes_through_centroid(samples in prop::collection::vec((1.0_f64..1e7, 0.1_f64..1e5), 3..20)) {
        let pts: Vec<ProbeSample> = samples
            .iter()
            .map(|&(bytes, time_ms)| ProbeSample { bytes, time_ms })
            .collect();
        if let Ok(est) = fit_link(&pts) {
            let mean_x = pts.iter().map(|s| s.bytes).sum::<f64>() / pts.len() as f64;
            let mean_y = pts.iter().map(|s| s.time_ms).sum::<f64>() / pts.len() as f64;
            // slope in ms/byte from the returned bandwidth
            let slope = 8.0 / 1e6 / (est.bw_mbps / 1e3);
            let predicted = slope * mean_x + est.mld_ms;
            prop_assert!((predicted - mean_y).abs() <= 1e-6 * mean_y.abs().max(1.0));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&est.r_squared));
        }
    }

    /// All load models stay within (0, 1] at all times.
    #[test]
    fn load_models_stay_in_unit_interval(
        t in 0.0_f64..1e8,
        period in 1.0_f64..1e6,
        amplitude in 0.0_f64..0.99,
        floor in 0.01_f64..1.0,
        seed in any::<u64>(),
    ) {
        for model in [
            LoadModel::Constant(floor),
            LoadModel::Sinusoid { period_ms: period, amplitude, phase_ms: t / 3.0 },
            LoadModel::RandomEpochs { epoch_ms: period, floor, seed },
        ] {
            let f = model.factor(t);
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "{model:?} at {t} gave {f}");
        }
    }

    /// The text format round-trips arbitrary valid networks.
    #[test]
    fn text_format_round_trips(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let links = (n - 1 + (seed as usize % n)).min(n * (n - 1) / 2);
        let topo = elpc_netgraph::gen::random_connected(n, links, &mut rng).unwrap();
        use rand::Rng as _;
        let powers: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1e4)).collect();
        let mut lr = ChaCha8Rng::seed_from_u64(!seed);
        let net = Network::from_topology(
            &topo,
            |i| Node { power: powers[i], ip: Some(format!("10.0.0.{i}")), name: None },
            |_, _| Link::new(lr.gen_range(0.5..2e3), lr.gen_range(0.0..50.0)),
        ).unwrap();
        let text = format::to_text(&net);
        let back = format::from_text(&text).unwrap();
        prop_assert_eq!(net.node_count(), back.node_count());
        prop_assert_eq!(net.link_count(), back.link_count());
        for v in net.node_ids() {
            prop_assert_eq!(net.power(v), back.power(v));
            prop_assert_eq!(&net.node(v).unwrap().ip, &back.node(v).unwrap().ip);
        }
        for (id, e) in net.graph().edges() {
            let b = back.graph().edge(id).unwrap();
            prop_assert_eq!(e.src, b.src);
            prop_assert_eq!(e.payload.bw_mbps, b.payload.bw_mbps);
            prop_assert_eq!(e.payload.mld_ms, b.payload.mld_ms);
        }
    }
}
