//! Plain-text network description format.
//!
//! §4.1 of the paper describes networks by node and link parameter tables
//! (`NodeID, NodeIP, ProcessingPower`; `startNodeID, endNodeID, LinkID,
//! LinkBWInMbps, LinkDelayInMilliseconds`). This module reads and writes an
//! equivalent line-based format so experiment inputs can be versioned as
//! text:
//!
//! ```text
//! # comment
//! node <NodeID> <ProcessingPower> [NodeIP]
//! link <startNodeID> <endNodeID> <LinkBWInMbps> <LinkDelayInMilliseconds>
//! ```
//!
//! `NodeID`s must be dense and in order (0, 1, 2, …), matching the graph's
//! dense ids. `LinkID` is implicit (insertion order), as in the graph.

use crate::{Network, NetworkError, Result};
use elpc_netgraph::NodeId;
use std::fmt::Write as _;

/// Serializes a network to the text format.
pub fn to_text(net: &Network) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# elpc network: {} nodes, {} links",
        net.node_count(),
        net.link_count()
    )
    .unwrap();
    for (id, n) in net.graph().nodes() {
        match &n.ip {
            Some(ip) => writeln!(out, "node {} {} {}", id, n.power, ip).unwrap(),
            None => writeln!(out, "node {} {}", id, n.power).unwrap(),
        }
    }
    for (_, e) in net.graph().edges() {
        // emit each undirected link once, in canonical (lo < hi) direction
        if e.src < e.dst {
            writeln!(
                out,
                "link {} {} {} {}",
                e.src, e.dst, e.payload.bw_mbps, e.payload.mld_ms
            )
            .unwrap();
        }
    }
    out
}

/// Parses the text format into a [`Network`].
///
/// Unknown directives, out-of-order node ids, and malformed numbers are
/// reported with 1-based line numbers.
pub fn from_text(text: &str) -> Result<Network> {
    let mut b = Network::builder();
    let mut next_node = 0u32;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a first token");
        match directive {
            "node" => {
                let id: u32 = parse_field(parts.next(), "NodeID", lineno)?;
                if id != next_node {
                    return Err(NetworkError::Parse {
                        line: lineno,
                        reason: format!(
                            "expected NodeID {next_node}, got {id} (ids must be dense and ordered)"
                        ),
                    });
                }
                let power: f64 = parse_field(parts.next(), "ProcessingPower", lineno)?;
                let ip = parts.next().map(str::to_string);
                if let Some(extra) = parts.next() {
                    return Err(NetworkError::Parse {
                        line: lineno,
                        reason: format!("unexpected trailing field '{extra}'"),
                    });
                }
                b.push_node(crate::Node {
                    power,
                    ip,
                    name: None,
                })?;
                next_node += 1;
            }
            "link" => {
                let a: u32 = parse_field(parts.next(), "startNodeID", lineno)?;
                let c: u32 = parse_field(parts.next(), "endNodeID", lineno)?;
                let bw: f64 = parse_field(parts.next(), "LinkBWInMbps", lineno)?;
                let mld: f64 = parse_field(parts.next(), "LinkDelayInMilliseconds", lineno)?;
                if let Some(extra) = parts.next() {
                    return Err(NetworkError::Parse {
                        line: lineno,
                        reason: format!("unexpected trailing field '{extra}'"),
                    });
                }
                b.add_link(NodeId(a), NodeId(c), bw, mld)?;
            }
            other => {
                return Err(NetworkError::Parse {
                    line: lineno,
                    reason: format!("unknown directive '{other}' (expected 'node' or 'link')"),
                });
            }
        }
    }
    b.build()
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str, line: usize) -> Result<T> {
    let s = field.ok_or_else(|| NetworkError::Parse {
        line,
        reason: format!("missing field {name}"),
    })?;
    s.parse().map_err(|_| NetworkError::Parse {
        line,
        reason: format!("cannot parse {name} from '{s}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    fn sample() -> Network {
        let mut b = Network::builder();
        let n0 = b
            .push_node(crate::Node {
                power: 5000.0,
                ip: Some("10.0.0.1".into()),
                name: None,
            })
            .unwrap();
        let n1 = b.add_node(2500.0).unwrap();
        let n2 = b.add_node(8000.0).unwrap();
        b.add_link(n0, n1, 100.0, 0.5).unwrap();
        b.add_link(n1, n2, 622.0, 2.0).unwrap();
        b.add_link(n0, n2, 45.0, 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let net = sample();
        let text = to_text(&net);
        let back = from_text(&text).unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.link_count(), 3);
        assert_eq!(back.power(NodeId(0)), 5000.0);
        assert_eq!(
            back.node(NodeId(0)).unwrap().ip.as_deref(),
            Some("10.0.0.1")
        );
        assert_eq!(back.link(elpc_netgraph::EdgeId(2)).unwrap().bw_mbps, 622.0);
        assert_eq!(back.link(elpc_netgraph::EdgeId(4)).unwrap().mld_ms, 10.0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# header\nnode 0 10\n\nnode 1 20\n# middle\nlink 0 1 100 1\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.link_count(), 1);
    }

    #[test]
    fn out_of_order_node_ids_are_rejected() {
        let err = from_text("node 1 10\n").unwrap_err();
        assert!(matches!(err, NetworkError::Parse { line: 1, .. }));
        let err = from_text("node 0 10\nnode 0 20\n").unwrap_err();
        assert!(matches!(err, NetworkError::Parse { line: 2, .. }));
    }

    #[test]
    fn malformed_numbers_report_the_line() {
        let err = from_text("node 0 ten\n").unwrap_err();
        match err {
            NetworkError::Parse { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("ProcessingPower"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_directives_are_rejected() {
        let err = from_text("router 0 10\n").unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn trailing_fields_are_rejected() {
        assert!(from_text("node 0 10 1.2.3.4 extra\n").is_err());
        assert!(from_text("node 0 1\nnode 1 1\nlink 0 1 10 1 extra\n").is_err());
    }

    #[test]
    fn links_referencing_unknown_nodes_fail() {
        let err = from_text("node 0 1\nlink 0 5 10 1\n").unwrap_err();
        assert!(matches!(err, NetworkError::Graph(_)));
    }

    #[test]
    fn disconnected_files_fail_validation() {
        let err = from_text("node 0 1\nnode 1 1\n").unwrap_err();
        assert!(matches!(err, NetworkError::Invalid(_)));
    }
}
