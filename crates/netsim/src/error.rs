//! Error type for network model construction and parsing.

use elpc_netgraph::{GraphError, NodeId};
use std::fmt;

/// Errors from building, validating, or parsing a [`crate::Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Underlying graph error (bad endpoint, self-loop, …).
    Graph(GraphError),
    /// A node parameter was out of range (e.g. non-positive power).
    BadNodeParameter {
        /// Offending node.
        node: NodeId,
        /// Explanation.
        reason: String,
    },
    /// A link parameter was out of range (e.g. negative bandwidth).
    BadLinkParameter {
        /// Link endpoints as given.
        endpoints: (NodeId, NodeId),
        /// Explanation.
        reason: String,
    },
    /// Text-format parse failure with 1-based line number.
    Parse {
        /// Line where the failure occurred.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The network failed a structural validation check.
    Invalid(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Graph(e) => write!(f, "graph error: {e}"),
            NetworkError::BadNodeParameter { node, reason } => {
                write!(f, "bad parameter for node {node}: {reason}")
            }
            NetworkError::BadLinkParameter { endpoints, reason } => {
                write!(
                    f,
                    "bad parameter for link {}-{}: {reason}",
                    endpoints.0, endpoints.1
                )
            }
            NetworkError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            NetworkError::Invalid(msg) => write!(f, "invalid network: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for NetworkError {
    fn from(e: GraphError) -> Self {
        NetworkError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_convert_and_chain() {
        let ge = GraphError::SelfLoop(NodeId(3));
        let ne: NetworkError = ge.clone().into();
        assert!(ne.to_string().contains("self-loop"));
        use std::error::Error;
        assert!(ne.source().is_some());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = NetworkError::Parse {
            line: 12,
            reason: "expected 4 fields".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 12: expected 4 fields");
    }

    #[test]
    fn parameter_errors_name_the_culprit() {
        let e = NetworkError::BadNodeParameter {
            node: NodeId(5),
            reason: "power must be positive".into(),
        };
        assert!(e.to_string().contains("node 5"));
        let e = NetworkError::BadLinkParameter {
            endpoints: (NodeId(1), NodeId(2)),
            reason: "bandwidth must be positive".into(),
        };
        assert!(e.to_string().contains("link 1-2"));
    }
}
