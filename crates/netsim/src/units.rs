//! Unit conversions shared by the whole stack.
//!
//! The paper mixes bytes (module data sizes), Mbit/s (link bandwidth) and
//! milliseconds (delays, reported results). All conversions live here so no
//! other module hand-rolls an `8/1000` factor.

/// Bits per byte.
pub const BITS_PER_BYTE: f64 = 8.0;

/// Bits per megabit.
pub const BITS_PER_MEGABIT: f64 = 1_000_000.0;

/// Milliseconds per second.
pub const MS_PER_S: f64 = 1_000.0;

/// Serialization time (ms) for `bytes` over a `bw_mbps` link — the `m/b`
/// term of §2.2, *without* the minimum link delay.
///
/// Returns `f64::INFINITY` for non-positive bandwidth (a down link).
#[inline]
pub fn serialization_ms(bytes: f64, bw_mbps: f64) -> f64 {
    if bw_mbps <= 0.0 {
        return f64::INFINITY;
    }
    bytes * BITS_PER_BYTE / (bw_mbps * BITS_PER_MEGABIT) * MS_PER_S
}

/// Inverse of [`serialization_ms`]: the bandwidth (Mbit/s) that moves
/// `bytes` in `ms` milliseconds.
#[inline]
pub fn bandwidth_mbps(bytes: f64, ms: f64) -> f64 {
    if ms <= 0.0 {
        return f64::INFINITY;
    }
    bytes * BITS_PER_BYTE / BITS_PER_MEGABIT / (ms / MS_PER_S)
}

/// Compute time (ms) for a module of complexity `c` over `in_bytes` of input
/// on a node of power `p` — the `c·m/p` term of §2.2.
///
/// Power is "complexity·bytes per millisecond"; non-positive power means the
/// node cannot compute (infinite time).
#[inline]
pub fn compute_ms(complexity: f64, in_bytes: f64, power: f64) -> f64 {
    if power <= 0.0 {
        return f64::INFINITY;
    }
    complexity * in_bytes / power
}

/// Frames per second achieved when the pipeline bottleneck stage takes
/// `bottleneck_ms` (Eq. 2's reciprocal, converted from ms).
#[inline]
pub fn frame_rate_fps(bottleneck_ms: f64) -> f64 {
    if bottleneck_ms <= 0.0 {
        return f64::INFINITY;
    }
    MS_PER_S / bottleneck_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_over_100mbps_takes_80ms() {
        // 1 MB = 8 Mbit; 8 Mbit / 100 Mbit/s = 0.08 s = 80 ms
        let t = serialization_ms(1_000_000.0, 100.0);
        assert!((t - 80.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn serialization_and_bandwidth_are_inverses() {
        for (bytes, bw) in [(1500.0, 10.0), (1e6, 622.0), (5e7, 1000.0)] {
            let ms = serialization_ms(bytes, bw);
            let back = bandwidth_mbps(bytes, ms);
            assert!((back - bw).abs() / bw < 1e-12);
        }
    }

    #[test]
    fn zero_bandwidth_means_infinite_time() {
        assert!(serialization_ms(100.0, 0.0).is_infinite());
        assert!(serialization_ms(100.0, -5.0).is_infinite());
    }

    #[test]
    fn compute_time_scales_linearly_in_complexity_and_size() {
        let base = compute_ms(1.0, 1000.0, 10.0);
        assert!((compute_ms(2.0, 1000.0, 10.0) - 2.0 * base).abs() < 1e-12);
        assert!((compute_ms(1.0, 2000.0, 10.0) - 2.0 * base).abs() < 1e-12);
        assert!((compute_ms(1.0, 1000.0, 20.0) - base / 2.0).abs() < 1e-12);
    }

    #[test]
    fn powerless_node_takes_forever() {
        assert!(compute_ms(1.0, 1.0, 0.0).is_infinite());
    }

    #[test]
    fn frame_rate_is_reciprocal_of_bottleneck() {
        assert!((frame_rate_fps(100.0) - 10.0).abs() < 1e-12);
        assert!((frame_rate_fps(25.0) - 40.0).abs() < 1e-12);
        assert!(frame_rate_fps(0.0).is_infinite());
    }

    #[test]
    fn zero_bytes_transfer_in_zero_serialization_time() {
        assert_eq!(serialization_ms(0.0, 100.0), 0.0);
    }
}
