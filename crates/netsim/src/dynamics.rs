//! Time-varying resource availability.
//!
//! §5 of the paper: "a single constant is not always sufficient to describe
//! the node computing capability, which … could be time varying in a dynamic
//! environment". This module provides that dynamic environment for the
//! adaptive-remapping extension (`elpc-extensions::adaptive`): each node's
//! power and each link's bandwidth is the static base value multiplied by an
//! availability factor drawn from a [`LoadModel`].
//!
//! Models are deterministic functions of time (plus a per-element seed for
//! the stochastic one), so a `DynamicNetwork` snapshot at time `t` is
//! reproducible — a requirement for the experiment harness.

use crate::{Link, Network, Result};
use serde::{Deserialize, Serialize};

/// A time-varying availability multiplier in `(0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadModel {
    /// Constant availability (1.0 = the static network).
    Constant(f64),
    /// Diurnal-style sinusoid: availability oscillates between
    /// `1 - amplitude` and `1`, with the given period and phase (ms).
    Sinusoid {
        /// Oscillation period in ms (> 0).
        period_ms: f64,
        /// Peak-to-trough amplitude in `[0, 1)`.
        amplitude: f64,
        /// Phase offset in ms.
        phase_ms: f64,
    },
    /// Piecewise-constant random availability: time is divided into epochs
    /// of `epoch_ms`; each epoch's availability is drawn uniformly from
    /// `[floor, 1]` with a hash of `(seed, epoch)` — deterministic, and
    /// stable under snapshot replay.
    RandomEpochs {
        /// Epoch length in ms (> 0).
        epoch_ms: f64,
        /// Lower bound on availability, in `(0, 1]`.
        floor: f64,
        /// Per-element seed.
        seed: u64,
    },
}

impl LoadModel {
    /// Availability factor at absolute time `t_ms`, guaranteed in `(0, 1]`
    /// for valid model parameters.
    pub fn factor(&self, t_ms: f64) -> f64 {
        match *self {
            LoadModel::Constant(a) => a.clamp(f64::MIN_POSITIVE, 1.0),
            LoadModel::Sinusoid {
                period_ms,
                amplitude,
                phase_ms,
            } => {
                let amp = amplitude.clamp(0.0, 1.0 - 1e-9);
                let w = std::f64::consts::TAU * (t_ms + phase_ms) / period_ms.max(1e-9);
                // oscillates in [1 - amp, 1]
                1.0 - amp * 0.5 * (1.0 - w.cos())
            }
            LoadModel::RandomEpochs {
                epoch_ms,
                floor,
                seed,
            } => {
                let epoch = (t_ms / epoch_ms.max(1e-9)).floor() as i64 as u64;
                let f = floor.clamp(f64::MIN_POSITIVE, 1.0);
                f + (1.0 - f) * unit_hash(seed, epoch)
            }
        }
    }

    /// True when the factor is the same at every `t` — a `Constant` model,
    /// or a degenerate time-varying model (zero-amplitude sinusoid, or
    /// random epochs with `floor == 1`). Static elements can never appear
    /// in [`DynamicNetwork::changes_between`].
    pub fn is_static(&self) -> bool {
        match *self {
            LoadModel::Constant(_) => true,
            LoadModel::Sinusoid { amplitude, .. } => amplitude == 0.0,
            LoadModel::RandomEpochs { floor, .. } => floor >= 1.0,
        }
    }

    /// Validates model parameters.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(crate::NetworkError::Invalid(msg));
        match *self {
            LoadModel::Constant(a) if !(a > 0.0 && a <= 1.0) => {
                bad(format!("constant availability must be in (0,1], got {a}"))
            }
            LoadModel::Sinusoid {
                period_ms,
                amplitude,
                ..
            } if !(period_ms > 0.0) || !(0.0..1.0).contains(&amplitude) => bad(format!(
                "sinusoid needs period > 0 and amplitude in [0,1), got period={period_ms} amplitude={amplitude}"
            )),
            LoadModel::RandomEpochs {
                epoch_ms, floor, ..
            } if !(epoch_ms > 0.0) || !(floor > 0.0 && floor <= 1.0) => bad(format!(
                "random epochs need epoch > 0 and floor in (0,1], got epoch={epoch_ms} floor={floor}"
            )),
            _ => Ok(()),
        }
    }
}

/// Deterministic hash of `(seed, epoch)` mapped to `[0, 1)` —
/// SplitMix64-style finalizer, good enough for load jitter.
fn unit_hash(seed: u64, epoch: u64) -> f64 {
    let mut z = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A static base network plus per-node and per-link load models.
///
/// `snapshot_at(t)` produces the effective [`Network`] at time `t`:
/// `power_i(t) = power_i · node_factor_i(t)` and
/// `bw_ij(t) = bw_ij · link_factor_ij(t)` (MLD is treated as load-invariant,
/// being a propagation property).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicNetwork {
    base: Network,
    node_models: Vec<LoadModel>,
    /// Indexed by *undirected link ordinal* (edge id / 2).
    link_models: Vec<LoadModel>,
}

impl DynamicNetwork {
    /// Wraps `base` with all-constant (fully available) models.
    pub fn steady(base: Network) -> Self {
        let nodes = base.node_count();
        let links = base.link_count();
        DynamicNetwork {
            base,
            node_models: vec![LoadModel::Constant(1.0); nodes],
            link_models: vec![LoadModel::Constant(1.0); links],
        }
    }

    /// Wraps `base` with explicit models; lengths must match the node and
    /// undirected-link counts.
    pub fn new(
        base: Network,
        node_models: Vec<LoadModel>,
        link_models: Vec<LoadModel>,
    ) -> Result<Self> {
        if node_models.len() != base.node_count() {
            return Err(crate::NetworkError::Invalid(format!(
                "{} node models for {} nodes",
                node_models.len(),
                base.node_count()
            )));
        }
        if link_models.len() != base.link_count() {
            return Err(crate::NetworkError::Invalid(format!(
                "{} link models for {} links",
                link_models.len(),
                base.link_count()
            )));
        }
        for m in node_models.iter().chain(link_models.iter()) {
            m.validate()?;
        }
        Ok(DynamicNetwork {
            base,
            node_models,
            link_models,
        })
    }

    /// The static base network.
    pub fn base(&self) -> &Network {
        &self.base
    }

    /// The effective network at time `t_ms`.
    pub fn snapshot_at(&self, t_ms: f64) -> Network {
        let mut net = self.base.clone();
        for (i, model) in self.node_models.iter().enumerate() {
            let id = elpc_netgraph::NodeId::from_index(i);
            let f = model.factor(t_ms);
            net.node_mut(id).expect("model count matches").power *= f;
        }
        // directed edges 2k and 2k+1 belong to undirected link k
        for (k, model) in self.link_models.iter().enumerate() {
            let f = model.factor(t_ms);
            let base_link = self
                .base
                .link(elpc_netgraph::EdgeId((2 * k) as u32))
                .expect("model count matches")
                .clone();
            let scaled = Link::new(base_link.bw_mbps * f, base_link.mld_ms);
            net.set_link_symmetric(elpc_netgraph::EdgeId((2 * k) as u32), scaled)
                .expect("edge ids valid");
        }
        net
    }

    /// The elements whose availability factor actually differs between
    /// `t0_ms` and `t1_ms` — the exact set of nodes and links by which
    /// `snapshot_at(t0_ms)` and `snapshot_at(t1_ms)` disagree.
    ///
    /// Static models ([`LoadModel::is_static`]: any `Constant`, a
    /// zero-amplitude sinusoid, unit-floor random epochs) are skipped
    /// without evaluation; everything else is compared by factor bit
    /// pattern, so a sinusoid sampled a whole period apart or a random-
    /// epochs model sampled within one epoch correctly reports "no
    /// change". This is the delta source incremental closure maintenance
    /// consumes: repair only what moved, instead of diffing (or worse,
    /// rebuilding) whole snapshots.
    pub fn changes_between(&self, t0_ms: f64, t1_ms: f64) -> ChangeSet {
        let moved = |m: &LoadModel| {
            !m.is_static() && m.factor(t0_ms).to_bits() != m.factor(t1_ms).to_bits()
        };
        ChangeSet {
            nodes: self
                .node_models
                .iter()
                .enumerate()
                .filter(|(_, m)| moved(m))
                .map(|(i, _)| elpc_netgraph::NodeId::from_index(i))
                .collect(),
            links: self
                .link_models
                .iter()
                .enumerate()
                .filter(|(_, m)| moved(m))
                .map(|(k, _)| elpc_netgraph::EdgeId((2 * k) as u32))
                .collect(),
        }
    }
}

/// The nodes and links [`DynamicNetwork::changes_between`] found perturbed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeSet {
    /// Nodes whose power factor moved.
    pub nodes: Vec<elpc_netgraph::NodeId>,
    /// Links whose bandwidth factor moved, identified by the *even*
    /// directed edge id of the undirected pair (ids `2k`/`2k+1` both
    /// changed — symmetric links scale together).
    pub links: Vec<elpc_netgraph::EdgeId>,
}

impl ChangeSet {
    /// True when nothing moved: the two snapshots are identical networks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netgraph::{EdgeId, NodeId};

    fn base() -> Network {
        let mut b = Network::builder();
        let a = b.add_node(100.0).unwrap();
        let c = b.add_node(200.0).unwrap();
        b.add_link(a, c, 1000.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn constant_model_is_time_invariant() {
        let m = LoadModel::Constant(0.7);
        assert_eq!(m.factor(0.0), 0.7);
        assert_eq!(m.factor(1e9), 0.7);
    }

    #[test]
    fn sinusoid_oscillates_within_bounds_and_peaks_at_phase_zero() {
        let m = LoadModel::Sinusoid {
            period_ms: 1000.0,
            amplitude: 0.4,
            phase_ms: 0.0,
        };
        assert!((m.factor(0.0) - 1.0).abs() < 1e-12);
        assert!((m.factor(500.0) - 0.6).abs() < 1e-12); // trough
        for t in 0..50 {
            let f = m.factor(t as f64 * 37.0);
            assert!((0.6 - 1e-12..=1.0 + 1e-12).contains(&f));
        }
    }

    #[test]
    fn random_epochs_are_deterministic_and_bounded() {
        let m = LoadModel::RandomEpochs {
            epoch_ms: 100.0,
            floor: 0.5,
            seed: 99,
        };
        assert_eq!(m.factor(10.0), m.factor(99.0)); // same epoch
        assert_eq!(m.factor(10.0), m.factor(10.0)); // replayable
        let mut distinct = std::collections::BTreeSet::new();
        for e in 0..50 {
            let f = m.factor(e as f64 * 100.0 + 1.0);
            assert!((0.5..=1.0).contains(&f));
            distinct.insert((f * 1e9) as u64);
        }
        assert!(distinct.len() > 10, "epochs should vary");
    }

    #[test]
    fn model_validation_rejects_nonsense() {
        assert!(LoadModel::Constant(0.0).validate().is_err());
        assert!(LoadModel::Constant(1.5).validate().is_err());
        assert!(LoadModel::Sinusoid {
            period_ms: 0.0,
            amplitude: 0.2,
            phase_ms: 0.0
        }
        .validate()
        .is_err());
        assert!(LoadModel::Sinusoid {
            period_ms: 10.0,
            amplitude: 1.0,
            phase_ms: 0.0
        }
        .validate()
        .is_err());
        assert!(LoadModel::RandomEpochs {
            epoch_ms: 10.0,
            floor: 0.0,
            seed: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn steady_snapshot_equals_base() {
        let dyn_net = DynamicNetwork::steady(base());
        let snap = dyn_net.snapshot_at(12345.0);
        assert_eq!(snap.power(NodeId(0)), 100.0);
        assert_eq!(snap.link(EdgeId(0)).unwrap().bw_mbps, 1000.0);
    }

    #[test]
    fn snapshot_scales_power_and_bandwidth_but_not_mld() {
        let dyn_net = DynamicNetwork::new(
            base(),
            vec![LoadModel::Constant(0.5), LoadModel::Constant(1.0)],
            vec![LoadModel::Constant(0.25)],
        )
        .unwrap();
        let snap = dyn_net.snapshot_at(0.0);
        assert_eq!(snap.power(NodeId(0)), 50.0);
        assert_eq!(snap.power(NodeId(1)), 200.0);
        let l = snap.link(EdgeId(0)).unwrap();
        assert_eq!(l.bw_mbps, 250.0);
        assert_eq!(l.mld_ms, 1.0); // MLD untouched
                                   // both directions scaled
        assert_eq!(snap.link(EdgeId(1)).unwrap().bw_mbps, 250.0);
    }

    #[test]
    fn mismatched_model_counts_are_rejected() {
        assert!(DynamicNetwork::new(base(), vec![], vec![LoadModel::Constant(1.0)]).is_err());
        assert!(DynamicNetwork::new(base(), vec![LoadModel::Constant(1.0); 2], vec![]).is_err());
    }

    #[test]
    fn changes_between_skips_static_models() {
        // two nodes, one link; only node 1 actually varies
        let dyn_net = DynamicNetwork::new(
            base(),
            vec![
                LoadModel::Constant(0.7), // constant ≠ 1.0 is still static
                LoadModel::Sinusoid {
                    period_ms: 1000.0,
                    amplitude: 0.5,
                    phase_ms: 0.0,
                },
            ],
            vec![LoadModel::Sinusoid {
                period_ms: 1000.0,
                amplitude: 0.0, // zero amplitude: degenerate static
                phase_ms: 0.0,
            }],
        )
        .unwrap();
        let changes = dyn_net.changes_between(0.0, 250.0);
        assert_eq!(changes.nodes, vec![NodeId(1)]);
        assert!(changes.links.is_empty());
        assert!(!changes.is_empty());
    }

    #[test]
    fn changes_between_respects_model_periodicity() {
        let dyn_net = DynamicNetwork::new(
            base(),
            vec![LoadModel::Constant(1.0); 2],
            vec![LoadModel::RandomEpochs {
                epoch_ms: 100.0,
                floor: 0.5,
                seed: 42,
            }],
        )
        .unwrap();
        // same epoch: the factor is identical, so nothing changed
        assert!(dyn_net.changes_between(10.0, 90.0).is_empty());
        // crossing an epoch boundary perturbs the link (even edge id)
        let crossed = dyn_net.changes_between(10.0, 110.0);
        assert_eq!(crossed.links, vec![EdgeId(0)]);
        assert!(crossed.nodes.is_empty());
    }

    #[test]
    fn changes_between_agrees_with_snapshot_diffs() {
        let dyn_net = DynamicNetwork::new(
            base(),
            vec![
                LoadModel::RandomEpochs {
                    epoch_ms: 50.0,
                    floor: 0.6,
                    seed: 7,
                },
                LoadModel::Constant(0.9),
            ],
            vec![LoadModel::Sinusoid {
                period_ms: 300.0,
                amplitude: 0.3,
                phase_ms: 10.0,
            }],
        )
        .unwrap();
        for (t0, t1) in [(0.0, 0.0), (0.0, 75.0), (20.0, 620.0), (5.0, 305.0)] {
            let (s0, s1) = (dyn_net.snapshot_at(t0), dyn_net.snapshot_at(t1));
            let changes = dyn_net.changes_between(t0, t1);
            for i in 0..s0.node_count() {
                let id = NodeId::from_index(i);
                let differs = s0.power(id).to_bits() != s1.power(id).to_bits();
                assert_eq!(
                    changes.nodes.contains(&id),
                    differs,
                    "node {i} at ({t0},{t1})"
                );
            }
            for k in 0..dyn_net.base().link_count() {
                let id = EdgeId((2 * k) as u32);
                let differs = s0.link(id).unwrap().bw_mbps.to_bits()
                    != s1.link(id).unwrap().bw_mbps.to_bits();
                assert_eq!(
                    changes.links.contains(&id),
                    differs,
                    "link {k} at ({t0},{t1})"
                );
            }
        }
    }

    #[test]
    fn snapshots_preserve_base_across_calls() {
        let dyn_net = DynamicNetwork::new(
            base(),
            vec![LoadModel::Constant(0.5); 2],
            vec![LoadModel::Constant(0.5)],
        )
        .unwrap();
        let _ = dyn_net.snapshot_at(0.0);
        let _ = dyn_net.snapshot_at(100.0);
        // base unchanged: scaling never compounds
        assert_eq!(dyn_net.base().power(NodeId(0)), 100.0);
        let snap = dyn_net.snapshot_at(200.0);
        assert_eq!(snap.power(NodeId(0)), 50.0);
    }
}
