//! # elpc-netsim — network resource model for the ELPC reproduction
//!
//! Models the *transport networks* of the paper (§2.2, §4.1): geographically
//! distributed computing nodes joined by communication links.
//!
//! * [`Node`] carries the paper's node attributes — `NodeID`, `NodeIP`,
//!   `ProcessingPower` (a normalized scalar `p`).
//! * [`Link`] carries the link attributes — `LinkID` (the graph edge id),
//!   `LinkBWInMbps` (bandwidth `b`) and `LinkDelayInMilliseconds` (minimum
//!   link delay `d`, MLD).
//! * [`Network`] wraps an [`elpc_netgraph::Graph`] of those payloads and
//!   provides the two primitive cost quantities of §2.2:
//!   `T_transport(m, L) = m/b + d` ([`Link::transfer_time_ms`]) and the
//!   per-node compute rate used in `T_computing = m·c / p`.
//! * [`measure`] simulates the active-probing estimator of Wu & Rao \[14\]:
//!   linear regression over (message size, transfer time) samples recovers
//!   `(b, d)` — the substitution for the paper's real WAN probes (see
//!   DESIGN.md §4).
//! * [`dynamics`] models the time-varying resource availability that §5
//!   flags as future work; it drives the adaptive-remapping extension.
//! * [`faults`] injects *failures* on top: seeded, reproducible crash /
//!   cut / degrade schedules whose removals are cost-space sentinels
//!   (`bw = 0`, `power = 0`) rather than graph surgery, so edge ids stay
//!   stable for incremental closure repair.
//! * [`mod@format`] reads/writes a plain-text network description matching the
//!   paper's parameter tables, and serde/JSON works on all model types.
//!
//! ## Units
//!
//! Consistency matters more than any particular choice, so the whole stack
//! standardizes on the paper's reporting units:
//!
//! | quantity          | unit                       |
//! |-------------------|----------------------------|
//! | data size         | bytes                      |
//! | bandwidth         | Mbit/s (`LinkBWInMbps`)    |
//! | delay / time      | milliseconds               |
//! | processing power  | complexity·bytes per ms    |
//!
//! `transfer_time_ms(bytes) = bytes·8/1000/bw_mbps + mld_ms` (see
//! [`units`]). A node of power `p` finishes a module of complexity `c` on
//! `m` input bytes in `c·m/p` ms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod error;
pub mod faults;
pub mod format;
pub mod measure;
mod model;
pub mod units;

pub use error::NetworkError;
pub use model::{Link, Network, NetworkBuilder, Node};

// Re-export the ids so downstream crates don't need a direct netgraph dep
// for casual use.
pub use elpc_netgraph::{EdgeId, NodeId};

/// Result alias for network-model operations.
pub type Result<T> = std::result::Result<T, NetworkError>;
