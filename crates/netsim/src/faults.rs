//! Seeded fault injection over [`Network`] /
//! [`DynamicNetwork`](crate::dynamics::DynamicNetwork) snapshots.
//!
//! The paper assumes a healthy network; this module models the unhealthy
//! one. A [`FaultSchedule`] is a reproducible, seed-generated sequence of
//! [`FaultEvent`]s — node crashes, link cuts, and link degradations, each
//! either permanent or transient (a *flap* that restores itself) — laid out
//! on a time horizon. Applying the schedule at a time `t` produces the
//! degraded network an adaptive mapper actually faces at `t`.
//!
//! Failures are *removals in cost space, not in the graph*: a cut link
//! keeps its edge ids but carries the `bw = 0` sentinel
//! ([`Link::is_failed`](crate::model::Link::is_failed))
//! so every transfer over it prices at `+∞`; a crashed node additionally
//! zeroes its power ([`Network::fail_node`]). Stable indices are what make
//! repaired metric closures byte-comparable to cold builds on the degraded
//! network — the whole point of the differential fault suite.
//!
//! Generation is *connectivity-aware*: the caller lists protected nodes
//! (typically every pipeline's source and destination), and the generator
//! only accepts a crash/cut if the protected set stays mutually reachable
//! over healthy elements even when **all** accepted removals are active at
//! once (the worst-case overlap). Degradations are always safe — their
//! factor is bounded away from zero.

use crate::dynamics::ChangeSet;
use crate::model::Network;
use crate::Result;
use elpc_netgraph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// What a single fault does to the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node's power drops to the failure sentinel and every incident
    /// link is cut in both directions (a dead host neither computes nor
    /// forwards).
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// The undirected link (given by its even, representative edge id) is
    /// cut in both directions.
    LinkCut {
        /// Representative (even) edge id of the undirected link.
        link: EdgeId,
    },
    /// The undirected link keeps working but its bandwidth is multiplied by
    /// `factor` (in `(0, 1)`), modelling congestion or a flaky NIC.
    LinkDegrade {
        /// Representative (even) edge id of the undirected link.
        link: EdgeId,
        /// Bandwidth multiplier in `(0, 1)`.
        factor: f64,
    },
}

/// One scheduled fault: a kind plus its active window `[start_ms, end_ms)`.
/// Permanent faults have `end_ms = +∞`; transient ones (flaps) restore
/// themselves when the window closes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// When it starts (ms on the schedule's clock).
    pub start_ms: f64,
    /// When it heals (`+∞` = never).
    pub end_ms: f64,
}

impl FaultEvent {
    /// True when the fault is in effect at time `t_ms`.
    #[inline]
    pub fn active_at(&self, t_ms: f64) -> bool {
        self.start_ms <= t_ms && t_ms < self.end_ms
    }

    /// True for flaps — faults that restore themselves.
    #[inline]
    pub fn is_transient(&self) -> bool {
        self.end_ms.is_finite()
    }
}

/// Knobs for [`FaultSchedule::generate`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// How many events to draw (accepted events may be fewer if
    /// connectivity constraints reject too many candidates).
    pub events: usize,
    /// Time horizon: start times are drawn uniformly in `[0, horizon_ms)`.
    pub horizon_ms: f64,
    /// Relative draw weight of node crashes.
    pub crash_weight: u32,
    /// Relative draw weight of link cuts.
    pub cut_weight: u32,
    /// Relative draw weight of link degradations.
    pub degrade_weight: u32,
    /// Fraction of events that are transient flaps (restore themselves).
    pub transient_fraction: f64,
    /// Minimum flap duration in ms.
    pub min_duration_ms: f64,
    /// Maximum flap duration in ms.
    pub max_duration_ms: f64,
    /// Degradation factors are drawn uniformly in `[degrade_floor, 1)`.
    pub degrade_floor: f64,
    /// Nodes that must never crash and must stay mutually reachable over
    /// healthy elements even with every accepted removal active at once.
    /// List every pipeline's source and destination here.
    pub protect: Vec<NodeId>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            events: 8,
            horizon_ms: 10_000.0,
            crash_weight: 1,
            cut_weight: 2,
            degrade_weight: 1,
            transient_fraction: 0.5,
            min_duration_ms: 500.0,
            max_duration_ms: 3_000.0,
            degrade_floor: 0.1,
            protect: Vec::new(),
        }
    }
}

/// A reproducible sequence of faults over a network. Same base network,
/// config, and seed ⇒ bit-identical schedule, on any machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// SplitMix64 — tiny, deterministic, and good enough for drawing fault
/// targets; keeping it local avoids coupling schedule reproducibility to
/// any external RNG crate's stream layout.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Marks, for every node, whether it is reachable from `start` over healthy
/// elements only (links with positive bandwidth, nodes with positive
/// power). This is the *cost-space* connectivity a mapper sees — the
/// structural [`Network::is_connected`] ignores failure sentinels.
pub fn healthy_component(net: &Network, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; net.node_count()];
    if net.node_is_failed(start) {
        return seen;
    }
    seen[start.index()] = true;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for nb in net.neighbors(u) {
            let dead_link = net.link(nb.edge).map(|l| l.is_failed()).unwrap_or(true);
            if dead_link || seen[nb.node.index()] || net.node_is_failed(nb.node) {
                continue;
            }
            seen[nb.node.index()] = true;
            queue.push_back(nb.node);
        }
    }
    seen
}

fn protected_still_connected(net: &Network, protect: &[NodeId]) -> bool {
    match protect.first() {
        None => true,
        Some(&start) => {
            let seen = healthy_component(net, start);
            protect.iter().all(|p| seen[p.index()])
        }
    }
}

impl FaultSchedule {
    /// Builds a schedule from an explicit event list (for hand-crafted
    /// scenarios and tests).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultSchedule { events }
    }

    /// Draws a reproducible schedule of `cfg.events` faults against `base`.
    ///
    /// Each removal candidate (crash or cut) is checked against the
    /// worst-case network in which every previously accepted removal is
    /// active; candidates that would disconnect the protected set are
    /// redrawn (a bounded number of times, then skipped), so an accepted
    /// schedule can never strand a protected endpoint no matter how the
    /// active windows overlap.
    pub fn generate(base: &Network, cfg: &FaultConfig, seed: u64) -> Result<FaultSchedule> {
        let mut rng = SplitMix64(seed);
        let protected: BTreeSet<u32> = cfg.protect.iter().map(|n| n.0).collect();
        let total_w = u64::from(cfg.crash_weight + cfg.cut_weight + cfg.degrade_weight).max(1);
        // worst case: every accepted removal active at once
        let mut worst = base.clone();
        let mut events = Vec::with_capacity(cfg.events);
        for _ in 0..cfg.events {
            let mut accepted = None;
            for _attempt in 0..16 {
                let w = rng.below(total_w);
                let kind = if w < u64::from(cfg.crash_weight) {
                    let node = NodeId(rng.below(base.node_count() as u64) as u32);
                    if protected.contains(&node.0) || worst.node_is_failed(node) {
                        continue;
                    }
                    FaultKind::NodeCrash { node }
                } else if w < u64::from(cfg.crash_weight + cfg.cut_weight) {
                    let link = EdgeId(2 * rng.below(base.link_count() as u64) as u32);
                    if worst.link(link)?.is_failed() {
                        continue;
                    }
                    FaultKind::LinkCut { link }
                } else {
                    let link = EdgeId(2 * rng.below(base.link_count() as u64) as u32);
                    let factor = cfg.degrade_floor + rng.unit() * (1.0 - cfg.degrade_floor);
                    FaultKind::LinkDegrade { link, factor }
                };
                // removals must keep the protected set connected in the
                // worst-case overlap; degradations are always safe
                let mut trial = worst.clone();
                match &kind {
                    FaultKind::NodeCrash { node } => {
                        trial.fail_node(*node)?;
                    }
                    FaultKind::LinkCut { link } => {
                        trial.fail_link_symmetric(*link)?;
                    }
                    FaultKind::LinkDegrade { .. } => {}
                }
                if !protected_still_connected(&trial, &cfg.protect) {
                    continue;
                }
                worst = trial;
                accepted = Some(kind);
                break;
            }
            let Some(kind) = accepted else { continue };
            let start_ms = rng.unit() * cfg.horizon_ms;
            let end_ms = if rng.unit() < cfg.transient_fraction {
                let span = (cfg.max_duration_ms - cfg.min_duration_ms).max(0.0);
                start_ms + cfg.min_duration_ms + rng.unit() * span
            } else {
                f64::INFINITY
            };
            events.push(FaultEvent {
                kind,
                start_ms,
                end_ms,
            });
        }
        Ok(FaultSchedule { events })
    }

    /// The scheduled events, in draw order (the order they are applied in).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events in effect at `t_ms`.
    pub fn active_at(&self, t_ms: f64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.active_at(t_ms))
    }

    /// The degraded network at time `t_ms`: a clone of `base` (typically a
    /// [`DynamicNetwork::snapshot_at`] for the same instant) with every
    /// active fault applied in schedule order. Healed flaps leave no trace —
    /// the result is always recomputed from `base`.
    ///
    /// [`DynamicNetwork::snapshot_at`]: crate::dynamics::DynamicNetwork::snapshot_at
    pub fn apply_at(&self, base: &Network, t_ms: f64) -> Result<Network> {
        let mut net = base.clone();
        for ev in self.active_at(t_ms) {
            match &ev.kind {
                FaultKind::NodeCrash { node } => {
                    net.fail_node(*node)?;
                }
                FaultKind::LinkCut { link } => {
                    net.fail_link_symmetric(*link)?;
                }
                FaultKind::LinkDegrade { link, factor } => {
                    let old = net.link(*link)?.clone();
                    let degraded = crate::model::Link::new(old.bw_mbps * factor, old.mld_ms);
                    net.set_link_symmetric(*link, degraded)?;
                }
            }
        }
        Ok(net)
    }

    /// Every element whose fault status flips between `t0_ms` and `t1_ms`:
    /// crashed/restored nodes (plus their incident links, which the crash
    /// fails as a side effect) and cut/degraded/restored links. Reported as
    /// a [`ChangeSet`] of representative (even) edge ids, deduplicated and
    /// sorted — over-reporting an element that ends up bit-identical is
    /// harmless to delta builders, under-reporting is not.
    pub fn changed_elements_between(&self, base: &Network, t0_ms: f64, t1_ms: f64) -> ChangeSet {
        let mut nodes = BTreeSet::new();
        let mut links = BTreeSet::new();
        for ev in &self.events {
            if ev.active_at(t0_ms) == ev.active_at(t1_ms) {
                continue;
            }
            match &ev.kind {
                FaultKind::NodeCrash { node } => {
                    nodes.insert(node.0);
                    for nb in base.neighbors(*node) {
                        links.insert(nb.edge.0 & !1);
                    }
                }
                FaultKind::LinkCut { link } | FaultKind::LinkDegrade { link, .. } => {
                    links.insert(link.0 & !1);
                }
            }
        }
        ChangeSet {
            nodes: nodes.into_iter().map(NodeId).collect(),
            links: links.into_iter().map(EdgeId).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Link;

    /// 6-node ring: enough redundancy that any single cut never
    /// disconnects anything.
    fn ring6() -> Network {
        let topo = elpc_netgraph::gen::ring(6).unwrap();
        Network::from_topology(
            &topo,
            |i| crate::model::Node::with_power(100.0 * (i + 1) as f64),
            |a, b| Link::new(50.0 + (a + b) as f64, 0.5),
        )
        .unwrap()
    }

    fn cfg() -> FaultConfig {
        FaultConfig {
            events: 12,
            horizon_ms: 1_000.0,
            protect: vec![NodeId(0), NodeId(3)],
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let net = ring6();
        let a = FaultSchedule::generate(&net, &cfg(), 42).unwrap();
        let b = FaultSchedule::generate(&net, &cfg(), 42).unwrap();
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&net, &cfg(), 43).unwrap();
        assert_ne!(a, c, "different seed should draw a different schedule");
        assert!(!a.events().is_empty());
    }

    #[test]
    fn protected_nodes_never_crash_and_stay_reachable() {
        let net = ring6();
        for seed in 0..20u64 {
            let sched = FaultSchedule::generate(&net, &cfg(), seed).unwrap();
            for ev in sched.events() {
                if let FaultKind::NodeCrash { node } = ev.kind {
                    assert!(node != NodeId(0) && node != NodeId(3));
                }
            }
            // worst case: every event active at once
            let mut worst = net.clone();
            for ev in sched.events() {
                worst = FaultSchedule::from_events(vec![FaultEvent {
                    kind: ev.kind.clone(),
                    start_ms: 0.0,
                    end_ms: f64::INFINITY,
                }])
                .apply_at(&worst, 0.0)
                .unwrap();
            }
            let seen = healthy_component(&worst, NodeId(0));
            assert!(seen[3], "seed {seed}: protected pair disconnected");
        }
    }

    #[test]
    fn flaps_heal_without_a_trace() {
        let net = ring6();
        let sched = FaultSchedule::from_events(vec![
            FaultEvent {
                kind: FaultKind::LinkCut { link: EdgeId(0) },
                start_ms: 10.0,
                end_ms: 20.0,
            },
            FaultEvent {
                kind: FaultKind::NodeCrash { node: NodeId(2) },
                start_ms: 15.0,
                end_ms: 25.0,
            },
        ]);
        let during = sched.apply_at(&net, 16.0).unwrap();
        assert!(during.link(EdgeId(0)).unwrap().is_failed());
        assert!(during.node_is_failed(NodeId(2)));
        let after = sched.apply_at(&net, 30.0).unwrap();
        assert_eq!(after.fingerprint(), net.fingerprint());
    }

    #[test]
    fn degrade_scales_bandwidth_in_both_directions() {
        let net = ring6();
        let before = net.link(EdgeId(4)).unwrap().bw_mbps;
        let sched = FaultSchedule::from_events(vec![FaultEvent {
            kind: FaultKind::LinkDegrade {
                link: EdgeId(4),
                factor: 0.25,
            },
            start_ms: 0.0,
            end_ms: f64::INFINITY,
        }]);
        let out = sched.apply_at(&net, 5.0).unwrap();
        assert_eq!(out.link(EdgeId(4)).unwrap().bw_mbps, before * 0.25);
        assert_eq!(out.link(EdgeId(5)).unwrap().bw_mbps, before * 0.25);
    }

    #[test]
    fn changed_elements_cover_crash_side_effects() {
        let net = ring6();
        let sched = FaultSchedule::from_events(vec![FaultEvent {
            kind: FaultKind::NodeCrash { node: NodeId(1) },
            start_ms: 10.0,
            end_ms: 20.0,
        }]);
        // flip on
        let on = sched.changed_elements_between(&net, 0.0, 15.0);
        assert_eq!(on.nodes, vec![NodeId(1)]);
        assert_eq!(on.links.len(), 2, "both incident ring links reported");
        // no flip inside the window
        assert!(sched.changed_elements_between(&net, 12.0, 18.0).is_empty());
        // flip off (restore)
        let off = sched.changed_elements_between(&net, 15.0, 30.0);
        assert_eq!(off.nodes, vec![NodeId(1)]);
    }
}
