//! Active link measurement via linear regression (Wu & Rao \[14\]).
//!
//! §1/§2.2 of the paper: "the bandwidth of a network transport path can be
//! measured using active traffic measurement technique based on a linear
//! regression model". The authors probed real WAN paths; we do not have a
//! WAN, so — per the substitution rule in DESIGN.md §4 — [`ProbePlan::run`]
//! *simulates* the probes against a ground-truth [`Link`] with configurable
//! noise, and [`fit_link`] recovers `(b, d)` by ordinary least squares on
//! `t = m·8/1e3/b + d`. The estimator code path is identical to what would
//! run against real measurements.

use crate::units::{BITS_PER_BYTE, BITS_PER_MEGABIT, MS_PER_S};
use crate::{Link, NetworkError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard-normal sample via Box–Muller (keeps us inside the `rand`
/// allowlist; `rand_distr` would be an extra dependency for one function).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// One probe observation: message size and measured transfer time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// Probe message size in bytes.
    pub bytes: f64,
    /// Observed transfer time in milliseconds.
    pub time_ms: f64,
}

/// Result of fitting the linear model `time = bytes/bandwidth + mld`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimate {
    /// Estimated bandwidth in Mbit/s.
    pub bw_mbps: f64,
    /// Estimated minimum link delay in ms.
    pub mld_ms: f64,
    /// Coefficient of determination of the fit (1.0 = perfect).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl LinkEstimate {
    /// Converts the estimate into a [`Link`] for use in mapping.
    ///
    /// Negative intercepts (possible under heavy noise) are clamped to zero
    /// since MLD is physically non-negative.
    pub fn to_link(&self) -> Link {
        Link::new(self.bw_mbps, self.mld_ms.max(0.0))
    }
}

/// A probe schedule: which sizes to send and how many repeats per size,
/// with multiplicative Gaussian noise emulating cross traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbePlan {
    /// Probe sizes in bytes (must be non-empty, spanning small → large for a
    /// well-conditioned regression).
    pub sizes: Vec<f64>,
    /// Repeats per size.
    pub repeats: usize,
    /// Standard deviation of the noise as a fraction of the true time
    /// (0.05 = 5% jitter).
    pub noise_frac: f64,
}

impl Default for ProbePlan {
    fn default() -> Self {
        // sizes from one MTU to 1 MB, log-spaced — the [14] daemon's regime
        ProbePlan {
            sizes: vec![1.5e3, 1e4, 5e4, 1e5, 5e5, 1e6],
            repeats: 5,
            noise_frac: 0.02,
        }
    }
}

impl ProbePlan {
    /// Simulates the probes against ground truth `link`, returning samples.
    pub fn run<R: Rng>(&self, link: &Link, rng: &mut R) -> Result<Vec<ProbeSample>> {
        if self.sizes.is_empty() || self.repeats == 0 {
            return Err(NetworkError::Invalid(
                "probe plan needs at least one size and one repeat".into(),
            ));
        }
        if !(self.noise_frac >= 0.0) {
            return Err(NetworkError::Invalid(format!(
                "noise fraction must be non-negative, got {}",
                self.noise_frac
            )));
        }
        let mut out = Vec::with_capacity(self.sizes.len() * self.repeats);
        for &bytes in &self.sizes {
            let truth = link.transfer_time_ms(bytes);
            for _ in 0..self.repeats {
                let noise = if self.noise_frac > 0.0 {
                    self.noise_frac * standard_normal(rng)
                } else {
                    0.0
                };
                // noise is multiplicative and cannot push time below zero
                let t = (truth * (1.0 + noise)).max(0.0);
                out.push(ProbeSample { bytes, time_ms: t });
            }
        }
        Ok(out)
    }
}

/// Ordinary least squares on `time_ms = slope·bytes + intercept`, converted
/// to `(bandwidth, MLD)`.
///
/// Needs at least two distinct sizes; returns an error otherwise, or when
/// the fitted slope is non-positive (noise swamped the signal).
pub fn fit_link(samples: &[ProbeSample]) -> Result<LinkEstimate> {
    let n = samples.len();
    if n < 2 {
        return Err(NetworkError::Invalid(format!(
            "need at least 2 probe samples, got {n}"
        )));
    }
    let nf = n as f64;
    let mean_x = samples.iter().map(|s| s.bytes).sum::<f64>() / nf;
    let mean_y = samples.iter().map(|s| s.time_ms).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for s in samples {
        let dx = s.bytes - mean_x;
        let dy = s.time_ms - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(NetworkError::Invalid(
            "probe sizes are all identical; slope is undefined".into(),
        ));
    }
    let slope = sxy / sxx; // ms per byte
    let intercept = mean_y - slope * mean_x;
    if slope <= 0.0 {
        return Err(NetworkError::Invalid(format!(
            "non-positive fitted slope {slope}; increase probe sizes or repeats"
        )));
    }
    // slope [ms/byte] → bandwidth [Mbit/s]
    let bw_mbps = BITS_PER_BYTE / BITS_PER_MEGABIT / (slope / MS_PER_S);
    let r_squared = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0 // all times equal: degenerate but a perfect horizontal fit
    };
    Ok(LinkEstimate {
        bw_mbps,
        mld_ms: intercept,
        r_squared,
        samples: n,
    })
}

/// Convenience: probe a link and fit in one step, as the \[14\] daemon does.
pub fn estimate_link<R: Rng>(link: &Link, plan: &ProbePlan, rng: &mut R) -> Result<LinkEstimate> {
    fit_link(&plan.run(link, rng)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn noiseless_probes_recover_exact_parameters() {
        let link = Link::new(100.0, 2.5);
        let plan = ProbePlan {
            noise_frac: 0.0,
            ..ProbePlan::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = estimate_link(&link, &plan, &mut rng).unwrap();
        assert!((est.bw_mbps - 100.0).abs() < 1e-9, "bw {}", est.bw_mbps);
        assert!((est.mld_ms - 2.5).abs() < 1e-9, "mld {}", est.mld_ms);
        assert!((est.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_probes_recover_parameters_approximately() {
        let link = Link::new(622.0, 12.0); // OC-12-like WAN path
        let plan = ProbePlan {
            repeats: 40,
            noise_frac: 0.05,
            ..ProbePlan::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let est = estimate_link(&link, &plan, &mut rng).unwrap();
        assert!(
            (est.bw_mbps - 622.0).abs() / 622.0 < 0.10,
            "bw estimate {} too far from 622",
            est.bw_mbps
        );
        assert!(
            (est.mld_ms - 12.0).abs() < 3.0,
            "mld estimate {} too far from 12",
            est.mld_ms
        );
        assert!(est.r_squared > 0.9);
    }

    #[test]
    fn more_repeats_reduce_estimation_error_on_average() {
        let link = Link::new(100.0, 5.0);
        let err_of = |repeats: usize, seed: u64| {
            let plan = ProbePlan {
                repeats,
                noise_frac: 0.1,
                ..ProbePlan::default()
            };
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let est = estimate_link(&link, &plan, &mut rng).unwrap();
            (est.bw_mbps - 100.0).abs() / 100.0
        };
        let few: f64 = (0..20).map(|s| err_of(3, s)).sum::<f64>() / 20.0;
        let many: f64 = (0..20).map(|s| err_of(60, s)).sum::<f64>() / 20.0;
        assert!(
            many < few,
            "60-repeat error {many} should beat 3-repeat error {few}"
        );
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(fit_link(&[]).is_err());
        assert!(fit_link(&[ProbeSample {
            bytes: 10.0,
            time_ms: 1.0
        }])
        .is_err());
        // identical sizes → undefined slope
        let same = vec![
            ProbeSample {
                bytes: 10.0,
                time_ms: 1.0,
            },
            ProbeSample {
                bytes: 10.0,
                time_ms: 2.0,
            },
        ];
        assert!(fit_link(&same).is_err());
        // decreasing time with size → negative slope
        let bad = vec![
            ProbeSample {
                bytes: 10.0,
                time_ms: 5.0,
            },
            ProbeSample {
                bytes: 1000.0,
                time_ms: 1.0,
            },
        ];
        assert!(fit_link(&bad).is_err());
    }

    #[test]
    fn plan_validation() {
        let link = Link::new(10.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let empty = ProbePlan {
            sizes: vec![],
            ..ProbePlan::default()
        };
        assert!(empty.run(&link, &mut rng).is_err());
        let zero_rep = ProbePlan {
            repeats: 0,
            ..ProbePlan::default()
        };
        assert!(zero_rep.run(&link, &mut rng).is_err());
        let neg_noise = ProbePlan {
            noise_frac: -0.1,
            ..ProbePlan::default()
        };
        assert!(neg_noise.run(&link, &mut rng).is_err());
    }

    #[test]
    fn estimate_to_link_clamps_negative_mld() {
        let est = LinkEstimate {
            bw_mbps: 10.0,
            mld_ms: -0.3,
            r_squared: 0.8,
            samples: 12,
        };
        assert_eq!(est.to_link().mld_ms, 0.0);
        assert_eq!(est.to_link().bw_mbps, 10.0);
    }

    #[test]
    fn probing_is_deterministic_per_seed() {
        let link = Link::new(155.0, 3.0);
        let plan = ProbePlan::default();
        let a = plan.run(&link, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = plan.run(&link, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_count_is_sizes_times_repeats() {
        let link = Link::new(10.0, 0.5);
        let plan = ProbePlan {
            sizes: vec![1e3, 1e4, 1e5],
            repeats: 7,
            noise_frac: 0.01,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(plan.run(&link, &mut rng).unwrap().len(), 21);
    }
}
