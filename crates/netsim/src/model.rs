//! Node / link / network model (§2.2 of the paper).

use crate::units::{compute_ms, serialization_ms};
use crate::{NetworkError, Result};
use elpc_netgraph::{algo, EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A computing node: the paper's `NodeID` is the graph id; `ProcessingPower`
/// is the normalized scalar `p` of §2.2 ("a complex notion that combines …
/// processor frequency, bus speed, memory size, storage performance").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Normalized processing power `p` (complexity·bytes per ms). Must be
    /// positive for a compute-capable node.
    pub power: f64,
    /// Optional `NodeIP` (the paper carries one per node; purely
    /// informational here).
    pub ip: Option<String>,
    /// Optional human-readable name for reports and DOT output.
    pub name: Option<String>,
}

impl Node {
    /// A node with power `p` and no metadata.
    pub fn with_power(power: f64) -> Self {
        Node {
            power,
            ip: None,
            name: None,
        }
    }
}

/// A communication link: the paper's `LinkBWInMbps` (bandwidth `b`) and
/// `LinkDelayInMilliseconds` (minimum link delay `d`). `LinkID` is the graph
/// edge id; `startNodeID`/`endNodeID` are the edge endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Bandwidth in Mbit/s.
    pub bw_mbps: f64,
    /// Minimum link delay (MLD) in milliseconds.
    pub mld_ms: f64,
}

impl Link {
    /// A link with the given bandwidth and MLD.
    pub fn new(bw_mbps: f64, mld_ms: f64) -> Self {
        Link { bw_mbps, mld_ms }
    }

    /// Full transport time `m/b + d` of §2.2, in ms, for `bytes` of data.
    #[inline]
    pub fn transfer_time_ms(&self, bytes: f64) -> f64 {
        serialization_ms(bytes, self.bw_mbps) + self.mld_ms
    }

    /// Transport time without the MLD term — what Eq. 1/3/4 literally use
    /// (see DESIGN.md erratum 1). Exposed so the cost model can toggle.
    #[inline]
    pub fn serialization_time_ms(&self, bytes: f64) -> f64 {
        serialization_ms(bytes, self.bw_mbps)
    }

    /// True when this link carries the *failure sentinel*: bandwidth exactly
    /// `0.0`. A failed link keeps its place in the graph (edge ids stay
    /// stable, which is what keeps repaired closures byte-comparable to cold
    /// builds) but every transfer over it costs `+∞`, so no shortest-path
    /// tree ever uses it.
    #[inline]
    pub fn is_failed(&self) -> bool {
        self.bw_mbps == 0.0
    }
}

/// The transport network `G = (V, E)`: a wrapper around
/// [`elpc_netgraph::Graph`] with node powers and link parameters, plus the
/// primitive cost queries every mapping algorithm uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    graph: Graph<Node, Link>,
    /// Number of undirected links (each stored as two directed edges).
    links: usize,
}

impl Network {
    /// Starts an empty builder.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Materializes a network from a topology skeleton, asking the closures
    /// for each node's and link's parameters.
    pub fn from_topology(
        topo: &elpc_netgraph::gen::Topology,
        mut node_fn: impl FnMut(usize) -> Node,
        mut link_fn: impl FnMut(u32, u32) -> Link,
    ) -> Result<Network> {
        let mut b = Network::builder();
        for i in 0..topo.node_count() {
            b.push_node(node_fn(i))?;
        }
        for &(x, y) in topo.links() {
            b.add_link_payload(NodeId(x), NodeId(y), link_fn(x, y))?;
        }
        b.build()
    }

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &Graph<Node, Link> {
        &self.graph
    }

    /// Number of computing nodes `k`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of undirected links `l` (the paper's "number of links").
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Processing power of `node`.
    ///
    /// # Panics
    /// Panics on an out-of-bounds id — mapping algorithms only hold valid
    /// ids by construction.
    #[inline]
    pub fn power(&self, node: NodeId) -> f64 {
        self.graph.node(node).expect("valid node id").power
    }

    /// The node payload.
    pub fn node(&self, node: NodeId) -> Result<&Node> {
        Ok(self.graph.node(node)?)
    }

    /// The link payload of a directed edge.
    pub fn link(&self, edge: EdgeId) -> Result<&Link> {
        Ok(&self.graph.edge(edge)?.payload)
    }

    /// Compute time of a module (complexity `c`, input `bytes`) on `node`:
    /// `c·m/p` (§2.2).
    #[inline]
    pub fn compute_time_ms(&self, node: NodeId, complexity: f64, bytes: f64) -> f64 {
        compute_ms(complexity, bytes, self.power(node))
    }

    /// Transfer time of `bytes` over the directed edge `edge`, including MLD.
    #[inline]
    pub fn transfer_time_ms(&self, edge: EdgeId, bytes: f64) -> f64 {
        self.graph
            .edge(edge)
            .expect("valid edge id")
            .payload
            .transfer_time_ms(bytes)
    }

    /// The fastest directed edge from `a` to `b` for a message of `bytes`
    /// (relevant with parallel links), or `None` when not adjacent.
    pub fn best_edge(&self, a: NodeId, b: NodeId, bytes: f64) -> Option<(EdgeId, f64)> {
        self.graph
            .neighbors(a)
            .filter(|nb| nb.node == b)
            .map(|nb| (nb.edge, self.transfer_time_ms(nb.edge, bytes)))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("times are not NaN"))
    }

    /// All out-neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = elpc_netgraph::Neighbor> + '_ {
        self.graph.neighbors(node)
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + Clone {
        self.graph.node_ids()
    }

    /// True when every node can reach every other (required for mapping).
    pub fn is_connected(&self) -> bool {
        algo::is_connected(&self.graph)
    }

    /// Structural validation: non-negative powers and bandwidths (exact
    /// `0.0` is the failure sentinel — see [`Link::is_failed`] and
    /// [`Network::fail_node`]), non-negative MLDs, non-empty, connected.
    ///
    /// The builder stays strict (it rejects zero powers and bandwidths), so
    /// a failed element can only arise by degrading a once-valid network —
    /// exactly the semantics of a fault.
    pub fn validate(&self) -> Result<()> {
        if self.graph.is_empty() {
            return Err(NetworkError::Invalid("network has no nodes".into()));
        }
        for (id, n) in self.graph.nodes() {
            if !(n.power >= 0.0) || !n.power.is_finite() {
                return Err(NetworkError::BadNodeParameter {
                    node: id,
                    reason: format!(
                        "power must be positive and finite (or exactly 0 = failed), got {}",
                        n.power
                    ),
                });
            }
        }
        for (_, e) in self.graph.edges() {
            if !(e.payload.bw_mbps >= 0.0) || !e.payload.bw_mbps.is_finite() {
                return Err(NetworkError::BadLinkParameter {
                    endpoints: (e.src, e.dst),
                    reason: format!(
                        "bandwidth must be positive and finite (or exactly 0 = failed), got {}",
                        e.payload.bw_mbps
                    ),
                });
            }
            if !(e.payload.mld_ms >= 0.0) || !e.payload.mld_ms.is_finite() {
                return Err(NetworkError::BadLinkParameter {
                    endpoints: (e.src, e.dst),
                    reason: format!(
                        "MLD must be non-negative and finite, got {}",
                        e.payload.mld_ms
                    ),
                });
            }
        }
        if !self.is_connected() {
            return Err(NetworkError::Invalid("network is not connected".into()));
        }
        Ok(())
    }

    /// A structural fingerprint of the network: an FNV-1a hash over the
    /// node count and powers plus every directed edge's endpoints,
    /// bandwidth, and MLD (exact `f64` bit patterns). Two networks with the
    /// same fingerprint present identical inputs to every mapping
    /// algorithm; any perturbation of a power, bandwidth, or delay — or of
    /// the topology itself — changes it. Node metadata (`ip`, `name`) is
    /// deliberately excluded: it never enters a cost computation.
    ///
    /// This is the topology key of cross-instance caches
    /// (`elpc_workloads::ClosureBank`), not a cryptographic digest.
    pub fn fingerprint(&self) -> u64 {
        let mut h = elpc_netgraph::fnv::Fnv1a::new();
        h.write_usize(self.graph.node_count());
        for (_, n) in self.graph.nodes() {
            h.write_f64(n.power);
        }
        h.write_usize(self.graph.edge_count());
        for (_, e) in self.graph.edges() {
            h.write_usize(e.src.index());
            h.write_usize(e.dst.index());
            h.write_f64(e.payload.bw_mbps);
            h.write_f64(e.payload.mld_ms);
        }
        h.finish()
    }

    /// Mutable access to a link payload (both directions must be updated
    /// separately; [`Network::set_link_symmetric`] does both).
    pub fn link_mut(&mut self, edge: EdgeId) -> Result<&mut Link> {
        Ok(self.graph.edge_payload_mut(edge)?)
    }

    /// Updates the payload of `edge` *and* its symmetric twin (the edge
    /// created together with it by the undirected builder).
    pub fn set_link_symmetric(&mut self, edge: EdgeId, link: Link) -> Result<()> {
        let (src, dst) = {
            let e = self.graph.edge(edge)?;
            (e.src, e.dst)
        };
        *self.graph.edge_payload_mut(edge)? = link.clone();
        // the twin is the consecutive id (see netgraph invariant); fall back
        // to a scan when the network was hand-assembled asymmetrically
        let twin_guess = EdgeId(edge.0 ^ 1);
        if let Ok(t) = self.graph.edge(twin_guess) {
            if t.src == dst && t.dst == src {
                *self.graph.edge_payload_mut(twin_guess)? = link;
                return Ok(());
            }
        }
        if let Some(t) = self.graph.find_edge(dst, src) {
            *self.graph.edge_payload_mut(t)? = link;
        }
        Ok(())
    }

    /// Mutable node payload access (used by the dynamics models).
    pub fn node_mut(&mut self, node: NodeId) -> Result<&mut Node> {
        Ok(self.graph.node_mut(node)?)
    }

    /// Marks the undirected link of `edge` as failed: bandwidth `0.0` in
    /// both directions, MLD preserved. The edge stays in the graph — ids,
    /// indices, and the undirected-twin pairing are untouched — but every
    /// cost over it becomes `+∞`, so shortest-path trees route around it
    /// exactly as if it had been removed. Returns the link's state before
    /// the failure (for restores).
    pub fn fail_link_symmetric(&mut self, edge: EdgeId) -> Result<Link> {
        let old = self.link(edge)?.clone();
        self.set_link_symmetric(edge, Link::new(0.0, old.mld_ms))?;
        Ok(old)
    }

    /// Marks `node` as crashed: power `0.0` *and* every incident link failed
    /// in both directions (a dead host neither computes nor forwards).
    /// Returns the node's previous power plus the even (representative) edge
    /// id and prior payload of every incident link that was still healthy,
    /// so a restore can undo the crash exactly.
    pub fn fail_node(&mut self, node: NodeId) -> Result<(f64, Vec<(EdgeId, Link)>)> {
        let old_power = self.node(node)?.power;
        self.node_mut(node)?.power = 0.0;
        let incident: Vec<EdgeId> = self.graph.neighbors(node).map(|nb| nb.edge).collect();
        let mut failed = Vec::new();
        for edge in incident {
            // the even id of the undirected pair is the canonical handle
            let rep = EdgeId(edge.0 & !1);
            if !self.link(rep)?.is_failed() {
                let old = self.fail_link_symmetric(rep)?;
                failed.push((rep, old));
            }
        }
        Ok((old_power, failed))
    }

    /// True when `node` carries the crash sentinel (power exactly `0.0`).
    #[inline]
    pub fn node_is_failed(&self, node: NodeId) -> bool {
        self.power(node) == 0.0
    }
}

/// Incremental builder for [`Network`], with parameter validation at each
/// step.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    graph: Graph<Node, Link>,
    links: usize,
}

impl NetworkBuilder {
    /// Adds a node with power `p`.
    pub fn add_node(&mut self, power: f64) -> Result<NodeId> {
        self.push_node(Node::with_power(power))
    }

    /// Adds a fully-specified node.
    pub fn push_node(&mut self, node: Node) -> Result<NodeId> {
        if !(node.power > 0.0) || !node.power.is_finite() {
            return Err(NetworkError::BadNodeParameter {
                node: NodeId::from_index(self.graph.node_count()),
                reason: format!("power must be positive and finite, got {}", node.power),
            });
        }
        Ok(self.graph.add_node(node))
    }

    /// Adds an undirected link with bandwidth `bw_mbps` and delay `mld_ms`.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bw_mbps: f64,
        mld_ms: f64,
    ) -> Result<(EdgeId, EdgeId)> {
        self.add_link_payload(a, b, Link::new(bw_mbps, mld_ms))
    }

    /// Adds an undirected link from a payload.
    pub fn add_link_payload(
        &mut self,
        a: NodeId,
        b: NodeId,
        link: Link,
    ) -> Result<(EdgeId, EdgeId)> {
        if !(link.bw_mbps > 0.0) || !link.bw_mbps.is_finite() {
            return Err(NetworkError::BadLinkParameter {
                endpoints: (a, b),
                reason: format!(
                    "bandwidth must be positive and finite, got {}",
                    link.bw_mbps
                ),
            });
        }
        if !(link.mld_ms >= 0.0) || !link.mld_ms.is_finite() {
            return Err(NetworkError::BadLinkParameter {
                endpoints: (a, b),
                reason: format!("MLD must be non-negative and finite, got {}", link.mld_ms),
            });
        }
        let ids = self.graph.add_undirected_edge(a, b, link)?;
        self.links += 1;
        Ok(ids)
    }

    /// Finalizes and validates the network.
    pub fn build(self) -> Result<Network> {
        let net = Network {
            graph: self.graph,
            links: self.links,
        };
        net.validate()?;
        Ok(net)
    }

    /// Finalizes without the connectivity check (used by tests that study
    /// infeasible mappings on disconnected networks).
    pub fn build_unchecked(self) -> Network {
        Network {
            graph: self.graph,
            links: self.links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-node chain: 0 -(100 Mbps, 1ms)- 1 -(10 Mbps, 5ms)- 2
    fn chain() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(1000.0).unwrap();
        let n1 = b.add_node(500.0).unwrap();
        let n2 = b.add_node(2000.0).unwrap();
        b.add_link(n0, n1, 100.0, 1.0).unwrap();
        b.add_link(n1, n2, 10.0, 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_counts() {
        let net = chain();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.graph().edge_count(), 4);
        assert!(net.is_connected());
    }

    #[test]
    fn transfer_time_includes_mld() {
        let net = chain();
        // edge 0: 100 Mbps, 1 ms MLD; 1 MB = 80 ms serialization
        let t = net.transfer_time_ms(EdgeId(0), 1_000_000.0);
        assert!((t - 81.0).abs() < 1e-9, "got {t}");
        // zero-byte message still pays the MLD
        assert!((net.transfer_time_ms(EdgeId(0), 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_time_uses_node_power() {
        let net = chain();
        // node 1: power 500 → complexity 2 on 1000 bytes = 4 ms
        let t = net.compute_time_ms(NodeId(1), 2.0, 1000.0);
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn best_edge_picks_fastest_parallel_link() {
        let mut b = Network::builder();
        let a = b.add_node(1.0).unwrap();
        let c = b.add_node(1.0).unwrap();
        b.add_link(a, c, 10.0, 0.0).unwrap();
        b.add_link(a, c, 1000.0, 0.0).unwrap(); // much faster
        let net = b.build().unwrap();
        let (_, t) = net.best_edge(a, c, 1_000_000.0).unwrap();
        assert!((t - 8.0).abs() < 1e-9); // 1 MB over 1000 Mbps = 8 ms
        assert_eq!(
            net.best_edge(c, NodeId(0), 1.0).map(|x| x.1 > 0.0),
            Some(true)
        );
        assert!(net.best_edge(a, NodeId(7), 1.0).is_none());
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        let mut b = Network::builder();
        assert!(b.add_node(0.0).is_err());
        assert!(b.add_node(f64::NAN).is_err());
        let a = b.add_node(1.0).unwrap();
        let c = b.add_node(1.0).unwrap();
        assert!(b.add_link(a, c, 0.0, 1.0).is_err());
        assert!(b.add_link(a, c, -3.0, 1.0).is_err());
        assert!(b.add_link(a, c, 10.0, -1.0).is_err());
        assert!(b.add_link(a, c, 10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn build_rejects_disconnected_networks() {
        let mut b = Network::builder();
        b.add_node(1.0).unwrap();
        b.add_node(1.0).unwrap();
        assert!(matches!(b.build(), Err(NetworkError::Invalid(_))));
    }

    #[test]
    fn build_unchecked_allows_disconnected_for_feasibility_studies() {
        let mut b = Network::builder();
        b.add_node(1.0).unwrap();
        b.add_node(1.0).unwrap();
        let net = b.build_unchecked();
        assert!(!net.is_connected());
        assert!(net.validate().is_err());
    }

    #[test]
    fn empty_network_is_invalid() {
        let b = Network::builder();
        assert!(b.build().is_err());
    }

    #[test]
    fn set_link_symmetric_updates_both_directions() {
        let mut net = chain();
        net.set_link_symmetric(EdgeId(0), Link::new(50.0, 2.0))
            .unwrap();
        assert_eq!(net.link(EdgeId(0)).unwrap().bw_mbps, 50.0);
        assert_eq!(net.link(EdgeId(1)).unwrap().bw_mbps, 50.0);
        // the other link is untouched
        assert_eq!(net.link(EdgeId(2)).unwrap().bw_mbps, 10.0);
    }

    #[test]
    fn from_topology_assigns_parameters_per_element() {
        let topo = elpc_netgraph::gen::ring(4).unwrap();
        let net = Network::from_topology(
            &topo,
            |i| Node::with_power(100.0 * (i + 1) as f64),
            |a, b| Link::new((a + b + 1) as f64, 0.1),
        )
        .unwrap();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.power(NodeId(2)), 300.0);
    }

    #[test]
    fn serde_round_trip() {
        let net = chain();
        let json = serde_json::to_string(&net).unwrap();
        let net2: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(net2.node_count(), 3);
        assert_eq!(net2.link_count(), 2);
        assert_eq!(net2.power(NodeId(0)), 1000.0);
        assert!(net2.validate().is_ok());
    }

    #[test]
    fn fingerprint_tracks_solver_relevant_state_only() {
        let a = chain();
        let b = chain();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same build, same print");
        // bandwidth perturbation changes it
        let mut c = chain();
        c.set_link_symmetric(EdgeId(0), Link::new(100.0 + 1e-9, 1.0))
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // MLD perturbation changes it
        let mut d = chain();
        d.set_link_symmetric(EdgeId(0), Link::new(100.0, 1.0 + 1e-9))
            .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
        // node power perturbation changes it
        let mut e = chain();
        e.node_mut(NodeId(1)).unwrap().power += 1e-9;
        assert_ne!(a.fingerprint(), e.fingerprint());
        // metadata does not
        let mut f = chain();
        f.node_mut(NodeId(0)).unwrap().name = Some("renamed".into());
        assert_eq!(a.fingerprint(), f.fingerprint());
    }

    #[test]
    fn failed_link_is_infinitely_slow_but_stays_in_the_graph() {
        let mut net = chain();
        let old = net.fail_link_symmetric(EdgeId(0)).unwrap();
        assert_eq!(old.bw_mbps, 100.0);
        assert!(net.link(EdgeId(0)).unwrap().is_failed());
        assert!(net.link(EdgeId(1)).unwrap().is_failed());
        assert_eq!(net.link(EdgeId(0)).unwrap().mld_ms, 1.0, "MLD preserved");
        assert!(net.transfer_time_ms(EdgeId(0), 1.0).is_infinite());
        // structurally unchanged: ids stable, still "connected" as wiring
        assert_eq!(net.link_count(), 2);
        assert!(net.is_connected());
        // the degraded network still validates (failure is a legal state)
        assert!(net.validate().is_ok());
        // restore: put the old payload back, fully healthy again
        net.set_link_symmetric(EdgeId(0), old).unwrap();
        assert!(!net.link(EdgeId(0)).unwrap().is_failed());
        assert_eq!(net.fingerprint(), chain().fingerprint());
    }

    #[test]
    fn failed_node_kills_power_and_incident_links() {
        let mut net = chain();
        let (old_power, failed) = net.fail_node(NodeId(1)).unwrap();
        assert_eq!(old_power, 500.0);
        assert!(net.node_is_failed(NodeId(1)));
        // both incident undirected links fail, reported by even id
        let mut ids: Vec<u32> = failed.iter().map(|(e, _)| e.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]);
        for e in [0u32, 1, 2, 3] {
            assert!(net.link(EdgeId(e)).unwrap().is_failed());
        }
        assert!(net.compute_time_ms(NodeId(1), 1.0, 1.0).is_infinite());
        assert!(net.validate().is_ok());
        // exact restore from the returned undo-log
        net.node_mut(NodeId(1)).unwrap().power = old_power;
        for (e, link) in failed {
            net.set_link_symmetric(e, link).unwrap();
        }
        assert_eq!(net.fingerprint(), chain().fingerprint());
    }

    #[test]
    fn validate_still_rejects_negative_and_nonfinite_parameters() {
        let mut net = chain();
        net.node_mut(NodeId(0)).unwrap().power = -1.0;
        assert!(net.validate().is_err());
        let mut net = chain();
        net.node_mut(NodeId(0)).unwrap().power = f64::NAN;
        assert!(net.validate().is_err());
        let mut net = chain();
        net.link_mut(EdgeId(0)).unwrap().bw_mbps = -5.0;
        assert!(net.validate().is_err());
        let mut net = chain();
        net.link_mut(EdgeId(0)).unwrap().bw_mbps = f64::INFINITY;
        assert!(net.validate().is_err());
    }

    #[test]
    fn node_metadata_is_preserved() {
        let mut b = Network::builder();
        b.push_node(Node {
            power: 10.0,
            ip: Some("192.168.0.1".into()),
            name: Some("source".into()),
        })
        .unwrap();
        b.push_node(Node::with_power(5.0)).unwrap();
        b.add_link(NodeId(0), NodeId(1), 10.0, 0.0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            net.node(NodeId(0)).unwrap().ip.as_deref(),
            Some("192.168.0.1")
        );
        assert_eq!(net.node(NodeId(0)).unwrap().name.as_deref(), Some("source"));
        assert_eq!(net.node(NodeId(1)).unwrap().ip, None);
    }
}
