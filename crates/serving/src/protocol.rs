//! The `elpc-serve` wire protocol: framing and request/response types.
//!
//! Every message is a **frame**: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Frames larger than
//! [`MAX_FRAME_LEN`] are rejected before allocation so a corrupt length
//! prefix cannot make the server balloon. The JSON payload is an
//! externally tagged [`RequestFrame`] / [`ResponseFrame`] — a correlation
//! `id` chosen by the client plus the body — so a client may pipeline
//! requests on one connection and match responses out of order.
//!
//! Decoding is total: malformed or truncated frames surface as a typed
//! [`FrameError`], never a panic, and a clean EOF *between* frames is
//! distinguished from a connection dying *mid*-frame. The round-trip
//! property tests in `crates/serving/tests/protocol_roundtrip.rs` pin
//! encode→decode bit-identity for every request and response variant,
//! including every typed error.

use elpc_mapping::{CostModel, MappingError, NetworkDelta};
use elpc_netgraph::NodeId;
use elpc_workloads::ProblemInstance;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Upper bound on a frame payload (16 MiB). Large enough for the 10k-node
/// topologies the workload generators emit, small enough that a garbage
/// length prefix fails fast instead of triggering a giant allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// Length the prefix claimed.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The connection ended mid-frame.
    Truncated {
        /// Bytes the frame still owed (header or payload).
        expected: usize,
        /// Bytes actually received before the stream ended.
        got: usize,
    },
    /// The payload is not valid UTF-8.
    Utf8,
    /// The payload is not a JSON document of the expected shape.
    Json(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame: got {got} of {expected} bytes")
            }
            FrameError::Utf8 => f.write_str("frame payload is not valid UTF-8"),
            FrameError::Json(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed frame and flushes the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(ErrorKind::InvalidInput, "frame payload exceeds u32 range")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from a blocking reader.
///
/// Returns `Ok(None)` on a clean EOF before the first header byte; an EOF
/// anywhere later is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    read_frame_poll(r, || false)
}

/// Reads one frame from a reader that may have a read timeout armed,
/// polling `should_stop` whenever a read times out.
///
/// This is how the server drains: connection readers arm a short
/// `SO_RCVTIMEO` and pass the drain flag as `should_stop`, so an idle
/// connection notices shutdown within one timeout tick. A stop request
/// *between* frames returns `Ok(None)` like a clean EOF; a stop (or EOF)
/// *mid*-frame is [`FrameError::Truncated`] because the peer's message was
/// cut off.
pub fn read_frame_poll<R: Read>(
    r: &mut R,
    should_stop: impl Fn() -> bool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    if !fill_poll(r, &mut header, 0, &should_stop)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len];
    if len > 0 && !fill_poll(r, &mut payload, 4, &should_stop)? {
        // unreachable in practice: fill_poll only reports "stopped clean"
        // when zero bytes were read, and the header already consumed four.
        return Err(FrameError::Truncated {
            expected: len,
            got: 0,
        });
    }
    Ok(Some(payload))
}

/// Fills `buf` completely. Returns `Ok(false)` when the stream ended (or
/// `should_stop` fired) before *any* byte of the whole frame arrived —
/// `prior` counts frame bytes already consumed by earlier fills, so a
/// partial header or payload is reported as truncation instead.
fn fill_poll<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    prior: usize,
    should_stop: &impl Fn() -> bool,
) -> Result<bool, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if prior + filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated {
                        expected: prior + buf.len(),
                        got: prior + filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if should_stop() {
                    return if prior + filled == 0 {
                        Ok(false)
                    } else {
                        Err(FrameError::Truncated {
                            expected: prior + buf.len(),
                            got: prior + filled,
                        })
                    };
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client→server message: a correlation id plus the request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim on the response.
    pub id: u64,
    /// The request itself.
    pub body: Request,
}

/// Every operation the daemon accepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered inline with [`Response::Pong`].
    Ping,
    /// Solve an instance with a named registry solver.
    Solve(SolveRequest),
    /// Re-solve after a topology change, reporting whether the assignment
    /// moved relative to `previous`.
    Remap(RemapRequest),
    /// Snapshot server statistics; answered inline.
    Stats,
    /// Ask the daemon to drain queued work and exit.
    Shutdown,
}

/// A solve order: which solver, against what instance, under which knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Registry solver name, e.g. `"elpc_delay_routed"`.
    pub solver: String,
    /// Cost model the closure and objective are evaluated under.
    pub cost: CostModel,
    /// Closure worker threads for this solve (0 = all CPUs, 1 = serial).
    pub threads: usize,
    /// Optional wall-clock budget measured from enqueue; an expired
    /// request answers [`ServeError::Timeout`] instead of a reply.
    pub timeout_ms: Option<u64>,
    /// The owned problem instance to solve.
    pub instance: ProblemInstance,
}

/// A remap order: a solve plus the assignment it would replace. A client
/// that knows *what* changed can ship the bank key of the pre-change
/// instance plus the exact [`NetworkDelta`]; the server then repairs the
/// banked closure in place ([hit-with-repair]) instead of building the
/// perturbed topology's closure cold.
///
/// [hit-with-repair]: elpc_workloads::ClosureBank::update_in_place
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemapRequest {
    /// The fresh solve to run against the (possibly changed) topology.
    pub solve: SolveRequest,
    /// The assignment currently deployed.
    pub previous: Vec<NodeId>,
    /// Bank key of the *pre-change* instance (as banked by an earlier
    /// solve), when the client wants an in-place repair.
    pub previous_key: Option<u64>,
    /// The exact perturbation between the banked instance and
    /// `solve.instance`, when the client wants an in-place repair.
    pub delta: Option<NetworkDelta>,
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One server→client message: the request's id plus the response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// The correlation id of the request this answers.
    pub id: u64,
    /// The response itself.
    pub body: Response,
}

/// Every answer the daemon produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness answer to [`Request::Ping`].
    Pong,
    /// A completed solve.
    Solved(SolveReply),
    /// A completed remap.
    Remapped(RemapReply),
    /// A statistics snapshot.
    Stats(StatsReply),
    /// Acknowledgement of [`Request::Shutdown`]; the daemon drains and
    /// exits after answering.
    ShuttingDown,
    /// The request failed; every failure mode is a typed variant.
    Error(ServeError),
}

/// A successful solve, with the serving-side telemetry for this request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReply {
    /// The solver that ran.
    pub solver: String,
    /// The mapping: pipeline module → network node, length `m`.
    pub assignment: Vec<NodeId>,
    /// Objective value in milliseconds (registry semantics, untouched).
    pub objective_ms: f64,
    /// True when the closure came out of the bank (hit), false when this
    /// request built it cold.
    pub banked: bool,
    /// True when this request waited on another request's closure build
    /// for the same bank key instead of building its own.
    pub coalesced: bool,
    /// Milliseconds spent queued before a worker picked the request up.
    pub queue_ms: f64,
    /// Milliseconds of solver execution (closure wait included).
    pub solve_ms: f64,
}

/// A successful remap: the fresh solve plus the movement verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapReply {
    /// The fresh solve result.
    pub reply: SolveReply,
    /// True when the fresh assignment differs from `previous`.
    pub changed: bool,
    /// True when the request's `previous_key`/`delta` repaired a banked
    /// closure in place (the solve then reports `banked: true`).
    pub repaired: bool,
}

/// Latency summary over completed requests, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Completed requests the percentiles are over.
    pub count: u64,
    /// Median end-to-end latency.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

/// A point-in-time snapshot of server counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Solve/remap requests that arrived (admitted + shed).
    pub requests: u64,
    /// Solve/remap requests admitted onto the bounded queue. Once drained,
    /// `accepted == completed + timeouts + errors` exactly.
    pub accepted: u64,
    /// Requests shed at admission with [`ServeError::Overloaded`] because
    /// the queue was full; `requests == accepted + shed` always.
    pub shed: u64,
    /// Requests answered with a successful reply.
    pub completed: u64,
    /// Requests answered with a typed error (timeouts counted separately).
    pub errors: u64,
    /// Requests answered with [`ServeError::Timeout`].
    pub timeouts: u64,
    /// Requests that waited on another request's closure build.
    pub coalesced: u64,
    /// Solve/remap requests currently queued or executing.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Closure-bank checkouts that hit.
    pub bank_hits: u64,
    /// Closure-bank checkouts that missed (cold builds).
    pub bank_misses: u64,
    /// Closure-bank deposits.
    pub bank_deposits: u64,
    /// Closure-bank in-place repairs (remap hit-with-repair migrations).
    pub bank_repairs: u64,
    /// End-to-end latency summary over completed requests.
    pub latency: LatencySummary,
}

/// Typed failure modes a request can be answered with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeError {
    /// The named solver is not in the registry.
    UnknownSolver {
        /// The name the request asked for.
        name: String,
    },
    /// The solver ran and failed; mirrors [`MappingError`].
    Solve(SolveFailure),
    /// The request's `timeout_ms` budget expired before an answer.
    Timeout {
        /// Milliseconds the request had waited when it was expired.
        waited_ms: u64,
    },
    /// The bounded job queue is full; the request was shed at admission
    /// and never enqueued. Idempotent clients should back off and retry.
    Overloaded {
        /// Server's estimate of when a slot is likely to free up, from the
        /// current queue depth and recent per-request service time.
        retry_after_ms: u64,
    },
    /// The request frame decoded but its content is unusable.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// A worker failed in a way no other variant covers.
    Internal {
        /// Diagnostic detail.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSolver { name } => write!(f, "unknown solver {name:?}"),
            ServeError::Solve(e) => write!(f, "solve failed: {} ({})", e.message, e.kind.name()),
            ServeError::Timeout { waited_ms } => {
                write!(f, "request timed out after {waited_ms} ms")
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            ServeError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Internal { detail } => write!(f, "internal server error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A solver failure carried over the wire: the typed kind plus the
/// human-readable message the library produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveFailure {
    /// Which [`MappingError`] variant failed the solve.
    pub kind: SolveErrorKind,
    /// The library error's display string.
    pub message: String,
}

impl SolveFailure {
    /// Projects a library error into its wire form.
    pub fn from_mapping(e: &MappingError) -> Self {
        let kind = match e {
            MappingError::Infeasible(_) => SolveErrorKind::Infeasible,
            MappingError::InvalidMapping(_) => SolveErrorKind::InvalidMapping,
            MappingError::Network(_) => SolveErrorKind::Network,
            MappingError::Pipeline(_) => SolveErrorKind::Pipeline,
            MappingError::BadConfig(_) => SolveErrorKind::BadConfig,
            MappingError::BudgetExhausted { budget } => SolveErrorKind::BudgetExhausted {
                budget: *budget as u64,
            },
        };
        SolveFailure {
            kind,
            message: e.to_string(),
        }
    }
}

/// Wire projection of [`MappingError`]'s variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveErrorKind {
    /// No feasible mapping exists.
    Infeasible,
    /// A mapping failed structural validation.
    InvalidMapping,
    /// Underlying network-model error.
    Network,
    /// Underlying pipeline-model error.
    Pipeline,
    /// Invalid solver parameters.
    BadConfig,
    /// Exact search ran out of budget.
    BudgetExhausted {
        /// The exhausted exploration budget.
        budget: u64,
    },
}

impl SolveErrorKind {
    /// Stable lowercase name for logs and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            SolveErrorKind::Infeasible => "infeasible",
            SolveErrorKind::InvalidMapping => "invalid_mapping",
            SolveErrorKind::Network => "network",
            SolveErrorKind::Pipeline => "pipeline",
            SolveErrorKind::BadConfig => "bad_config",
            SolveErrorKind::BudgetExhausted { .. } => "budget_exhausted",
        }
    }
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

/// Encodes a request frame to its JSON payload.
pub fn encode_request(frame: &RequestFrame) -> String {
    serde_json::to_string(frame).expect("request serialization is infallible")
}

/// Decodes a request frame from raw payload bytes.
pub fn decode_request(bytes: &[u8]) -> Result<RequestFrame, FrameError> {
    let text = std::str::from_utf8(bytes).map_err(|_| FrameError::Utf8)?;
    serde_json::from_str(text).map_err(|e| FrameError::Json(e.to_string()))
}

/// Encodes a response frame to its JSON payload.
pub fn encode_response(frame: &ResponseFrame) -> String {
    serde_json::to_string(frame).expect("response serialization is infallible")
}

/// Decodes a response frame from raw payload bytes.
pub fn decode_response(bytes: &[u8]) -> Result<ResponseFrame, FrameError> {
    let text = std::str::from_utf8(bytes).map_err(|_| FrameError::Utf8)?;
    serde_json::from_str(text).map_err(|e| FrameError::Json(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_response(body: Response) {
        let frame = ResponseFrame { id: 7, body };
        let one = encode_response(&frame);
        let back = decode_response(one.as_bytes()).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(encode_response(&back), one, "re-encode must be identical");
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_is_distinguished_from_clean_eof() {
        // mid-header
        let mut r: &[u8] = &[0, 0];
        match read_frame(&mut r) {
            Err(FrameError::Truncated {
                expected: 4,
                got: 2,
            }) => {}
            other => panic!("expected header truncation, got {other:?}"),
        }
        // mid-payload
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Truncated { .. }) => {}
            other => panic!("expected payload truncation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_decodes_to_typed_errors_not_panics() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &[0xFF, 0xFE, 0x80]).unwrap();
        let mut r = &frame[..];
        let payload = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(decode_request(&payload), Err(FrameError::Utf8)));
        assert!(matches!(
            decode_request(b"{\"id\": 3"),
            Err(FrameError::Json(_))
        ));
        assert!(matches!(
            decode_request(b"{\"id\": 3, \"body\": \"NoSuchRequest\"}"),
            Err(FrameError::Json(_))
        ));
    }

    #[test]
    fn every_error_variant_reencodes_identically() {
        for err in [
            ServeError::UnknownSolver {
                name: "nope".into(),
            },
            ServeError::Solve(SolveFailure::from_mapping(&MappingError::Infeasible(
                "dst unreachable".into(),
            ))),
            ServeError::Solve(SolveFailure::from_mapping(&MappingError::BudgetExhausted {
                budget: 4096,
            })),
            ServeError::Timeout { waited_ms: 250 },
            ServeError::Overloaded { retry_after_ms: 40 },
            ServeError::Malformed {
                detail: "empty pipeline".into(),
            },
            ServeError::ShuttingDown,
            ServeError::Internal {
                detail: "worker panicked".into(),
            },
        ] {
            roundtrip_response(Response::Error(err));
        }
    }

    #[test]
    fn mapping_errors_project_onto_distinct_kinds() {
        let cases: Vec<(MappingError, &str)> = vec![
            (MappingError::Infeasible("x".into()), "infeasible"),
            (MappingError::InvalidMapping("x".into()), "invalid_mapping"),
            (MappingError::BadConfig("x".into()), "bad_config"),
            (
                MappingError::BudgetExhausted { budget: 9 },
                "budget_exhausted",
            ),
        ];
        for (err, name) in cases {
            let failure = SolveFailure::from_mapping(&err);
            assert_eq!(failure.kind.name(), name);
            assert_eq!(failure.message, err.to_string());
        }
    }
}
