//! An open-loop load generator for the `elpc-serve` daemon.
//!
//! *Open-loop* means the send schedule is fixed up front: each connection's
//! writer thread fires requests at the configured aggregate rate (or as
//! fast as the socket accepts them at rate 0) **without waiting for
//! responses**, while a separate reader thread matches responses by
//! correlation id and records end-to-end latency. A server that falls
//! behind therefore shows up as growing latency, not as a silently
//! throttled client — the honest way to measure a queueing system.
//!
//! The `serving` bench and the CI `SERVING_SMOKE` step both drive the
//! daemon through [`run_open_loop`].
//!
//! Replies are tallied by kind — [`LoadReport::ok`], [`LoadReport::shed`]
//! (typed `Overloaded` refusals), [`LoadReport::timeouts`],
//! [`LoadReport::server_errors`], and [`LoadReport::lost`] (sent but
//! never answered) — so overload experiments can tell load-shedding from
//! failure. Setting [`LoadConfig::retry`] switches to a **closed-loop**
//! mode built on [`Client::solve_with_retry`]: each connection waits for
//! (and retries) every reply before sending the next request, which is
//! the mode chaos tests use to prove no accepted request is lost across
//! a daemon restart.

use crate::client::{Client, ClientError, RetryPolicy};
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestFrame, Response,
    ServeError, SolveRequest,
};
use elpc_mapping::CostModel;
use elpc_workloads::ProblemInstance;
use std::collections::HashMap;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs for one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Client connections to open.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Aggregate send rate in requests/second (0 = unpaced, send as fast
    /// as the sockets accept).
    pub rate_per_sec: f64,
    /// Registry solver every request asks for.
    pub solver: String,
    /// Cost model every request carries.
    pub cost: CostModel,
    /// Per-request closure threads (1 keeps the daemon's parallelism in
    /// the pool, not inside each solve).
    pub threads: usize,
    /// Optional per-request timeout forwarded to the server.
    pub timeout_ms: Option<u64>,
    /// When set, the run is **closed-loop**: each connection issues its
    /// requests synchronously through [`Client::solve_with_retry`] under
    /// this policy (reconnecting across daemon restarts, backing off on
    /// shed replies) instead of the open-loop fire-and-match schedule.
    pub retry: Option<RetryPolicy>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests: 64,
            rate_per_sec: 0.0,
            solver: "elpc_delay_routed".into(),
            cost: CostModel::default(),
            threads: 1,
            timeout_ms: None,
            retry: None,
        }
    }
}

/// What an open-loop run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests actually written to the sockets.
    pub sent: usize,
    /// Successful solve replies.
    pub ok: usize,
    /// Every non-ok outcome: `shed + timeouts + server_errors + lost`
    /// (kept as the historical aggregate existing consumers assert on).
    pub errors: usize,
    /// Typed `Overloaded` refusals — the daemon shedding load, not
    /// failing.
    pub shed: usize,
    /// Typed `Timeout` replies (deadline expired server-side).
    pub timeouts: usize,
    /// Any other typed error reply (solve failures, malformed, internal,
    /// shutting-down).
    pub server_errors: usize,
    /// Requests written to a socket but never answered (connection died
    /// with the reply outstanding).
    pub lost: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
    /// Successful replies per second of wall clock.
    pub throughput_rps: f64,
    /// Mean end-to-end latency (ms) over successful replies.
    pub mean_ms: f64,
    /// Median end-to-end latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency (ms).
    pub p99_ms: f64,
    /// Worst end-to-end latency (ms).
    pub max_ms: f64,
}

/// Drives `cfg.requests` solve requests at the daemon on `socket`,
/// round-robining `instances` across the request stream, and returns the
/// observed throughput/latency report.
pub fn run_open_loop(
    socket: &Path,
    instances: &[ProblemInstance],
    cfg: &LoadConfig,
) -> std::io::Result<LoadReport> {
    assert!(!instances.is_empty(), "need at least one instance");
    if cfg.retry.is_some() {
        return run_closed_loop(socket, instances, cfg);
    }
    let connections = cfg.connections.max(1);
    let interval = if cfg.rate_per_sec > 0.0 {
        Duration::from_secs_f64(1.0 / cfg.rate_per_sec)
    } else {
        Duration::ZERO
    };

    // Pre-open every connection so the measured window is pure serving.
    let mut streams = Vec::with_capacity(connections);
    for _ in 0..connections {
        streams.push(UnixStream::connect(socket)?);
    }

    let latencies = Mutex::new(Vec::<f64>::with_capacity(cfg.requests));
    let sent = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let timeouts = AtomicUsize::new(0);
    let server_errors = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|s| -> std::io::Result<()> {
        for (conn_idx, stream) in streams.into_iter().enumerate() {
            let writer_stream = stream.try_clone()?;
            // ids this connection owns: the global request indices
            // congruent to conn_idx mod connections.
            let my_ids: Vec<usize> = (0..cfg.requests)
                .filter(|k| k % connections == conn_idx)
                .collect();
            let expect = my_ids.len();
            let in_flight = Mutex::new(HashMap::<u64, Instant>::with_capacity(expect));

            let latencies = &latencies;
            let sent = &sent;
            let ok = &ok;
            let shed = &shed;
            let timeouts = &timeouts;
            let server_errors = &server_errors;
            let cfg_ref = cfg;

            s.spawn(move || {
                let in_flight = &in_flight;
                std::thread::scope(|inner| {
                    // Writer: paced sends on the global schedule, never
                    // waiting for responses (open loop).
                    let mut w = writer_stream;
                    inner.spawn(move || {
                        for k in my_ids {
                            if !interval.is_zero() {
                                let due = start + interval.mul_f64(k as f64);
                                let now = Instant::now();
                                if due > now {
                                    std::thread::sleep(due - now);
                                }
                            }
                            let body = Request::Solve(SolveRequest {
                                solver: cfg_ref.solver.clone(),
                                cost: cfg_ref.cost,
                                threads: cfg_ref.threads,
                                timeout_ms: cfg_ref.timeout_ms,
                                instance: instances[k % instances.len()].clone(),
                            });
                            let frame = RequestFrame { id: k as u64, body };
                            let json = encode_request(&frame);
                            in_flight
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(frame.id, Instant::now());
                            if write_frame(&mut w, json.as_bytes()).is_err() {
                                break;
                            }
                            sent.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                    // Reader: match responses by id until the connection's
                    // share is answered or the server hangs up.
                    let mut r = stream;
                    inner.spawn(move || {
                        let mut received = 0usize;
                        while received < expect {
                            let payload = match read_frame(&mut r) {
                                Ok(Some(p)) => p,
                                Ok(None) | Err(_) => break,
                            };
                            let Ok(frame) = decode_response(&payload) else {
                                break;
                            };
                            let sent_at = in_flight
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&frame.id);
                            received += 1;
                            match (frame.body, sent_at) {
                                (Response::Solved(_), Some(t0)) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                    latencies
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .push(t0.elapsed().as_secs_f64() * 1e3);
                                }
                                (Response::Error(ServeError::Overloaded { .. }), _) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                (Response::Error(ServeError::Timeout { .. }), _) => {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    server_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                });
            });
        }
        Ok(())
    })?;

    let lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    let sent = sent.into_inner();
    let ok = ok.into_inner();
    let shed = shed.into_inner();
    let timeouts = timeouts.into_inner();
    let server_errors = server_errors.into_inner();
    let lost = sent.saturating_sub(ok + shed + timeouts + server_errors);
    Ok(build_report(
        start.elapsed().as_secs_f64(),
        lat,
        sent,
        ok,
        shed,
        timeouts,
        server_errors,
        lost,
    ))
}

/// The closed-loop retry mode behind [`LoadConfig::retry`]: every
/// connection synchronously drives its share of the request stream
/// through [`Client::solve_with_retry`], so a mid-run daemon restart
/// shows up as retried-and-answered work, not lost replies. Each
/// connection's policy seed is decorrelated by its index.
fn run_closed_loop(
    socket: &Path,
    instances: &[ProblemInstance],
    cfg: &LoadConfig,
) -> std::io::Result<LoadReport> {
    let policy = cfg.retry.clone().expect("run_closed_loop needs a policy");
    let connections = cfg.connections.max(1);
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        clients.push(Client::connect(socket)?);
    }

    let latencies = Mutex::new(Vec::<f64>::with_capacity(cfg.requests));
    let sent = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let timeouts = AtomicUsize::new(0);
    let server_errors = AtomicUsize::new(0);
    let lost = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|s| {
        for (conn_idx, mut client) in clients.into_iter().enumerate() {
            let my_ids: Vec<usize> = (0..cfg.requests)
                .filter(|k| k % connections == conn_idx)
                .collect();
            let policy = RetryPolicy {
                seed: policy.seed ^ (conn_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..policy.clone()
            };
            let (latencies, sent, ok) = (&latencies, &sent, &ok);
            let (shed, timeouts, server_errors, lost) = (&shed, &timeouts, &server_errors, &lost);
            let cfg_ref = cfg;
            s.spawn(move || {
                for k in my_ids {
                    let req = SolveRequest {
                        solver: cfg_ref.solver.clone(),
                        cost: cfg_ref.cost,
                        threads: cfg_ref.threads,
                        timeout_ms: cfg_ref.timeout_ms,
                        instance: instances[k % instances.len()].clone(),
                    };
                    sent.fetch_add(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    match client.solve_with_retry(&req, &policy) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latencies
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        Err(ClientError::Server(ServeError::Overloaded { .. })) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server(ServeError::Timeout { .. })) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Io(_) | ClientError::Closed | ClientError::Frame(_)) => {
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            server_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    Ok(build_report(
        start.elapsed().as_secs_f64(),
        latencies.into_inner().unwrap_or_else(|e| e.into_inner()),
        sent.into_inner(),
        ok.into_inner(),
        shed.into_inner(),
        timeouts.into_inner(),
        server_errors.into_inner(),
        lost.into_inner(),
    ))
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    elapsed_s: f64,
    mut lat: Vec<f64>,
    sent: usize,
    ok: usize,
    shed: usize,
    timeouts: usize,
    server_errors: usize,
    lost: usize,
) -> LoadReport {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LoadReport {
        sent,
        ok,
        errors: shed + timeouts + server_errors + lost,
        shed,
        timeouts,
        server_errors,
        lost,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        mean_ms: if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<f64>() / lat.len() as f64
        },
        p50_ms: pct(&lat, 0.50),
        p99_ms: pct(&lat, 0.99),
        max_ms: lat.last().copied().unwrap_or(0.0),
    }
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}
