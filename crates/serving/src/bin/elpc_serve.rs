//! `elpc-serve` — mapping-as-a-service CLI.
//!
//! Subcommands:
//!
//! ```text
//! elpc-serve serve    --socket PATH [--workers N] [--bank-capacity N] [--queue-capacity N]
//! elpc-serve ping     --socket PATH
//! elpc-serve solve    --socket PATH [--solver NAME] [--modules M --nodes N --links L]
//!                     [--seed S] [--threads T] [--timeout-ms MS]
//!                     [--retries N] [--retry-base-ms MS] [--retry-seed S]
//! elpc-serve stats    --socket PATH
//! elpc-serve shutdown --socket PATH
//! elpc-serve loadgen  --socket PATH [--requests N] [--connections C] [--rate R]
//!                     [--solver NAME] [--modules M --nodes N --links L] [--seed S]
//!                     [--retries N] [--retry-base-ms MS] [--retry-seed S]
//! elpc-serve smoke    [--requests N] [--connections C] [--workers W] [--queue-capacity N]
//! elpc-serve chaos    [--requests N] [--connections C] [--workers W]
//! ```
//!
//! `serve` blocks until a client sends `shutdown`, then drains and exits.
//! `smoke` is self-contained (used by the CI `SERVING_SMOKE` step): it
//! boots an in-process daemon on a temp socket, fires an open-loop burst
//! at it, requests shutdown, verifies the drain answered everything, and
//! exits non-zero on any failure.
//! `chaos` is the CI `CHAOS_SMOKE` step: it kills and restarts the daemon
//! in the middle of a retrying closed-loop burst and proves no request is
//! lost, then drives an open-loop overload at a tiny queue and proves the
//! daemon sheds with exact accounting instead of queueing without bound.
//!
//! `--retries N` (N > 1) makes `solve` and `loadgen` retry transient
//! failures — shed replies, daemon restarts — under a deterministic
//! seeded exponential-backoff-with-jitter policy.

use elpc_mapping::CostModel;
use elpc_serving::loadgen::{run_open_loop, LoadConfig};
use elpc_serving::{Client, RetryPolicy, Server, ServerConfig, SolveRequest};
use elpc_workloads::{InstanceSpec, ProblemInstance};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    fn socket(&self) -> Result<PathBuf, String> {
        self.get("socket")
            .map(PathBuf::from)
            .ok_or_else(|| "missing required --socket PATH".into())
    }
}

fn gen_instances(args: &Args, count: usize) -> Result<Vec<ProblemInstance>, String> {
    let modules: usize = args.num("modules", 5)?;
    let nodes: usize = args.num("nodes", 40)?;
    let links: usize = args.num("links", 90)?;
    let seed: u64 = args.num("seed", 42)?;
    (0..count)
        .map(|i| {
            InstanceSpec::sized(modules, nodes, links)
                .generate(seed + i as u64)
                .map_err(|e| format!("instance generation failed: {e}"))
        })
        .collect()
}

fn solve_request(args: &Args, instance: ProblemInstance) -> Result<SolveRequest, String> {
    Ok(SolveRequest {
        solver: args
            .get("solver")
            .unwrap_or("elpc_delay_routed")
            .to_string(),
        cost: CostModel::default(),
        threads: args.num("threads", 1)?,
        timeout_ms: match args.get("timeout-ms") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("flag --timeout-ms: cannot parse {v:?}"))?,
            ),
        },
        instance,
    })
}

/// `--retries N` (plus `--retry-base-ms`/`--retry-seed`) as a policy;
/// `None` when retries are off (N <= 1).
fn retry_policy(args: &Args) -> Result<Option<RetryPolicy>, String> {
    let retries: u32 = args.num("retries", 1)?;
    if retries <= 1 {
        return Ok(None);
    }
    Ok(Some(RetryPolicy {
        max_attempts: retries,
        base_ms: args.num("retry-base-ms", RetryPolicy::default().base_ms)?,
        seed: args.num("retry-seed", RetryPolicy::default().seed)?,
        ..RetryPolicy::default()
    }))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let socket = args.socket()?;
    let config = ServerConfig {
        workers: args.num("workers", 0)?,
        bank_capacity: args.num("bank-capacity", 64)?,
        queue_capacity: args.num("queue-capacity", ServerConfig::default().queue_capacity)?,
        ..ServerConfig::default()
    };
    let server = Server::bind(&socket, config).map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "elpc-serve: listening on {} with {} workers",
        server.socket_path().display(),
        server.worker_count()
    );
    server.run_until_shutdown();
    let stats = server.shutdown();
    println!(
        "elpc-serve: drained; {} requests ({} accepted, {} shed), {} completed, {} errors, {} timeouts",
        stats.requests, stats.accepted, stats.shed, stats.completed, stats.errors, stats.timeouts
    );
    Ok(())
}

fn connect(args: &Args) -> Result<Client, String> {
    let socket = args.socket()?;
    Client::connect(&socket).map_err(|e| format!("connect to {} failed: {e}", socket.display()))
}

fn cmd_ping(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    client.ping().map_err(|e| e.to_string())?;
    println!("pong");
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    let inst = gen_instances(args, 1)?.pop().expect("one instance");
    let label = inst.label.clone();
    let req = solve_request(args, inst)?;
    let reply = match retry_policy(args)? {
        Some(policy) => client.solve_with_retry(&req, &policy),
        None => client.solve(req),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{label}: solver={} objective_ms={:.6} banked={} coalesced={} queue_ms={:.3} solve_ms={:.3}",
        reply.solver, reply.objective_ms, reply.banked, reply.coalesced, reply.queue_ms,
        reply.solve_ms
    );
    println!(
        "assignment: {:?}",
        reply.assignment.iter().map(|n| n.0).collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    let s = client.stats().map_err(|e| e.to_string())?;
    println!(
        "requests={} accepted={} shed={} completed={} errors={} timeouts={} coalesced={}",
        s.requests, s.accepted, s.shed, s.completed, s.errors, s.timeouts, s.coalesced
    );
    println!(
        "queue_depth={} max_queue_depth={} workers={}",
        s.queue_depth, s.max_queue_depth, s.workers
    );
    println!(
        "bank: hits={} misses={} deposits={}",
        s.bank_hits, s.bank_misses, s.bank_deposits
    );
    println!(
        "latency over {} requests: p50={:.3}ms p99={:.3}ms max={:.3}ms",
        s.latency.count, s.latency.p50_ms, s.latency.p99_ms, s.latency.max_ms
    );
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("shutdown acknowledged; daemon is draining");
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let socket = args.socket()?;
    let cfg = LoadConfig {
        connections: args.num("connections", 4)?,
        requests: args.num("requests", 64)?,
        rate_per_sec: args.num("rate", 0.0)?,
        solver: args
            .get("solver")
            .unwrap_or("elpc_delay_routed")
            .to_string(),
        threads: args.num("threads", 1)?,
        retry: retry_policy(args)?,
        ..LoadConfig::default()
    };
    let instances = gen_instances(args, args.num("distinct", 1)?)?;
    let report = run_open_loop(&socket, &instances, &cfg).map_err(|e| format!("loadgen: {e}"))?;
    print_report(&report);
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.sent
        ));
    }
    Ok(())
}

fn print_report(r: &elpc_serving::LoadReport) {
    println!(
        "sent={} ok={} errors={} (shed={} timeouts={} server_errors={} lost={}) elapsed={:.3}s throughput={:.1}/s",
        r.sent,
        r.ok,
        r.errors,
        r.shed,
        r.timeouts,
        r.server_errors,
        r.lost,
        r.elapsed_s,
        r.throughput_rps
    );
    println!(
        "latency: mean={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms",
        r.mean_ms, r.p50_ms, r.p99_ms, r.max_ms
    );
}

/// Self-contained CI smoke: boot, burst, drain, verify, exit.
fn cmd_smoke(args: &Args) -> Result<(), String> {
    let socket = std::env::temp_dir().join(format!("elpc-smoke-{}.sock", std::process::id()));
    // CI marks this leg with SERVING_SMOKE=1; a value > 1 scales the burst
    // without touching the workflow's flag list.
    let env_requests = std::env::var("SERVING_SMOKE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 1);
    let requests: usize = match env_requests {
        Some(n) => n,
        None => args.num("requests", 48)?,
    };
    let connections: usize = args.num("connections", 4)?;
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: args.num("workers", 0)?,
            queue_capacity: args.num("queue-capacity", ServerConfig::default().queue_capacity)?,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "smoke: daemon on {} ({} workers)",
        socket.display(),
        server.worker_count()
    );

    let instances = gen_instances(args, 1)?;
    let cfg = LoadConfig {
        connections,
        requests,
        ..LoadConfig::default()
    };
    let report = run_open_loop(&socket, &instances, &cfg).map_err(|e| format!("loadgen: {e}"))?;
    print_report(&report);

    let mut client = Client::connect(&socket).map_err(|e| format!("connect: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let finale = server.shutdown();
    println!(
        "smoke: drained; requests={} completed={} errors={} timeouts={} coalesced={}",
        finale.requests, finale.completed, finale.errors, finale.timeouts, finale.coalesced
    );

    if report.ok != requests {
        return Err(format!(
            "expected {requests} successful replies, got {}",
            report.ok
        ));
    }
    if stats.completed != requests as u64 {
        return Err(format!(
            "server saw {} completions, expected {requests}",
            stats.completed
        ));
    }
    if finale.queue_depth != 0 {
        return Err(format!(
            "drain left queue_depth={} (expected 0)",
            finale.queue_depth
        ));
    }
    if socket.exists() {
        return Err("drain left the socket file behind".into());
    }
    // A fixed-topology burst must coalesce onto exactly one closure build.
    if finale.bank_misses != 1 {
        return Err(format!(
            "expected exactly one cold closure build, saw {} misses",
            finale.bank_misses
        ));
    }
    if finale.bank_hits + finale.bank_misses != requests as u64 {
        return Err(format!(
            "bank stats not exact: {} hits + {} misses != {requests} requests",
            finale.bank_hits, finale.bank_misses
        ));
    }
    println!("smoke: OK");
    Ok(())
}

/// Self-contained CI chaos smoke (the `CHAOS_SMOKE` step), two phases:
///
/// 1. **Kill/restart**: a retrying closed-loop burst is mid-flight when
///    the daemon is torn down and rebound on the same socket. The retry
///    policy must carry every request across the restart — zero lost,
///    all answered.
/// 2. **Overload**: an unpaced open-loop burst against a 1-slot queue.
///    The daemon must shed (typed `Overloaded`) rather than queue
///    without bound, keeping `requests == accepted + shed` and
///    `accepted == completed + timeouts + errors` exact.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let socket = std::env::temp_dir().join(format!("elpc-chaos-{}.sock", std::process::id()));
    let env_requests = std::env::var("CHAOS_SMOKE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 1);
    // Floor high enough that the burst is still mid-flight when the kill
    // lands (the kill triggers on the first observed completion).
    let requests: usize = match env_requests {
        Some(n) => n,
        None => args.num("requests", 48)?,
    }
    .max(192);
    let connections: usize = args.num("connections", 4)?;
    let workers: usize = args.num("workers", 2)?;
    let instances = gen_instances(args, 1)?;

    // Phase 1: kill + restart mid-burst under a retrying client fleet.
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::bind(&socket, config.clone()).map_err(|e| format!("bind failed: {e}"))?;
    println!("chaos: daemon on {} ({workers} workers)", socket.display());
    let cfg = LoadConfig {
        connections,
        requests,
        retry: Some(RetryPolicy {
            max_attempts: 16,
            base_ms: 20,
            max_backoff_ms: 500,
            ..RetryPolicy::default()
        }),
        ..LoadConfig::default()
    };
    let (report, restarted) = std::thread::scope(|s| -> Result<_, String> {
        let burst = s.spawn(|| run_open_loop(&socket, &instances, &cfg));
        // yank the daemon the moment the burst demonstrably started, so
        // most of the request stream still lies ahead of the restart
        while server.stats().completed == 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
        let mid = server.shutdown();
        println!(
            "chaos: daemon killed mid-burst ({} completed); restarting",
            mid.completed
        );
        std::thread::sleep(Duration::from_millis(100));
        let restarted =
            Server::bind(&socket, config.clone()).map_err(|e| format!("rebind failed: {e}"))?;
        let report = burst
            .join()
            .map_err(|_| "loadgen thread panicked".to_string())?
            .map_err(|e| format!("loadgen: {e}"))?;
        Ok((report, restarted))
    })?;
    let finale = restarted.shutdown();
    print_report(&report);
    if report.lost != 0 {
        return Err(format!("{} replies lost across the restart", report.lost));
    }
    if report.ok != requests {
        return Err(format!(
            "expected all {requests} requests to survive the restart, got {} ok",
            report.ok
        ));
    }
    if finale.completed == 0 {
        return Err("restarted daemon served nothing; the kill happened too late".into());
    }
    println!(
        "chaos: restart survived; resumed daemon completed {} of {requests}",
        finale.completed
    );

    // Phase 2: open-loop overload against a tiny queue must shed, not grow.
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("overload bind failed: {e}"))?;
    let cfg = LoadConfig {
        connections: connections.max(4),
        requests: requests.max(64),
        ..LoadConfig::default()
    };
    let report = run_open_loop(&socket, &instances, &cfg).map_err(|e| format!("loadgen: {e}"))?;
    let stats = server.shutdown();
    print_report(&report);
    println!(
        "chaos: overload stats requests={} accepted={} shed={} completed={} timeouts={} errors={} max_depth={}",
        stats.requests,
        stats.accepted,
        stats.shed,
        stats.completed,
        stats.timeouts,
        stats.errors,
        stats.max_queue_depth
    );
    if stats.requests != stats.accepted + stats.shed {
        return Err("admission accounting broken: requests != accepted + shed".into());
    }
    if stats.accepted != stats.completed + stats.timeouts + stats.errors {
        return Err("drain accounting broken: accepted != completed + timeouts + errors".into());
    }
    if stats.max_queue_depth > 1 {
        return Err(format!(
            "queue bound violated: max depth {} > capacity 1",
            stats.max_queue_depth
        ));
    }
    if stats.shed == 0 {
        return Err("overload burst never shed; the bound did nothing".into());
    }
    if report.shed as u64 != stats.shed {
        return Err(format!(
            "client saw {} shed replies, server counted {}",
            report.shed, stats.shed
        ));
    }
    println!("chaos: OK");
    Ok(())
}

fn usage() -> String {
    "usage: elpc-serve <serve|ping|solve|stats|shutdown|loadgen|smoke|chaos> [--flag value ...]\n\
     run with a subcommand; see crate docs for the flag list"
        .to_string()
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let run = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "serve" => cmd_serve(&args),
        "ping" => cmd_ping(&args),
        "solve" => cmd_solve(&args),
        "stats" => cmd_stats(&args),
        "shutdown" => cmd_shutdown(&args),
        "loadgen" => cmd_loadgen(&args),
        "smoke" => cmd_smoke(&args),
        "chaos" => cmd_chaos(&args),
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    });
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("elpc-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
