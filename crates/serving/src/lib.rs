//! # elpc-serving — mapping-as-a-service
//!
//! The ops layer over the solver library: a long-running daemon
//! (`elpc-serve`) that accepts solve/remap requests over a length-prefixed
//! JSON protocol on a local Unix socket, multiplexes them onto a
//! work-pulling worker pool sharing one [`elpc_workloads::ClosureBank`],
//! and **coalesces** concurrent requests hitting the same topology
//! fingerprint × cost model so each all-pairs closure is built exactly
//! once per batch.
//!
//! * [`protocol`] — the wire format: framing, request/response types, and
//!   every typed error a server can answer with;
//! * [`server`] — the daemon core: acceptor, connection readers, the
//!   crossbeam-channel worker pool, the request coalescer, drain/shutdown;
//! * [`client`] — a small blocking client library (see its runnable
//!   example) used by the CLI subcommands and the tests;
//! * [`loadgen`] — an open-loop load generator (paced sends decoupled from
//!   completions) behind the `serving` bench and the CI smoke run.
//!
//! Solver execution stays decoupled from the request lifecycle: workers
//! run the unchanged 18-entry `elpc_mapping` registry against bank-seeded
//! [`elpc_mapping::SolveContext`]s, so a served solve is bit-identical to
//! calling the registry directly (the loopback suite pins this).
//!
//! See ARCHITECTURE.md § "Serving lifecycle" for the request lifecycle,
//! the coalescing rule, and drain semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use loadgen::{LoadConfig, LoadReport};
pub use protocol::{
    FrameError, RemapReply, RemapRequest, Request, RequestFrame, Response, ResponseFrame,
    ServeError, SolveErrorKind, SolveReply, SolveRequest, StatsReply,
};
pub use server::{Server, ServerConfig};
