//! A small blocking client for the `elpc-serve` daemon.
//!
//! One [`Client`] wraps one connection and issues synchronous
//! request/response exchanges; open several clients for concurrency (the
//! server multiplexes them onto its worker pool). The CLI subcommands and
//! the serving test harness are both built on this type.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, RemapReply, RemapRequest,
    Request, RequestFrame, Response, ServeError, SolveReply, SolveRequest, StatsReply,
};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A frame could not be read or decoded.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server(ServeError),
    /// The server answered with a response of the wrong kind.
    Unexpected {
        /// The response kind the call was waiting for.
        expected: &'static str,
        /// Debug rendering of what arrived instead.
        got: String,
    },
    /// The server closed the connection before answering.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            ClientError::Closed => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a running `elpc-serve` daemon.
///
/// # Examples
///
/// Boot an in-process server, solve over the socket, and check the answer
/// matches a direct registry call:
///
/// ```
/// use elpc_serving::{Client, Server, ServerConfig, SolveRequest};
/// use elpc_mapping::{solver, CostModel, SolveContext};
/// use elpc_workloads::InstanceSpec;
///
/// let socket = std::env::temp_dir().join(format!("elpc-doc-{}.sock", std::process::id()));
/// let server = Server::bind(&socket, ServerConfig::default()).unwrap();
///
/// let inst = InstanceSpec::sized(4, 12, 22).generate(7).unwrap();
/// let mut client = Client::connect(&socket).unwrap();
/// client.ping().unwrap();
/// let reply = client
///     .solve(SolveRequest {
///         solver: "elpc_delay_routed".into(),
///         cost: CostModel::default(),
///         threads: 1,
///         timeout_ms: None,
///         instance: inst.clone(),
///     })
///     .unwrap();
///
/// let ctx = SolveContext::with_threads(inst.as_instance(), CostModel::default(), 1);
/// let direct = solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
/// assert_eq!(reply.assignment, direct.assignment);
/// assert_eq!(reply.objective_ms, direct.objective_ms);
///
/// client.shutdown().unwrap();
/// server.shutdown();
/// ```
pub struct Client {
    stream: UnixStream,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon listening on `path`.
    pub fn connect<P: AsRef<Path>>(path: P) -> std::io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, body: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let json = encode_request(&RequestFrame { id, body });
        write_frame(&mut self.stream, json.as_bytes())?;
        loop {
            let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Closed)?;
            let frame = decode_response(&payload)?;
            // A synchronous client only ever has one request outstanding;
            // skip anything stale rather than misattributing it.
            if frame.id == id {
                return Ok(frame.body);
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs a solve on the daemon and returns its reply.
    pub fn solve(&mut self, req: SolveRequest) -> Result<SolveReply, ClientError> {
        match self.request(Request::Solve(req))? {
            Response::Solved(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Solved", &other)),
        }
    }

    /// Runs a remap on the daemon and returns its reply.
    pub fn remap(&mut self, req: RemapRequest) -> Result<RemapReply, ClientError> {
        match self.request(Request::Remap(req))? {
            Response::Remapped(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Remapped", &other)),
        }
    }

    /// Fetches a statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}
