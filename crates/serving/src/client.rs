//! A small blocking client for the `elpc-serve` daemon.
//!
//! One [`Client`] wraps one connection and issues synchronous
//! request/response exchanges; open several clients for concurrency (the
//! server multiplexes them onto its worker pool). The CLI subcommands and
//! the serving test harness are both built on this type.
//!
//! The client survives a flaky daemon:
//!
//! * solve/remap calls derive **socket read/write timeouts** from the
//!   request's own deadline, so a dead peer can never hang a deadlined
//!   call forever;
//! * any transport failure marks the connection broken and the next call
//!   transparently **reconnects** (the daemon may have restarted under
//!   the same socket path);
//! * [`Client::solve_with_retry`] layers a deterministic, seeded
//!   [`RetryPolicy`] (exponential backoff with jitter) on top, honoring
//!   the `retry_after_ms` hint carried by [`ServeError::Overloaded`]
//!   shed replies.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, RemapReply, RemapRequest,
    Request, RequestFrame, Response, ServeError, SolveReply, SolveRequest, StatsReply,
};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Socket-timeout headroom over a request's deadline: the server answers
/// a typed `Timeout` itself at the deadline, so the raw socket timeout
/// only fires when the daemon is actually gone or wedged.
const DEADLINE_SLACK_MS: u64 = 500;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A frame could not be read or decoded.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server(ServeError),
    /// The server answered with a response of the wrong kind.
    Unexpected {
        /// The response kind the call was waiting for.
        expected: &'static str,
        /// Debug rendering of what arrived instead.
        got: String,
    },
    /// The server closed the connection before answering.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
            ClientError::Closed => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True when retrying the same request can plausibly succeed: a
    /// transport failure (the daemon may be restarting), a shed
    /// [`ServeError::Overloaded`] reply, or a drain-window
    /// [`ServeError::ShuttingDown`]. Typed solve failures, malformed
    /// requests, and deadline timeouts are final answers.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Frame(_)
                | ClientError::Closed
                | ClientError::Server(ServeError::Overloaded { .. })
                | ClientError::Server(ServeError::ShuttingDown)
        )
    }

    /// The server's backoff hint, when this error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Server(ServeError::Overloaded { retry_after_ms }) => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// Deterministic exponential-backoff-with-jitter schedule for
/// [`Client::solve_with_retry`].
///
/// The jitter is drawn from a SplitMix64 hash of `(seed, attempt)` — the
/// same policy always produces the same wait sequence, so retry behavior
/// in tests and benchmarks is reproducible, while different seeds
/// decorrelate concurrent clients and avoid a retry stampede.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, initial try included (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_ms: u64,
    /// Cap on the exponential backoff (pre-jitter).
    pub max_backoff_ms: u64,
    /// Fraction of the backoff randomized away, in `[0, 1]`: the wait is
    /// drawn from `[backoff × (1 - jitter), backoff]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_ms: 10,
            max_backoff_ms: 2_000,
            jitter: 0.5,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), in milliseconds.
    ///
    /// Exponential in `attempt` from [`base_ms`](RetryPolicy::base_ms),
    /// capped at [`max_backoff_ms`](RetryPolicy::max_backoff_ms),
    /// jittered downward deterministically, and never below the server's
    /// `server_hint_ms` (an [`ServeError::Overloaded`] reply's
    /// `retry_after_ms` estimate of when capacity frees up).
    pub fn backoff_ms(&self, attempt: u32, server_hint_ms: Option<u64>) -> u64 {
        let exp = self
            .base_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms.max(1));
        let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0, 1)
        let jittered = exp as f64 * (1.0 - self.jitter.clamp(0.0, 1.0) * frac);
        (jittered.round() as u64)
            .max(1)
            .max(server_hint_ms.unwrap_or(0))
    }
}

/// SplitMix64 finalizer — the same mix used by the fault-schedule
/// generator; good enough to decorrelate per-attempt jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a running `elpc-serve` daemon.
///
/// # Examples
///
/// Boot an in-process server, solve over the socket, and check the answer
/// matches a direct registry call:
///
/// ```
/// use elpc_serving::{Client, Server, ServerConfig, SolveRequest};
/// use elpc_mapping::{solver, CostModel, SolveContext};
/// use elpc_workloads::InstanceSpec;
///
/// let socket = std::env::temp_dir().join(format!("elpc-doc-{}.sock", std::process::id()));
/// let server = Server::bind(&socket, ServerConfig::default()).unwrap();
///
/// let inst = InstanceSpec::sized(4, 12, 22).generate(7).unwrap();
/// let mut client = Client::connect(&socket).unwrap();
/// client.ping().unwrap();
/// let reply = client
///     .solve(SolveRequest {
///         solver: "elpc_delay_routed".into(),
///         cost: CostModel::default(),
///         threads: 1,
///         timeout_ms: None,
///         instance: inst.clone(),
///     })
///     .unwrap();
///
/// let ctx = SolveContext::with_threads(inst.as_instance(), CostModel::default(), 1);
/// let direct = solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
/// assert_eq!(reply.assignment, direct.assignment);
/// assert_eq!(reply.objective_ms, direct.objective_ms);
///
/// client.shutdown().unwrap();
/// server.shutdown();
/// ```
pub struct Client {
    path: PathBuf,
    stream: UnixStream,
    next_id: u64,
    broken: bool,
}

impl Client {
    /// Connects to the daemon listening on `path`. The path is kept so a
    /// broken connection can be re-established transparently.
    pub fn connect<P: AsRef<Path>>(path: P) -> std::io::Result<Client> {
        let path = path.as_ref().to_path_buf();
        Ok(Client {
            stream: UnixStream::connect(&path)?,
            path,
            next_id: 1,
            broken: false,
        })
    }

    /// Re-dials the daemon's socket, replacing the current connection.
    /// Called automatically by [`Client::request`] after a transport
    /// failure; exposed for callers that want to force a fresh dial.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = UnixStream::connect(&self.path)?;
        self.broken = false;
        Ok(())
    }

    /// Re-dials only when a prior exchange broke the connection. A
    /// half-exchanged stream is never reused: its frame boundary may be
    /// mid-reply, and a late reply to a stale id must not be
    /// misattributed to a new request.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.broken {
            self.reconnect()?;
        }
        Ok(())
    }

    /// Sets socket read/write timeouts from a request deadline (`None`
    /// blocks indefinitely). The slack keeps the server's own typed
    /// `Timeout` reply the common outcome; the socket timeout is the
    /// backstop for a daemon that died mid-request.
    fn set_deadline(&mut self, timeout_ms: Option<u64>) {
        let t =
            timeout_ms.map(|ms| Duration::from_millis(ms.saturating_add(DEADLINE_SLACK_MS).max(1)));
        let _ = self.stream.set_read_timeout(t);
        let _ = self.stream.set_write_timeout(t);
    }

    /// Sends one request and blocks for its response.
    ///
    /// A transport failure (write error, short read, torn frame, EOF)
    /// marks the connection broken; the next call reconnects before
    /// sending. The error is still surfaced — retry orchestration
    /// belongs to [`Client::solve_with_retry`] or the caller.
    pub fn request(&mut self, body: Request) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        let id = self.next_id;
        self.next_id += 1;
        let json = encode_request(&RequestFrame { id, body });
        if let Err(e) = write_frame(&mut self.stream, json.as_bytes()) {
            self.broken = true;
            return Err(e.into());
        }
        loop {
            let payload = match read_frame(&mut self.stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => {
                    self.broken = true;
                    return Err(ClientError::Closed);
                }
                Err(e) => {
                    self.broken = true;
                    return Err(e.into());
                }
            };
            let frame = decode_response(&payload)?;
            // A synchronous client only ever has one request outstanding;
            // skip anything stale rather than misattributing it.
            if frame.id == id {
                return Ok(frame.body);
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs a solve on the daemon and returns its reply. Socket timeouts
    /// are derived from the request's own deadline.
    pub fn solve(&mut self, req: SolveRequest) -> Result<SolveReply, ClientError> {
        self.ensure_connected()?;
        self.set_deadline(req.timeout_ms);
        match self.request(Request::Solve(req))? {
            Response::Solved(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Solved", &other)),
        }
    }

    /// Like [`Client::solve`], but retries transient failures (shed
    /// replies, daemon restarts, broken pipes) under `policy`,
    /// reconnecting as needed and sleeping the policy's deterministic
    /// backoff — never less than a shed reply's `retry_after_ms` hint —
    /// between attempts. Non-transient errors and exhausted attempts
    /// surface the last error unchanged.
    pub fn solve_with_retry(
        &mut self,
        req: &SolveRequest,
        policy: &RetryPolicy,
    ) -> Result<SolveReply, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.solve(req.clone()) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts.max(1) => {
                    let wait = policy.backoff_ms(attempt, e.retry_after_ms());
                    std::thread::sleep(Duration::from_millis(wait));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Liveness probe with retries: waits out a daemon restart under
    /// `policy`. Useful to block until a (re)spawned daemon is up.
    pub fn ping_with_retry(&mut self, policy: &RetryPolicy) -> Result<(), ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.ping() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts.max(1) => {
                    let wait = policy.backoff_ms(attempt, e.retry_after_ms());
                    std::thread::sleep(Duration::from_millis(wait));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs a remap on the daemon and returns its reply. Socket timeouts
    /// are derived from the request's own deadline.
    pub fn remap(&mut self, req: RemapRequest) -> Result<RemapReply, ClientError> {
        self.ensure_connected()?;
        self.set_deadline(req.solve.timeout_ms);
        match self.request(Request::Remap(req))? {
            Response::Remapped(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("Remapped", &other)),
        }
    }

    /// Fetches a statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = (0..6).map(|i| p.backoff_ms(i, None)).collect();
        let b: Vec<u64> = (0..6).map(|i| p.backoff_ms(i, None)).collect();
        assert_eq!(a, b, "same policy must replay the same schedule");
        let other = RetryPolicy {
            seed: 1234,
            ..RetryPolicy::default()
        };
        let c: Vec<u64> = (0..6).map(|i| other.backoff_ms(i, None)).collect();
        assert_ne!(a, c, "different seeds must decorrelate");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        // jitter off: pure doubling from base_ms, capped at max_backoff_ms
        assert_eq!(p.backoff_ms(0, None), 10);
        assert_eq!(p.backoff_ms(1, None), 20);
        assert_eq!(p.backoff_ms(4, None), 160);
        assert_eq!(p.backoff_ms(12, None), 2_000);
        assert_eq!(p.backoff_ms(63, None), 2_000); // shift amount is clamped
    }

    #[test]
    fn backoff_honors_the_server_hint() {
        let p = RetryPolicy::default();
        assert!(p.backoff_ms(0, Some(5_000)) >= 5_000);
        // jittered wait stays within [backoff × (1 - jitter), backoff]
        let full = RetryPolicy {
            jitter: 0.0,
            ..p.clone()
        };
        for i in 0..8 {
            let cap = full.backoff_ms(i, None);
            let w = p.backoff_ms(i, None);
            assert!(w <= cap && w as f64 >= cap as f64 * (1.0 - p.jitter) - 1.0);
        }
    }

    #[test]
    fn transient_classification_matches_the_retry_contract() {
        use std::io;
        assert!(ClientError::Closed.is_transient());
        assert!(ClientError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_transient());
        assert!(ClientError::Server(ServeError::Overloaded { retry_after_ms: 7 }).is_transient());
        assert!(ClientError::Server(ServeError::ShuttingDown).is_transient());
        assert!(!ClientError::Server(ServeError::Timeout { waited_ms: 9 }).is_transient());
        assert!(!ClientError::Server(ServeError::UnknownSolver {
            name: "nope".into()
        })
        .is_transient());
        assert_eq!(
            ClientError::Server(ServeError::Overloaded { retry_after_ms: 7 }).retry_after_ms(),
            Some(7)
        );
        assert_eq!(ClientError::Closed.retry_after_ms(), None);
    }
}
