//! The `elpc-serve` daemon core.
//!
//! One [`Server`] owns four kinds of threads:
//!
//! * an **acceptor** blocked on the Unix listener, spawning a connection
//!   reader per client;
//! * **connection readers** that decode frames, answer `Ping`/`Stats`
//!   inline, and enqueue solve/remap work;
//! * a **worker pool** pulling jobs from one crossbeam channel, so a slow
//!   solve never blocks the accept path or other requests;
//! * the caller's thread, which owns the [`Server`] handle and drives
//!   drain/shutdown.
//!
//! All workers share one [`ClosureBank`], and concurrent requests hitting
//! the same bank key (topology fingerprint × cost model × payload set)
//! are **coalesced**: the first such request is elected *leader* and
//! builds the all-pairs closure once; the rest wait on its completion and
//! then check the deposited closure out as a bank hit. Each request calls
//! [`ClosureBank::context_for`] exactly once, so the bank's
//! `hits + misses` always equals the number of executed solve requests —
//! the soak suite pins this exactness.
//!
//! The work queue is **bounded** ([`ServerConfig::queue_capacity`]):
//! requests beyond the bound are shed with a typed
//! [`ServeError::Overloaded`] reply carrying a `retry_after_ms` hint
//! instead of queueing without limit, so an open-loop overload keeps
//! tail latency bounded. The counters keep two invariants exact:
//! `requests == accepted + shed` at all times, and once drained
//! `accepted == completed + timeouts + errors`.
//!
//! Shutdown is a **drain**: new work is refused with
//! [`ServeError::ShuttingDown`], connection readers notice the drain flag
//! within one read-timeout tick, queued work still completes and its
//! responses are written, then workers stop on sentinel jobs and the
//! socket file is removed.

use crate::protocol::{
    decode_request, encode_response, read_frame_poll, write_frame, LatencySummary, RemapReply,
    RemapRequest, Request, Response, ResponseFrame, ServeError, SolveFailure, SolveReply,
    SolveRequest, StatsReply,
};
use crossbeam::channel;
use elpc_mapping::{solver, Instance};
use elpc_workloads::bank::{bank_key, ClosureBank};
use std::collections::{HashMap, HashSet};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the solve pool (0 = one per available CPU).
    pub workers: usize,
    /// [`ClosureBank`] capacity in distinct keys.
    pub bank_capacity: usize,
    /// Read-timeout tick on connection readers; bounds how long an idle
    /// connection takes to notice a drain.
    pub read_timeout: Duration,
    /// Admission bound on queued-plus-executing work (0 = unbounded).
    /// Requests arriving when the queue is full are **shed** with a typed
    /// [`ServeError::Overloaded`] carrying a `retry_after_ms` hint instead
    /// of growing the queue without limit.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            bank_capacity: 64,
            read_timeout: Duration::from_millis(50),
            queue_capacity: 1024,
        }
    }
}

enum Job {
    Work(Box<WorkItem>),
    Stop,
}

enum WorkKind {
    Solve(SolveRequest),
    Remap(RemapRequest),
}

struct WorkItem {
    id: u64,
    kind: WorkKind,
    submitted: Instant,
    deadline: Option<Instant>,
    writer: SharedWriter,
}

type SharedWriter = Arc<parking_lot::Mutex<UnixStream>>;

/// One in-flight closure build; followers block on the condvar until the
/// leader finishes (successfully or not).
#[derive(Default)]
struct InFlight {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl InFlight {
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    coalesced: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Sum of completed-request latencies in microseconds; with
    /// `completed` this yields the mean latency the shed path's
    /// `retry_after_ms` hint is derived from without taking the
    /// latencies lock on the hot refusal path.
    latency_sum_us: AtomicU64,
    latencies: parking_lot::Mutex<Vec<f64>>,
}

struct Shared {
    path: PathBuf,
    bank: ClosureBank,
    tx: channel::Sender<Job>,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    conns: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    coalesce: StdMutex<HashMap<u64, Arc<InFlight>>>,
    /// Keys whose leader's solve never materialized a closure (a strict
    /// solver that works link-level, not on the metric closure). Such keys
    /// can never turn into bank hits, so coalescing them again would just
    /// serialize independent solves.
    no_closure: parking_lot::Mutex<HashSet<u64>>,
    read_timeout: Duration,
    workers: u64,
    queue_capacity: u64,
    stats: Counters,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// `retry_after_ms` hint answered with [`ServeError::Overloaded`]:
    /// roughly how long the current backlog takes to clear.
    fn retry_after_ms(&self) -> u64 {
        let completed = self.stats.completed.load(Ordering::Relaxed);
        let mean_ms = if completed == 0 {
            10.0
        } else {
            self.stats.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e3 / completed as f64
        };
        retry_after_hint(
            self.stats.queue_depth.load(Ordering::SeqCst),
            mean_ms,
            self.workers,
        )
    }

    fn stats_snapshot(&self) -> StatsReply {
        let bank = self.bank.stats();
        let mut sorted = self.stats.latencies.lock().clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        StatsReply {
            requests: self.stats.requests.load(Ordering::Relaxed),
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.stats.max_queue_depth.load(Ordering::Relaxed),
            workers: self.workers,
            bank_hits: bank.hits,
            bank_misses: bank.misses,
            bank_deposits: bank.deposits,
            bank_repairs: bank.repairs,
            latency: LatencySummary {
                count: sorted.len() as u64,
                p50_ms: percentile(&sorted, 0.50),
                p99_ms: percentile(&sorted, 0.99),
                max_ms: sorted.last().copied().unwrap_or(0.0),
            },
        }
    }
}

/// Backlog-drain estimate for shed replies: `depth` jobs at
/// `mean_latency_ms` each across `workers` lanes, clamped to
/// [10 ms, 10 s] so clients never busy-spin or stall for minutes on a
/// skewed sample.
fn retry_after_hint(depth: u64, mean_latency_ms: f64, workers: u64) -> u64 {
    let est = depth as f64 * mean_latency_ms / workers.max(1) as f64;
    (est.ceil() as u64).clamp(10, 10_000)
}

/// Nearest-rank percentile over an ascending slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A running solve daemon bound to a Unix socket.
///
/// Dropping the handle performs a full drain/shutdown; call
/// [`Server::shutdown`] to do it explicitly and receive the final
/// statistics snapshot.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the daemon to `path` and starts its threads.
    ///
    /// A pre-existing file at `path` is removed first (a stale socket from
    /// a crashed daemon would otherwise make the bind fail forever).
    pub fn bind<P: AsRef<Path>>(path: P, config: ServerConfig) -> std::io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let (tx, rx) = channel::unbounded::<Job>();
        let shared = Arc::new(Shared {
            path,
            bank: ClosureBank::with_capacity(config.bank_capacity.max(1)),
            tx,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conns: parking_lot::Mutex::new(Vec::new()),
            coalesce: StdMutex::new(HashMap::new()),
            no_closure: parking_lot::Mutex::new(HashSet::new()),
            read_timeout: config.read_timeout,
            workers: workers as u64,
            queue_capacity: config.queue_capacity as u64,
            stats: Counters::default(),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("elpc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("elpc-serve-accept".into())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.shared.path
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len().max(self.shared.workers as usize)
    }

    /// The shared closure bank (exposed for the soak suite's exactness
    /// assertions).
    pub fn bank(&self) -> &ClosureBank {
        &self.shared.bank
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats_snapshot()
    }

    /// True once a client has asked the daemon to exit via
    /// [`Request::Shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Blocks until a client requests shutdown, then returns (the caller
    /// still owns the handle and performs the actual [`Server::shutdown`]).
    pub fn run_until_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Drains and stops the daemon: refuses new work, completes and
    /// answers everything already queued, joins every thread, removes the
    /// socket file, and returns the final statistics.
    pub fn shutdown(mut self) -> StatsReply {
        self.shutdown_impl();
        self.shared.stats_snapshot()
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() {
            return; // already shut down
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the drain flag after every accept.
        let _ = UnixStream::connect(&self.shared.path);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection readers poll the drain flag through their read
        // timeout, so joining them bounds at one tick per connection.
        let conns: Vec<_> = std::mem::take(&mut *self.shared.conns.lock());
        for h in conns {
            let _ = h.join();
        }
        // No producers remain: everything queued ahead of the sentinels
        // still executes, then each worker consumes exactly one Stop.
        for _ in 0..self.workers.len() {
            let _ = self.shared.tx.send(Job::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.shared.path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------------
// Acceptor and connection readers
// ---------------------------------------------------------------------------

fn acceptor_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining() {
                    break; // the wake-up connection, or a drain race
                }
                let sh = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("elpc-serve-conn".into())
                    .spawn(move || connection_loop(&sh, stream));
                if let Ok(h) = spawned {
                    shared.conns.lock().push(h);
                }
            }
            Err(_) => {
                if shared.draining() {
                    break;
                }
            }
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(parking_lot::Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        let frame = match read_frame_poll(&mut reader, || shared.draining()) {
            Ok(Some(payload)) => payload,
            // Clean EOF or drain between frames; queued work for this
            // connection still answers through the writer clone.
            Ok(None) => break,
            // Truncated/oversized/io: the stream is no longer framed;
            // nothing can be answered reliably, so drop the connection.
            Err(_) => break,
        };
        let req = match decode_request(&frame) {
            Ok(f) => f,
            Err(e) => {
                // The frame boundary is intact, so answer the typed error
                // (id 0: the real id is unrecoverable) and keep serving.
                respond(
                    &writer,
                    0,
                    Response::Error(ServeError::Malformed {
                        detail: e.to_string(),
                    }),
                );
                continue;
            }
        };
        match req.body {
            Request::Ping => {
                respond(&writer, req.id, Response::Pong);
            }
            Request::Stats => {
                respond(&writer, req.id, Response::Stats(shared.stats_snapshot()));
            }
            Request::Shutdown => {
                respond(&writer, req.id, Response::ShuttingDown);
                shared.draining.store(true, Ordering::SeqCst);
                shared.shutdown_requested.store(true, Ordering::SeqCst);
                break;
            }
            Request::Solve(s) => enqueue(shared, req.id, WorkKind::Solve(s), &writer),
            Request::Remap(r) => enqueue(shared, req.id, WorkKind::Remap(r), &writer),
        }
    }
}

/// Admission control: reserves one queue slot, or refuses.
///
/// A compare-and-swap loop on `queue_depth` makes the bound exact under
/// concurrent readers — two connections racing for the last slot cannot
/// both win, so `max_queue_depth` never exceeds `queue_capacity`. On
/// refusal the caller sheds the request with [`ServeError::Overloaded`].
fn try_admit(shared: &Shared) -> Option<u64> {
    if shared.queue_capacity == 0 {
        return Some(shared.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1);
    }
    let mut cur = shared.stats.queue_depth.load(Ordering::SeqCst);
    loop {
        if cur >= shared.queue_capacity {
            return None;
        }
        match shared.stats.queue_depth.compare_exchange(
            cur,
            cur + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Some(cur + 1),
            Err(actual) => cur = actual,
        }
    }
}

fn enqueue(shared: &Arc<Shared>, id: u64, kind: WorkKind, writer: &SharedWriter) {
    if shared.draining() {
        respond(writer, id, Response::Error(ServeError::ShuttingDown));
        return;
    }
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let Some(depth) = try_admit(shared) else {
        // Queue full: shed instead of queueing without bound. The typed
        // refusal carries a backlog-drain estimate so well-behaved
        // clients back off rather than hammer.
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        respond(
            writer,
            id,
            Response::Error(ServeError::Overloaded {
                retry_after_ms: shared.retry_after_ms(),
            }),
        );
        return;
    };
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .max_queue_depth
        .fetch_max(depth, Ordering::SeqCst);
    let submitted = Instant::now();
    let timeout_ms = match &kind {
        WorkKind::Solve(s) => s.timeout_ms,
        WorkKind::Remap(r) => r.solve.timeout_ms,
    };
    let deadline = timeout_ms.map(|ms| submitted + Duration::from_millis(ms));
    let item = Box::new(WorkItem {
        id,
        kind,
        submitted,
        deadline,
        writer: Arc::clone(writer),
    });
    if shared.tx.send(Job::Work(item)).is_err() {
        // Drain raced the admission: the job will never execute, so its
        // accepted slot settles as an error to keep
        // `accepted == completed + timeouts + errors` exact.
        shared.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        respond(writer, id, Response::Error(ServeError::ShuttingDown));
    }
}

fn respond(writer: &SharedWriter, id: u64, body: Response) {
    let json = encode_response(&ResponseFrame { id, body });
    let mut w = writer.lock();
    let _ = write_frame(&mut *w, json.as_bytes());
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &channel::Receiver<Job>) {
    // `Stop` sentinels (one per worker, queued behind the remaining work
    // during drain) and a closed channel both end the loop
    while let Ok(Job::Work(item)) = rx.recv() {
        let (id, writer) = (item.id, Arc::clone(&item.writer));
        // `handle_item` already converts solver panics into typed
        // `Internal` replies; this outer net catches a panic anywhere
        // else in the request path so a poisoned job can never shrink
        // the worker pool.
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| handle_item(shared, *item)));
        if run.is_err() {
            // handle_item never reached its own accounting: settle the
            // slot as an error so queue_depth and the
            // accepted == completed + timeouts + errors invariant stay
            // exact, and still answer the client.
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            shared.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
            respond(
                &writer,
                id,
                Response::Error(ServeError::Internal {
                    detail: "worker panicked outside the solve scope".to_string(),
                }),
            );
        }
    }
}

fn handle_item(shared: &Arc<Shared>, item: WorkItem) {
    let queue_ms = item.submitted.elapsed().as_secs_f64() * 1e3;
    let body = if expired(&item) {
        Response::Error(timeout_error(&item))
    } else {
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| match &item.kind {
            WorkKind::Solve(s) => run_solve(shared, s, &item, queue_ms).map(Response::Solved),
            WorkKind::Remap(r) => {
                let repaired = try_repair(shared, r);
                run_solve(shared, &r.solve, &item, queue_ms).map(|reply| {
                    let changed = reply.assignment != r.previous;
                    Response::Remapped(RemapReply {
                        reply,
                        changed,
                        repaired,
                    })
                })
            }
        }));
        match run {
            Ok(Ok(_)) if expired(&item) => Response::Error(timeout_error(&item)),
            Ok(Ok(response)) => response,
            Ok(Err(e)) => Response::Error(e),
            Err(panic) => Response::Error(ServeError::Internal {
                detail: panic_detail(panic.as_ref()),
            }),
        }
    };
    match &body {
        Response::Error(ServeError::Timeout { .. }) => {
            shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        Response::Error(_) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            let latency_ms = item.submitted.elapsed().as_secs_f64() * 1e3;
            shared
                .stats
                .latency_sum_us
                .fetch_add((latency_ms * 1e3) as u64, Ordering::Relaxed);
            shared.stats.latencies.lock().push(latency_ms);
        }
    }
    respond(&item.writer, item.id, body);
    shared.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
}

fn expired(item: &WorkItem) -> bool {
    item.deadline.is_some_and(|d| Instant::now() >= d)
}

fn timeout_error(item: &WorkItem) -> ServeError {
    ServeError::Timeout {
        waited_ms: item.submitted.elapsed().as_millis() as u64,
    }
}

fn panic_detail(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Attempts a remap's in-place bank repair: migrates the closure banked
/// under `previous_key` to the perturbed instance's key (rebuilding only
/// the trees the delta can affect), so the solve that follows checks out
/// a **hit**. Requests without the repair fields, naming an unbanked key,
/// or carrying an empty delta fall through to the normal path — a failed
/// repair is never an error, just a cold solve. The delta is the client's
/// contract: it must be the exact perturbation between the instance it
/// banked earlier and `solve.instance`.
fn try_repair(shared: &Arc<Shared>, r: &RemapRequest) -> bool {
    let (Some(prev_key), Some(delta)) = (r.previous_key, r.delta.as_ref()) else {
        return false;
    };
    if delta.is_empty() {
        return false;
    }
    let Ok(inst) = Instance::new(
        &r.solve.instance.network,
        &r.solve.instance.pipeline,
        r.solve.instance.src,
        r.solve.instance.dst,
    ) else {
        return false; // run_solve will surface the Malformed error
    };
    shared
        .bank
        .update_in_place(prev_key, inst, r.solve.cost, delta, r.solve.threads)
        .is_some()
}

/// Runs one solve request to a reply, coalescing closure builds.
fn run_solve(
    shared: &Arc<Shared>,
    sreq: &SolveRequest,
    item: &WorkItem,
    queue_ms: f64,
) -> Result<SolveReply, ServeError> {
    let entry = solver(&sreq.solver).ok_or_else(|| ServeError::UnknownSolver {
        name: sreq.solver.clone(),
    })?;
    let inst = Instance::new(
        &sreq.instance.network,
        &sreq.instance.pipeline,
        sreq.instance.src,
        sreq.instance.dst,
    )
    .map_err(|e| ServeError::Malformed {
        detail: e.to_string(),
    })?;
    let key = bank_key(&inst, &sreq.cost);
    let start = Instant::now();
    let (coalesced, leader) = coalesce(shared, key);
    // A coalesce follower blocks on the leader's closure build and can
    // out-wait its deadline in there — the dequeue-time expiry check has
    // already passed. Answer `Timeout` before the bank checkout below:
    // an expired request must not burn a solve, and hits + misses must
    // keep counting only executed solves. Dropping the guard lets any
    // remaining followers re-elect a leader.
    if expired(item) {
        drop(leader);
        return Err(timeout_error(item));
    }
    let banked = shared.bank.contains_key(key);
    // The one and only `context_for` call this request makes: the bank's
    // hits + misses stays exactly equal to executed solve requests.
    let ctx = shared.bank.context_for(inst, sreq.cost, sreq.threads);
    let result = entry.solve(&ctx);
    if leader.is_some() {
        // Deposit BEFORE the guard drops: a racer that sees the in-flight
        // entry gone must also see the deposited closure, or it would
        // elect itself leader and build the same closure a second time.
        shared.bank.deposit(&ctx);
        if !shared.bank.contains_key(key) {
            // The solver never touched the metric closure; remember that
            // so later requests for this key skip the (useless) election.
            shared.no_closure.lock().insert(key);
        }
    }
    drop(leader);
    let solution = result.map_err(|e| ServeError::Solve(SolveFailure::from_mapping(&e)))?;
    Ok(SolveReply {
        solver: sreq.solver.clone(),
        assignment: solution.assignment,
        objective_ms: solution.objective_ms,
        banked,
        coalesced,
        queue_ms,
        solve_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Removes the in-flight entry for `key` and wakes its followers when the
/// leader finishes — on success, error, or panic (the guard drops during
/// unwinding too).
struct LeaderGuard<'a> {
    shared: &'a Shared,
    key: u64,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        let entry = self
            .shared
            .coalesce
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.key);
        if let Some(fl) = entry {
            fl.finish();
        }
    }
}

/// Coalesces this request onto any in-flight closure build for `key`.
///
/// Returns `(waited, leader_guard)`: `waited` is true when the request
/// blocked on another request's build; the guard is `Some` when this
/// request was elected leader and must build + deposit the closure.
fn coalesce<'a>(shared: &'a Shared, key: u64) -> (bool, Option<LeaderGuard<'a>>) {
    let mut waited = false;
    if shared.bank.contains_key(key) || shared.no_closure.lock().contains(&key) {
        return (waited, None);
    }
    loop {
        enum Role {
            Banked,
            Lead,
            Wait(Arc<InFlight>),
        }
        let role = {
            let mut map = shared.coalesce.lock().unwrap_or_else(|e| e.into_inner());
            if shared.bank.contains_key(key) || shared.no_closure.lock().contains(&key) {
                Role::Banked
            } else if let Some(fl) = map.get(&key) {
                Role::Wait(Arc::clone(fl))
            } else {
                map.insert(key, Arc::new(InFlight::default()));
                Role::Lead
            }
        };
        match role {
            Role::Banked => return (waited, None),
            Role::Lead => return (waited, Some(LeaderGuard { shared, key })),
            Role::Wait(fl) => {
                if !waited {
                    shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    waited = true;
                }
                fl.wait();
                // Re-check from the top: the leader may have failed before
                // depositing, in which case someone must rebuild.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn retry_after_hint_scales_and_clamps() {
        // 8 queued × 50 ms each over 4 workers ≈ 100 ms of backlog
        assert_eq!(retry_after_hint(8, 50.0, 4), 100);
        // never below 10 ms (empty queue / tiny jobs)…
        assert_eq!(retry_after_hint(0, 50.0, 4), 10);
        assert_eq!(retry_after_hint(1, 0.001, 64), 10);
        // …never above 10 s (skewed first sample), and 0 workers is safe
        assert_eq!(retry_after_hint(10_000, 5_000.0, 0), 10_000);
    }

    #[test]
    fn admission_is_exact_at_the_bound() {
        let shared = Shared {
            path: PathBuf::new(),
            bank: ClosureBank::with_capacity(1),
            tx: channel::unbounded().0,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conns: parking_lot::Mutex::new(Vec::new()),
            coalesce: StdMutex::new(HashMap::new()),
            no_closure: parking_lot::Mutex::new(HashSet::new()),
            read_timeout: Duration::from_millis(1),
            workers: 1,
            queue_capacity: 3,
            stats: Counters::default(),
        };
        assert_eq!(try_admit(&shared), Some(1));
        assert_eq!(try_admit(&shared), Some(2));
        assert_eq!(try_admit(&shared), Some(3));
        assert_eq!(try_admit(&shared), None); // full: shed
        shared.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
        assert_eq!(try_admit(&shared), Some(3)); // slot freed: admitted again
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let shared = Shared {
            path: PathBuf::new(),
            bank: ClosureBank::with_capacity(1),
            tx: channel::unbounded().0,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conns: parking_lot::Mutex::new(Vec::new()),
            coalesce: StdMutex::new(HashMap::new()),
            no_closure: parking_lot::Mutex::new(HashSet::new()),
            read_timeout: Duration::from_millis(1),
            workers: 1,
            queue_capacity: 0,
            stats: Counters::default(),
        };
        for expect in 1..=4096u64 {
            assert_eq!(try_admit(&shared), Some(expect));
        }
    }

    #[test]
    fn in_flight_wakes_all_followers() {
        let fl = Arc::new(InFlight::default());
        let joined: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let fl = Arc::clone(&fl);
                    s.spawn(move || {
                        fl.wait();
                        true
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10));
            fl.finish();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(joined, vec![true; 4]);
    }
}
