//! Property tests for the `elpc-serve` wire protocol.
//!
//! Two families:
//!
//! * **round trips** — arbitrary solve/remap requests and every response
//!   variant (including each typed error) encode→decode bit-identically:
//!   decoding and re-encoding reproduces the exact JSON payload, and where
//!   the types carry `PartialEq` the decoded value equals the original;
//! * **hostile input** — arbitrary byte soup, truncated frames, and
//!   corrupt length prefixes must come back as typed [`FrameError`]s,
//!   never a panic.

use elpc_mapping::{
    CostModel, LinkFailure, LinkPerturbation, NetworkDelta, NodeFailure, NodeId, NodePerturbation,
};
use elpc_netgraph::EdgeId;
use elpc_netsim::Link;
use elpc_serving::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, LatencySummary, RemapReply, RemapRequest, Request, RequestFrame, Response,
    ResponseFrame, ServeError, SolveErrorKind, SolveFailure, SolveReply, SolveRequest, StatsReply,
    MAX_FRAME_LEN,
};
use elpc_workloads::{InstanceSpec, ProblemInstance};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Finite (but otherwise wild) f64s: raw bit patterns when they happen to
/// be finite, a scaled fallback otherwise. Covers negatives, subnormals,
/// and huge magnitudes — everything the JSON codec must round-trip exactly.
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            (bits >> 11) as f64 * 1.25e-3
        }
    })
}

/// Strings with JSON-hostile content: quotes, backslashes, control
/// characters, non-ASCII.
fn arb_string() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'a', 'Z', '0', '_', ' ', '"', '\\', '\n', '\t', '/', '{', '}', 'é', '→', '𝕊', '\u{0}',
    ];
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    any::<u32>().prop_map(|n| NodeId(n % 1024))
}

fn arb_cost() -> impl Strategy<Value = CostModel> {
    any::<bool>().prop_map(|include_mld| CostModel { include_mld })
}

fn arb_instance() -> impl Strategy<Value = ProblemInstance> {
    (2usize..=4, 6usize..=10, any::<u64>()).prop_map(|(m, n, seed)| {
        let links = n + (seed % n as u64) as usize;
        InstanceSpec::sized(m, n, links)
            .generate(seed)
            .expect("sized specs generate")
    })
}

fn arb_solve_request() -> impl Strategy<Value = SolveRequest> {
    (
        arb_string(),
        arb_cost(),
        0usize..=8,
        (any::<bool>(), any::<u64>()),
        arb_instance(),
    )
        .prop_map(
            |(solver, cost, threads, (has_timeout, ms), instance)| SolveRequest {
                solver,
                cost,
                threads,
                timeout_ms: has_timeout.then_some(ms % 1_000_000),
                instance,
            },
        )
}

/// Perturbation deltas with wild-but-finite link/power values — the remap
/// repair fields must round-trip exactly like every other payload.
fn arb_delta() -> impl Strategy<Value = NetworkDelta> {
    (
        prop::collection::vec(
            (
                any::<u32>(),
                arb_node(),
                arb_node(),
                arb_finite_f64(),
                arb_finite_f64(),
            ),
            0..3,
        ),
        prop::collection::vec((arb_node(), arb_finite_f64(), arb_finite_f64()), 0..3),
    )
        .prop_map(|(links, nodes)| NetworkDelta {
            links: links
                .into_iter()
                .map(|(e, src, dst, old_bw, new_bw)| LinkPerturbation {
                    edge: EdgeId(e % 64),
                    src,
                    dst,
                    old: Link::new(old_bw.abs().max(1.0), 0.1),
                    new: Link::new(new_bw.abs().max(1.0), 0.2),
                })
                .collect(),
            nodes: nodes
                .into_iter()
                .map(|(node, old_power, new_power)| NodePerturbation {
                    node,
                    old_power,
                    new_power,
                })
                .collect(),
            // Failure payloads ride the same wire; exercised separately in
            // arb_failure_delta to keep this generator's tuple small.
            link_failures: Vec::new(),
            node_failures: Vec::new(),
        })
}

/// Deltas carrying failure payloads: the failover repair fields must
/// round-trip exactly like perturbations do.
fn arb_failure_delta() -> impl Strategy<Value = NetworkDelta> {
    (
        prop::collection::vec(
            (any::<u32>(), arb_node(), arb_node(), arb_finite_f64()),
            0..3,
        ),
        prop::collection::vec((arb_node(), arb_finite_f64()), 0..3),
    )
        .prop_map(|(links, nodes)| NetworkDelta {
            links: Vec::new(),
            nodes: Vec::new(),
            link_failures: links
                .into_iter()
                .map(|(e, src, dst, old_bw)| LinkFailure {
                    edge: EdgeId(e % 64),
                    src,
                    dst,
                    old: Link::new(old_bw.abs().max(1.0), 0.1),
                })
                .collect(),
            node_failures: nodes
                .into_iter()
                .map(|(node, old_power)| NodeFailure {
                    node,
                    old_power: old_power.abs().max(1.0),
                })
                .collect(),
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..6,
        arb_solve_request(),
        prop::collection::vec(arb_node(), 0..6),
        (any::<bool>(), any::<u64>()),
        ((any::<bool>(), arb_delta()), arb_failure_delta()),
    )
        .prop_map(
            |(sel, solve, previous, (has_key, key), ((has_delta, delta), failures))| match sel {
                0 => Request::Ping,
                1 => Request::Solve(solve),
                2 => Request::Remap(RemapRequest {
                    solve,
                    previous,
                    previous_key: has_key.then_some(key),
                    delta: has_delta.then_some(delta),
                }),
                3 => Request::Remap(RemapRequest {
                    solve,
                    previous,
                    previous_key: has_key.then_some(key),
                    delta: Some(failures),
                }),
                4 => Request::Stats,
                _ => Request::Shutdown,
            },
        )
}

fn arb_solve_reply() -> impl Strategy<Value = SolveReply> {
    (
        arb_string(),
        prop::collection::vec(arb_node(), 0..8),
        (arb_finite_f64(), arb_finite_f64(), arb_finite_f64()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(solver, assignment, (objective_ms, queue_ms, solve_ms), (banked, coalesced))| {
                SolveReply {
                    solver,
                    assignment,
                    objective_ms,
                    banked,
                    coalesced,
                    queue_ms,
                    solve_ms,
                }
            },
        )
}

fn arb_stats_reply() -> impl Strategy<Value = StatsReply> {
    (
        prop::collection::vec(any::<u64>(), 14..15),
        (arb_finite_f64(), arb_finite_f64(), arb_finite_f64()),
        any::<u64>(),
    )
        .prop_map(|(counts, (p50_ms, p99_ms, max_ms), lat_count)| StatsReply {
            requests: counts[0],
            accepted: counts[1],
            shed: counts[2],
            completed: counts[3],
            errors: counts[4],
            timeouts: counts[5],
            coalesced: counts[6],
            queue_depth: counts[7],
            max_queue_depth: counts[8],
            workers: counts[9],
            bank_hits: counts[10],
            bank_misses: counts[11],
            bank_deposits: counts[12],
            bank_repairs: counts[13],
            latency: LatencySummary {
                count: lat_count,
                p50_ms,
                p99_ms,
                max_ms,
            },
        })
}

/// Every [`ServeError`] variant, every [`SolveErrorKind`] kind.
fn arb_serve_error() -> impl Strategy<Value = ServeError> {
    (0u8..7, arb_string(), any::<u64>(), 0u8..6).prop_map(|(sel, text, num, kind_sel)| {
        let kind = match kind_sel {
            0 => SolveErrorKind::Infeasible,
            1 => SolveErrorKind::InvalidMapping,
            2 => SolveErrorKind::Network,
            3 => SolveErrorKind::Pipeline,
            4 => SolveErrorKind::BadConfig,
            _ => SolveErrorKind::BudgetExhausted { budget: num },
        };
        match sel {
            0 => ServeError::UnknownSolver { name: text },
            1 => ServeError::Solve(SolveFailure {
                kind,
                message: text,
            }),
            2 => ServeError::Timeout { waited_ms: num },
            3 => ServeError::Malformed { detail: text },
            4 => ServeError::ShuttingDown,
            5 => ServeError::Overloaded {
                retry_after_ms: num,
            },
            _ => ServeError::Internal { detail: text },
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..6,
        arb_solve_reply(),
        arb_stats_reply(),
        arb_serve_error(),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(sel, reply, stats, error, (changed, repaired))| match sel {
                0 => Response::Pong,
                1 => Response::Solved(reply),
                2 => Response::Remapped(RemapReply {
                    reply,
                    changed,
                    repaired,
                }),
                3 => Response::Stats(stats),
                4 => Response::ShuttingDown,
                _ => Response::Error(error),
            },
        )
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Requests (which carry a whole `ProblemInstance` and thus have no
    /// `PartialEq`) round-trip bit-identically at the JSON level: decoding
    /// and re-encoding reproduces the exact payload string.
    #[test]
    fn requests_reencode_bit_identically(id in any::<u64>(), body in arb_request()) {
        let frame = RequestFrame { id, body };
        let json = encode_request(&frame);
        let decoded = decode_request(json.as_bytes()).expect("own encoding decodes");
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(encode_request(&decoded), json);
    }

    /// Responses round-trip to equal values AND identical bytes.
    #[test]
    fn responses_roundtrip_exactly(id in any::<u64>(), body in arb_response()) {
        let frame = ResponseFrame { id, body };
        let json = encode_response(&frame);
        let decoded = decode_response(json.as_bytes()).expect("own encoding decodes");
        prop_assert_eq!(decoded.id, frame.id);
        prop_assert_eq!(&decoded.body, &frame.body);
        prop_assert_eq!(encode_response(&decoded), json);
    }

    /// A full frame survives the wire layer too: write_frame → read_frame
    /// hands back the exact payload bytes.
    #[test]
    fn framing_preserves_payload_bytes(id in any::<u64>(), body in arb_request()) {
        let json = encode_request(&RequestFrame { id, body });
        let mut wire = Vec::new();
        write_frame(&mut wire, json.as_bytes()).expect("vec write");
        let mut r = &wire[..];
        let payload = read_frame(&mut r).expect("framed").expect("one frame");
        prop_assert_eq!(payload, json.into_bytes());
        prop_assert!(read_frame(&mut r).expect("clean tail").is_none());
    }
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup through the frame reader: typed error or a
    /// (possibly nonsensical) frame, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut r = &bytes[..];
        match read_frame(&mut r) {
            Ok(_) => {}
            Err(FrameError::Truncated { expected, got }) => prop_assert!(got < expected),
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert!(len > max);
                prop_assert_eq!(max, MAX_FRAME_LEN);
            }
            Err(e) => panic!("unexpected frame error from a byte slice: {e}"),
        }
    }

    /// Arbitrary byte soup through the JSON decoders: typed error, never a
    /// panic. (A random payload passing JSON + shape validation is
    /// astronomically unlikely; any error variant is acceptable.)
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Truncating a valid frame at any interior point yields `Truncated`
    /// with honest byte counts; truncating to zero bytes is a clean EOF.
    #[test]
    fn truncated_frames_are_rejected_with_typed_errors(
        id in any::<u64>(),
        body in arb_request(),
        cut_sel in any::<u64>(),
    ) {
        let json = encode_request(&RequestFrame { id, body });
        let mut wire = Vec::new();
        write_frame(&mut wire, json.as_bytes()).expect("vec write");
        let cut = (cut_sel % wire.len() as u64) as usize; // 0..wire.len()-1: always truncating
        let mut r = &wire[..cut];
        if cut == 0 {
            prop_assert!(read_frame(&mut r).expect("clean EOF").is_none());
        } else {
            match read_frame(&mut r) {
                Err(FrameError::Truncated { expected, got }) => {
                    prop_assert!(got < expected);
                    prop_assert_eq!(got, cut);
                }
                other => panic!("expected Truncated at cut {cut}, got {other:?}"),
            }
        }
    }

    /// Corrupting the length prefix of a valid frame never panics: the
    /// reader answers TooLarge, Truncated, or (for a shorter-but-valid
    /// prefix) a reinterpreted frame — and in that last case the decoder
    /// still only returns typed errors.
    #[test]
    fn corrupt_length_prefixes_stay_typed(
        id in any::<u64>(),
        body in arb_request(),
        prefix in any::<u32>(),
    ) {
        let json = encode_request(&RequestFrame { id, body });
        let mut wire = Vec::new();
        write_frame(&mut wire, json.as_bytes()).expect("vec write");
        wire[..4].copy_from_slice(&prefix.to_be_bytes());
        let mut r = &wire[..];
        match read_frame(&mut r) {
            Ok(Some(payload)) => {
                let _ = decode_request(&payload); // typed result either way
            }
            Ok(None) => panic!("non-empty wire cannot be a clean EOF"),
            Err(FrameError::TooLarge { len, .. }) => {
                prop_assert!(len > MAX_FRAME_LEN);
            }
            Err(FrameError::Truncated { expected, got }) => {
                // counts include the 4 header bytes already consumed
                prop_assert_eq!(expected, prefix as usize + 4);
                prop_assert_eq!(got, json.len() + 4);
            }
            Err(e) => panic!("unexpected error for corrupt prefix: {e}"),
        }
    }
}

/// Non-property pin: the `u32::MAX` prefix (the classic fuzzer find) is
/// rejected before any allocation happens.
#[test]
fn max_prefix_is_rejected_cheaply() {
    let mut wire = u32::MAX.to_be_bytes().to_vec();
    wire.push(0);
    let mut r = &wire[..];
    assert!(matches!(
        read_frame(&mut r),
        Err(FrameError::TooLarge { .. })
    ));
}
