//! The SolveContext payoff bench: cold solves (fresh context per solve —
//! the pre-refactor behavior, every solver recomputing the routed metric
//! closure) vs shared-context solves (one closure per instance) for every
//! registered algorithm on a 50-node topology, plus the full roster both
//! ways. The `BENCH_context_reuse.json` artifact tracks the speedup across
//! commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{registry, CostModel, SolveContext};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_context_reuse(c: &mut Criterion) {
    let cost = CostModel::default();
    // 50-node topology, pipeline long enough that the routed DPs touch
    // many distinct payload sizes
    let inst_owned = InstanceSpec::sized(16, 50, 220).generate(0xC0DE).unwrap();
    let inst = inst_owned.as_instance();
    // exact solvers are exponential; bench the polynomial roster
    let roster: Vec<_> = registry()
        .iter()
        .copied()
        .filter(|s| !s.name().starts_with("exact"))
        .collect();

    let mut group = c.benchmark_group("context_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for entry in &roster {
        group.bench_with_input(BenchmarkId::new("cold", entry.name()), entry, |b, entry| {
            b.iter(|| {
                let ctx = SolveContext::new(inst, cost);
                black_box(entry.solve(&ctx))
            })
        });
        let warm = SolveContext::new(inst, cost);
        let _ = entry.solve(&warm); // populate the closure
        group.bench_with_input(
            BenchmarkId::new("shared", entry.name()),
            entry,
            |b, entry| b.iter(|| black_box(entry.solve(&warm))),
        );
    }

    // the comparison-harness shape: the whole roster on one instance
    group.bench_function("roster_cold_context_per_solver", |b| {
        b.iter(|| {
            for entry in &roster {
                let ctx = SolveContext::new(inst, cost);
                black_box(entry.solve(&ctx).ok());
            }
        })
    });
    group.bench_function("roster_one_shared_context", |b| {
        b.iter(|| {
            let ctx = SolveContext::new(inst, cost);
            for entry in &roster {
                black_box(entry.solve(&ctx).ok());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_context_reuse);
criterion_main!(benches);
