//! The SolveContext payoff bench: cold solves (fresh context per solve —
//! the pre-refactor behavior, every solver recomputing the routed metric
//! closure) vs shared-context solves (one closure per instance) for every
//! registered algorithm on a 50-node topology, plus the full roster both
//! ways, plus the **context_parallel** tier — serial vs multi-threaded
//! `par_warm` closure builds, a parallel-warm cold solve, and a
//! `ClosureBank` checkout solve (cross-instance reuse). The
//! `BENCH_context_reuse.json` artifact tracks all of it across commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{registry, solver, CostModel, MetricClosure, NodeId, SolveContext};
use elpc_workloads::{ClosureBank, InstanceSpec};
use std::hint::black_box;
use std::time::Duration;

fn bench_context_reuse(c: &mut Criterion) {
    let cost = CostModel::default();
    // 50-node topology, pipeline long enough that the routed DPs touch
    // many distinct payload sizes
    let inst_owned = InstanceSpec::sized(16, 50, 220).generate(0xC0DE).unwrap();
    let inst = inst_owned.as_instance();
    // exact solvers are exponential; bench the polynomial roster
    let roster: Vec<_> = registry()
        .iter()
        .copied()
        .filter(|s| !s.name().starts_with("exact"))
        .collect();

    let mut group = c.benchmark_group("context_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for entry in &roster {
        group.bench_with_input(BenchmarkId::new("cold", entry.name()), entry, |b, entry| {
            b.iter(|| {
                let ctx = SolveContext::new(inst, cost);
                black_box(entry.solve(&ctx))
            })
        });
        let warm = SolveContext::new(inst, cost);
        let _ = entry.solve(&warm); // populate the closure
        group.bench_with_input(
            BenchmarkId::new("shared", entry.name()),
            entry,
            |b, entry| b.iter(|| black_box(entry.solve(&warm))),
        );
    }

    // --- context_parallel: intra-solve parallel tree builds --------------
    // the full closure block the routed DPs consult, built serially vs on
    // all CPUs (each iteration starts from an empty closure)
    let sources: Vec<NodeId> = inst_owned.network.node_ids().collect();
    let payloads: Vec<f64> = (1..inst_owned.pipeline.len())
        .map(|j| inst_owned.pipeline.input_bytes(j))
        .collect();
    for (label, threads) in [("serial_t1", 1usize), ("parallel_t0", 0usize)] {
        group.bench_with_input(
            BenchmarkId::new("context_parallel_warm", label),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mc = MetricClosure::new(&inst_owned.network, cost);
                    black_box(mc.par_warm(&sources, &payloads, threads))
                })
            },
        );
    }
    // a cold routed-DP solve, serial-lazy vs parallel-warm context
    for (label, threads) in [("solve_serial_t1", 1usize), ("solve_parallel_t0", 0usize)] {
        group.bench_with_input(
            BenchmarkId::new("context_parallel_warm", label),
            &threads,
            |b, &threads| {
                let s = solver("elpc_delay_routed").expect("registered");
                b.iter(|| {
                    let ctx = SolveContext::with_threads(inst, cost, threads);
                    black_box(s.solve(&ctx).ok())
                })
            },
        );
    }
    // cross-instance reuse: a bank-seeded solve skips the build entirely
    let bank = ClosureBank::new();
    {
        let seed_ctx = bank.context_for(inst, cost, 0);
        let _ = solver("elpc_delay_routed")
            .expect("registered")
            .solve(&seed_ctx);
        bank.deposit(&seed_ctx);
    }
    group.bench_function("context_parallel_warm/solve_banked", |b| {
        let s = solver("elpc_delay_routed").expect("registered");
        b.iter(|| {
            let ctx = bank.context_for(inst, cost, 1);
            black_box(s.solve(&ctx).ok())
        })
    });

    // the comparison-harness shape: the whole roster on one instance
    group.bench_function("roster_cold_context_per_solver", |b| {
        b.iter(|| {
            for entry in &roster {
                let ctx = SolveContext::new(inst, cost);
                black_box(entry.solve(&ctx).ok());
            }
        })
    });
    group.bench_function("roster_one_shared_context", |b| {
        b.iter(|| {
            let ctx = SolveContext::new(inst, cost);
            for entry in &roster {
                black_box(entry.solve(&ctx).ok());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_context_reuse);
criterion_main!(benches);
