//! Incremental closure repair vs full rebuild under link churn.
//!
//! The `elpc_mapping::delta` module's reason to exist: when a few links
//! drift, the bank no longer rebuilds the all-pairs routed closure from
//! scratch — it keeps every tree the perturbation cannot affect and
//! rebuilds only the stale sources. This bench measures that gap on
//! 200- and 1000-node random topologies under 1/5/20-link perturbations,
//! verifies the repaired closure is byte-identical to a cold build of the
//! perturbed network, and commits the ratio to `BENCH_churn.json`.
//! `tests/bench_artifacts.rs` pins a ≥5× repair speedup for ≤5-link
//! perturbations at 1000 nodes.
//!
//! Churn concentrates on the *slowest* links (the paper's time-varying
//! load story: loaded links get more loaded) — those are also exactly the
//! links shortest-path trees avoid, so the kept majority is large. The
//! perturbation degrades them further (×0.7 bandwidth), which can never
//! make a degraded link newly competitive.
//!
//! Not a criterion bench: each row times two whole-closure operations a
//! handful of times and keeps the best, so this target has `harness =
//! false` and writes its artifact directly.
//!
//! ```text
//! cargo bench -p elpc-bench --bench churn
//! ```

use elpc_mapping::delta::repair_closure;
use elpc_mapping::{CostModel, EdgeId, MetricClosure, NetworkDelta, NodeId};
use elpc_netsim::{Link, Network};
use elpc_workloads::InstanceSpec;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

const MODULES: usize = 5;
const REPEATS: usize = 3;
const BW_SCALE: f64 = 0.7;

#[derive(Debug, Serialize, Deserialize)]
struct ChurnRow {
    nodes: usize,
    links: usize,
    /// Undirected links degraded between the banked and the live network.
    perturbed_links: usize,
    /// Cached trees in the closure (sources × distinct payloads).
    total_trees: usize,
    /// Trees the invalidation rule had to rebuild.
    rebuilt_trees: usize,
    /// Best-of-N full cold rebuild of the perturbed network's closure.
    full_rebuild_ms: f64,
    /// Best-of-N in-place repair (export + decide + rebuild stale).
    repair_ms: f64,
    /// `full_rebuild_ms / repair_ms` — the committed floor is ≥ 5x for
    /// 1000-node rows with ≤ 5 perturbed links.
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ChurnArtifact {
    group: String,
    rows: Vec<ChurnRow>,
}

/// The `count` slowest undirected links (their even directed ids): where
/// load-driven churn lands, and where shortest-path trees already aren't.
fn slowest_links(net: &Network, count: usize) -> Vec<EdgeId> {
    let mut by_bw: Vec<(f64, u32)> = (0..net.link_count())
        .map(|k| {
            let id = EdgeId((2 * k) as u32);
            (net.link(id).expect("valid link").bw_mbps, id.0)
        })
        .collect();
    by_bw.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite bw")
            .then(a.1.cmp(&b.1))
    });
    by_bw
        .iter()
        .take(count)
        .map(|&(_, id)| EdgeId(id))
        .collect()
}

fn degrade(net: &Network, links: &[EdgeId]) -> Network {
    let mut out = net.clone();
    for &id in links {
        let old = net.link(id).expect("valid link").clone();
        out.set_link_symmetric(id, Link::new(old.bw_mbps * BW_SCALE, old.mld_ms))
            .expect("same shape");
    }
    out
}

fn best_of<F: FnMut() -> f64>(mut run: F) -> f64 {
    (0..REPEATS).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let cost = CostModel::default();
    let mut rows = Vec::new();

    for &(nodes, links, seed) in &[(200usize, 460usize, 0xC0FFEE_u64), (1000, 2300, 0xB0BA)] {
        let inst = InstanceSpec::sized(MODULES, nodes, links)
            .generate(seed)
            .expect("spec generates");
        let sources: Vec<NodeId> = inst.network.node_ids().collect();
        let payloads: Vec<f64> = (1..inst.pipeline.len())
            .map(|j| inst.pipeline.input_bytes(j))
            .collect();

        // the banked state: a fully-warmed closure of the pre-churn network
        let base = MetricClosure::new(&inst.network, cost);
        let total_trees = base.par_warm(&sources, &payloads, 0);

        for &perturbed in &[1usize, 5, 20] {
            let changed = slowest_links(&inst.network, perturbed);
            let live = degrade(&inst.network, &changed);
            let delta = NetworkDelta::between(&inst.network, &live).expect("same shape");
            assert_eq!(delta.links.len(), 2 * perturbed, "both directions");

            let full_rebuild_ms = best_of(|| {
                let t0 = Instant::now();
                let cold = MetricClosure::new(&live, cost);
                let built = cold.par_warm(&sources, &payloads, 0);
                assert_eq!(built, total_trees);
                t0.elapsed().as_secs_f64() * 1e3
            });

            let mut rebuilt_trees = 0usize;
            let repair_ms = best_of(|| {
                let t0 = Instant::now();
                // everything the bank's hit-with-repair path does: export
                // the banked entry, decide per tree, rebuild the stale set
                let entries = base.export();
                let target = MetricClosure::new(&live, cost);
                let report = repair_closure(&target, &entries, &delta, 0);
                rebuilt_trees = report.rebuilt;
                assert_eq!(report.kept + report.rebuilt, total_trees);
                t0.elapsed().as_secs_f64() * 1e3
            });

            // differential check: the repaired closure is byte-identical to
            // the cold build of the perturbed network
            {
                let entries = base.export();
                let target = MetricClosure::new(&live, cost);
                repair_closure(&target, &entries, &delta, 0);
                let cold = MetricClosure::new(&live, cost);
                cold.par_warm(&sources, &payloads, 0);
                let (a, b) = (target.export(), cold.export());
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.key, y.key);
                    assert!(x
                        .tree
                        .dist
                        .iter()
                        .zip(&y.tree.dist)
                        .all(|(p, q)| p.to_bits() == q.to_bits()));
                    assert_eq!(x.tree.prev, y.tree.prev);
                }
            }

            rows.push(ChurnRow {
                nodes,
                links,
                perturbed_links: perturbed,
                total_trees,
                rebuilt_trees,
                full_rebuild_ms,
                repair_ms,
                speedup: full_rebuild_ms / repair_ms,
            });
            let row = rows.last().expect("just pushed");
            println!(
                "churn {}n/{}l ~{} links: rebuilt {}/{} trees, full {:.1}ms vs repair {:.1}ms — {:.1}x",
                nodes, links, perturbed, row.rebuilt_trees, row.total_trees,
                row.full_rebuild_ms, row.repair_ms, row.speedup
            );
        }
    }

    let artifact = ChurnArtifact {
        group: "churn".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    let back: ChurnArtifact = serde_json::from_str(&json).expect("own artifact parses");
    assert_eq!(back.group, "churn");

    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_churn.json");
    std::fs::write(&dest, json.as_bytes()).expect("write artifact");
    println!("wrote {}", dest.display());
}
