//! LNS quality gap vs evaluation budget on the Fig. 2 suite.
//!
//! ISSUE 9's tentpole claim: the budget the eval kernel freed (ISSUE 5
//! made candidate moves O(1)) is better spent on large-neighborhood
//! destroy/repair than on more tabu sweeps. This bench measures the LNS
//! delay quality gap — `lns_delay` objective divided by the routed
//! optimum (`elpc_delay_routed`) — at 1x/10x/100x of the default
//! 5000-evaluation budget, on every Fig. 2 case where the 1x gap is
//! above 1.0, and commits the curves to `BENCH_lns.json`.
//! `tests/bench_artifacts.rs` pins the artifact shape, per-case gap
//! monotonicity in the budget, and the headline floor: case 20
//! (m=100, n=220, l=2500) at the 10x tier closes to a gap of at most
//! 1.05.
//!
//! Not a criterion bench: each row is three deterministic solver runs
//! (LNS is a pure function of its seed), so this target has
//! `harness = false` and writes its artifact directly.
//!
//! ```text
//! cargo bench -p elpc-bench --bench lns
//! ```

use elpc_mapping::{lns, solver, CostModel, LnsConfig, Objective, SolveContext};
use elpc_workloads::cases;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

const BASELINE_BUDGET: usize = 5000;
const TIERS: [usize; 3] = [1, 10, 100];

#[derive(Debug, Serialize, Deserialize)]
struct LnsTier {
    /// Evaluation budget (`multiplier * 5000`).
    budget: usize,
    /// Multiplier over the default budget (1, 10, 100).
    multiplier: usize,
    /// LNS delay objective at this budget.
    objective_ms: f64,
    /// `objective_ms / routed_optimum_ms` (1.0 = optimal).
    gap: f64,
    /// Wall-clock of the solve.
    elapsed_ms: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct LnsRow {
    /// 1-based Fig. 2 case number.
    case: usize,
    modules: usize,
    nodes: usize,
    links: usize,
    /// The exact optimum of the routed free-assignment space.
    routed_optimum_ms: f64,
    /// Gap-vs-budget curve, ascending budgets.
    tiers: Vec<LnsTier>,
}

#[derive(Debug, Serialize, Deserialize)]
struct LnsArtifact {
    group: String,
    baseline_budget: usize,
    /// Only the cases whose 1x gap exceeds 1.0 — on the rest the default
    /// budget already reaches the routed optimum, so there is no curve.
    rows: Vec<LnsRow>,
}

fn run_tier(ctx: &SolveContext<'_>, multiplier: usize, optimum: f64) -> LnsTier {
    let budget = multiplier * BASELINE_BUDGET;
    let config = LnsConfig {
        budget,
        ..Default::default()
    };
    let t0 = Instant::now();
    let sol = lns::solve_lns(ctx, Objective::MinDelay, &config).expect("suite cases are feasible");
    LnsTier {
        budget,
        multiplier,
        objective_ms: sol.objective_ms,
        gap: sol.objective_ms / optimum,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn main() {
    let cost = CostModel::default();
    let routed = solver("elpc_delay_routed").expect("registered");
    let mut rows = Vec::new();

    for spec in cases::paper_cases() {
        let owned = spec.generate().expect("suite cases generate");
        let inst = owned.as_instance();
        let ctx = SolveContext::with_threads(inst, cost, 0);
        let optimum = routed
            .solve(&ctx)
            .expect("suite cases are feasible")
            .objective_ms;

        let base = run_tier(&ctx, TIERS[0], optimum);
        if base.gap <= 1.0 + 1e-9 {
            println!(
                "lns case {:02} (m={} n={} l={}): 1x gap {:.4} — already optimal, skipped",
                spec.number, spec.modules, spec.nodes, spec.links, base.gap
            );
            continue;
        }
        let mut tiers = vec![base];
        for &multiplier in &TIERS[1..] {
            tiers.push(run_tier(&ctx, multiplier, optimum));
        }
        let curve: Vec<String> = tiers
            .iter()
            .map(|t| format!("{}x {:.4} ({:.0}ms)", t.multiplier, t.gap, t.elapsed_ms))
            .collect();
        println!(
            "lns case {:02} (m={} n={} l={}): opt {:.1}ms, gap {}",
            spec.number,
            spec.modules,
            spec.nodes,
            spec.links,
            optimum,
            curve.join(" -> ")
        );
        rows.push(LnsRow {
            case: spec.number,
            modules: spec.modules,
            nodes: spec.nodes,
            links: spec.links,
            routed_optimum_ms: optimum,
            tiers,
        });
    }

    let artifact = LnsArtifact {
        group: "lns".into(),
        baseline_budget: BASELINE_BUDGET,
        rows,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    let back: LnsArtifact = serde_json::from_str(&json).expect("own artifact parses");
    assert_eq!(back.group, "lns");

    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_lns.json");
    std::fs::write(&dest, json.as_bytes()).expect("write artifact");
    println!("wrote {}", dest.display());
}
