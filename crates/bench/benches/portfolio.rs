//! The portfolio meta-solver bench: the concurrent slate race on one
//! shared context vs its best single member solving cold, per-member
//! attribution timings for the whole default delay slate, and tabu vs
//! anneal/genetic at **equal move budgets** (5000 candidate evaluations
//! each). The `BENCH_portfolio.json` artifact tracks all of it across
//! commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{metaheuristic, portfolio, solver, tabu, CostModel, Objective, SolveContext};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_portfolio(c: &mut Criterion) {
    let cost = CostModel::default();
    // the metaheuristics bench's mid-size shape: the closure build
    // dominates a cold solve, warm solves are milliseconds
    let inst_owned = InstanceSpec::sized(10, 30, 110).generate(0xA11E).unwrap();
    let inst = inst_owned.as_instance();

    let mut group = c.benchmark_group("portfolio");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // the race on a shared, already-warm context — serial and all-CPU
    // workers produce identical results; only wall time differs
    let warm = SolveContext::new(inst, cost);
    let config = portfolio::PortfolioConfig::for_objective(Objective::MinDelay);
    let _ = portfolio::solve_portfolio(&warm, Objective::MinDelay, &config);
    for (label, threads) in [("shared_serial_t1", 1usize), ("shared_parallel_t0", 0usize)] {
        let config = config.clone().threads(threads);
        group.bench_with_input(BenchmarkId::new("race", label), &config, |b, config| {
            b.iter(|| {
                black_box(portfolio::solve_portfolio(
                    &warm,
                    Objective::MinDelay,
                    config,
                ))
            })
        });
    }

    // vs the best single member paying for its own closure (the
    // pre-portfolio comparison point), and the race itself cold
    group.bench_function("race/best_member_cold", |b| {
        let s = solver("elpc_delay_routed").expect("registered");
        b.iter(|| {
            let ctx = SolveContext::new(inst, cost);
            black_box(s.solve(&ctx))
        })
    });
    group.bench_function("race/portfolio_cold_t0", |b| {
        let config = config.clone().threads(0);
        b.iter(|| {
            let ctx = SolveContext::new(inst, cost);
            black_box(portfolio::solve_portfolio(
                &ctx,
                Objective::MinDelay,
                &config,
            ))
        })
    });

    // per-member attribution: every default-slate member alone on the
    // warm context — the timing breakdown behind the race entries
    for name in portfolio::DELAY_SLATE {
        let s = solver(name).expect("registered");
        group.bench_with_input(BenchmarkId::new("member", name), &s, |b, s| {
            b.iter(|| black_box(s.solve(&warm)))
        });
    }

    // tabu vs anneal vs genetic at an equal budget of 5000 candidate
    // evaluations, all warm — the classical-baseline comparison from the
    // dispersed-computing literature
    let tabu_cfg = tabu::TabuConfig {
        iterations: 250,
        neighborhood: 20,
        ..Default::default()
    };
    let anneal_cfg = metaheuristic::AnnealConfig {
        iterations: 2500,
        restarts: 2,
        ..Default::default()
    };
    let genetic_cfg = metaheuristic::GeneticConfig {
        population: 50,
        generations: 100,
        ..Default::default()
    };
    group.bench_function("equal_budget/tabu_delay", |b| {
        b.iter(|| black_box(tabu::solve_tabu(&warm, Objective::MinDelay, &tabu_cfg)))
    });
    group.bench_function("equal_budget/anneal_delay", |b| {
        b.iter(|| {
            black_box(metaheuristic::solve_anneal(
                &warm,
                Objective::MinDelay,
                &anneal_cfg,
            ))
        })
    });
    group.bench_function("equal_budget/genetic_delay", |b| {
        b.iter(|| {
            black_box(metaheuristic::solve_genetic(
                &warm,
                Objective::MinDelay,
                &genetic_cfg,
            ))
        })
    });
    // the quality side of the equal-budget comparison, for the log
    let optimum = solver("elpc_delay_routed")
        .expect("registered")
        .solve(&warm)
        .expect("feasible")
        .objective_ms;
    for (name, ms) in [
        (
            "tabu",
            tabu::solve_tabu(&warm, Objective::MinDelay, &tabu_cfg)
                .expect("feasible")
                .objective_ms,
        ),
        (
            "anneal",
            metaheuristic::solve_anneal(&warm, Objective::MinDelay, &anneal_cfg)
                .expect("feasible")
                .objective_ms,
        ),
        (
            "genetic",
            metaheuristic::solve_genetic(&warm, Objective::MinDelay, &genetic_cfg)
                .expect("feasible")
                .objective_ms,
        ),
    ] {
        eprintln!(
            "equal-budget quality {name}: {ms:.1} ms (gap {:.4} vs routed optimum)",
            ms / optimum
        );
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
