//! Surviving failure, measured: time-to-recovery of the targeted
//! repair-and-remap path vs cold re-solving everything, and goodput under
//! overload on the bounded-queue daemon.
//!
//! **Recovery.** A seeded [`FaultSchedule`] (crashes, cuts, degradations,
//! flaps) plays out over 200- and 1000-node topologies carrying several
//! pipelines. `run_failover_remap` repairs the shared closure bank in
//! place through the removal-aware `NetworkDelta` and re-solves only the
//! pipelines a failure actually touched; the cold baseline re-solves
//! every pipeline on fresh contexts. Both sides are wall-clock timed back
//! to back on the same snapshots. `tests/bench_artifacts.rs` pins the
//! committed `speedup` floor.
//!
//! **Overload.** An in-process daemon with a deliberately small bounded
//! queue takes paced open-loop bursts at ~0.5×, 1×, and 2× its measured
//! capacity. Past saturation the daemon sheds with typed `Overloaded`
//! replies instead of queueing without bound, so goodput holds and the
//! p99 of the replies it *does* serve stays bounded. The artifact pins
//! `shed > 0` at 2× and the p99 ratio between overload and light load.
//!
//! Not a criterion bench: one half measures a control loop end to end,
//! the other needs the open-loop generator, so this target has
//! `harness = false` and writes `BENCH_faults.json` directly.
//!
//! ```text
//! cargo bench -p elpc-bench --bench faults
//! ```

use elpc_extensions::adaptive::{run_failover_remap, FailoverConfig};
use elpc_mapping::{solver, CostModel, NodeId, SolveContext};
use elpc_netsim::dynamics::DynamicNetwork;
use elpc_netsim::faults::{FaultConfig, FaultEvent, FaultKind, FaultSchedule};
use elpc_pipeline::Pipeline;
use elpc_serving::loadgen::{run_open_loop, LoadConfig, LoadReport};
use elpc_serving::{Server, ServerConfig};
use elpc_workloads::{ClosureBank, InstanceSpec, ProblemInstance};
use serde::{Deserialize, Serialize};
use std::path::Path;

const MODULES: usize = 5;
const PIPELINES: usize = 3;
const HORIZON_MS: f64 = 6_000.0;

#[derive(Debug, Serialize, Deserialize)]
struct RecoveryRow {
    nodes: usize,
    links: usize,
    /// Pipelines sharing the network (and the closure bank).
    pipelines: usize,
    /// Events in the seeded fault schedule (crash/cut/degrade mix).
    fault_events: usize,
    /// Directed edges that failed across the run.
    failed_links: usize,
    /// Nodes that crashed across the run.
    failed_nodes: usize,
    /// Pipelines whose host died (forced to move).
    forced_remaps: usize,
    /// Targeted re-solves across the run (forced + drift-affected).
    remapped: usize,
    /// Cached trees the repair rule kept bit-for-bit.
    trees_kept: usize,
    /// Cached trees rebuilt through the CSR kernel.
    trees_rebuilt: usize,
    /// Total measured time-to-recovery of repair + targeted remap, ms.
    recovery_ms: f64,
    /// Total measured cost of cold re-solving every pipeline, ms.
    cold_resolve_ms: f64,
    /// `cold_resolve_ms / recovery_ms` — the committed floor lives in
    /// `tests/bench_artifacts.rs`.
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct OverloadRow {
    /// Offered load as a fraction of measured capacity.
    offered_fraction: f64,
    /// Offered rate, requests/second.
    offered_rps: f64,
    sent: usize,
    ok: usize,
    /// Requests answered with typed `Overloaded` (bounded queue full).
    shed: usize,
    /// Successful replies per second of wall clock.
    goodput_rps: f64,
    p50_ms: f64,
    /// p99 of the replies actually served — bounded because the queue is.
    p99_ms: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct OverloadSection {
    solver: String,
    nodes: usize,
    links: usize,
    workers: usize,
    queue_capacity: usize,
    /// Unpaced all-success throughput the offered rates are scaled from.
    capacity_rps: f64,
    rows: Vec<OverloadRow>,
}

#[derive(Debug, Serialize, Deserialize)]
struct FaultsArtifact {
    group: String,
    recovery: Vec<RecoveryRow>,
    overload: OverloadSection,
}

/// Several pipelines over one network: the instance's own endpoints plus
/// deterministic extra pairs spread across the node range, so one crash
/// rarely touches every pipeline (that asymmetry is what the targeted
/// path exploits).
fn pipelines_for(inst: &ProblemInstance) -> Vec<(Pipeline, NodeId, NodeId)> {
    let n = inst.network.node_count() as u32;
    let mut out = vec![(inst.pipeline.clone(), inst.src, inst.dst)];
    for k in 1..PIPELINES as u32 {
        let src = NodeId((7 * k + 3) % n);
        let mut dst = NodeId((n / 2 + 13 * k) % n);
        if dst == src {
            dst = NodeId((dst.0 + 1) % n);
        }
        out.push((inst.pipeline.clone(), src, dst));
    }
    out
}

fn recovery_rows() -> Vec<RecoveryRow> {
    let cost = CostModel::default();
    let remap = solver("elpc_delay_routed").expect("registered");
    let mut rows = Vec::new();

    for &(nodes, links, seed) in &[(200usize, 460usize, 0xFA11_u64), (1000, 2300, 0x0DD5)] {
        let inst = InstanceSpec::sized(MODULES, nodes, links)
            .generate(seed)
            .expect("spec generates");
        let pipes = pipelines_for(&inst);
        let protect: Vec<NodeId> = pipes.iter().flat_map(|&(_, s, d)| [s, d]).collect();

        // random faults rarely land on a mapped host, so guarantee one
        // forced failover per run: pre-solve pipeline 0 and schedule a
        // permanent crash of one of its assigned interior hosts
        let host_crash = {
            let ctx = SolveContext::new(inst.as_instance(), cost);
            let sol = remap.solve(&ctx).expect("base instance solvable");
            sol.assignment
                .iter()
                .copied()
                .find(|h| !protect.contains(h))
        };

        for &events in &[4usize, 12] {
            let faults = FaultSchedule::generate(
                &inst.network,
                &FaultConfig {
                    events,
                    horizon_ms: HORIZON_MS,
                    // bias the draw toward real removals (crashes and
                    // cuts) that mostly persist — this bench is about
                    // failure, not congestion
                    crash_weight: 2,
                    cut_weight: 3,
                    degrade_weight: 1,
                    transient_fraction: 0.25,
                    protect: protect.clone(),
                    ..FaultConfig::default()
                },
                seed ^ events as u64,
            )
            .expect("schedule generates");
            let mut all_events = faults.events().to_vec();
            if let Some(host) = host_crash {
                all_events.push(FaultEvent {
                    kind: FaultKind::NodeCrash { node: host },
                    start_ms: 1_500.0,
                    end_ms: f64::INFINITY,
                });
            }
            let faults = FaultSchedule::from_events(all_events);
            let dyn_net = DynamicNetwork::steady(inst.network.clone());
            let bank = ClosureBank::new();
            let report = run_failover_remap(
                &dyn_net,
                &faults,
                &pipes,
                &cost,
                FailoverConfig {
                    period_ms: 1_000.0,
                    // tight drift tolerance: losing a best route to a cut
                    // is enough to trigger a targeted re-solve
                    drift_threshold: 0.02,
                },
                HORIZON_MS,
                remap,
                &bank,
            )
            .expect("failover loop runs");

            let row = RecoveryRow {
                nodes,
                links,
                pipelines: pipes.len(),
                fault_events: faults.events().len(),
                failed_links: report.epochs.iter().map(|e| e.failed_links).sum(),
                failed_nodes: report.epochs.iter().map(|e| e.failed_nodes).sum(),
                forced_remaps: report.forced_remaps_total,
                remapped: report.remapped_total,
                trees_kept: report.epochs.iter().map(|e| e.trees_kept).sum(),
                trees_rebuilt: report.epochs.iter().map(|e| e.trees_rebuilt).sum(),
                recovery_ms: report.recovery_ms_total,
                cold_resolve_ms: report.cold_resolve_ms_total,
                speedup: report.recovery_speedup(),
            };
            println!(
                "recovery {}n/{}l, {} events: {} cut edges, {} crashes, {} remapped \
                 ({} forced) — targeted {:.1}ms vs cold {:.1}ms = {:.1}x",
                nodes,
                links,
                row.fault_events,
                row.failed_links,
                row.failed_nodes,
                row.remapped,
                row.forced_remaps,
                row.recovery_ms,
                row.cold_resolve_ms,
                row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn overload_section() -> OverloadSection {
    const NODES: usize = 200;
    const LINKS: usize = 460;
    const WORKERS: usize = 2;
    const QUEUE: usize = 8;
    const REQUESTS: usize = 192;

    let socket =
        std::env::temp_dir().join(format!("elpc-bench-faults-{}.sock", std::process::id()));
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: WORKERS,
            queue_capacity: QUEUE,
            ..ServerConfig::default()
        },
    )
    .expect("bind daemon");
    let base = LoadConfig {
        connections: 4,
        requests: REQUESTS,
        ..LoadConfig::default()
    };
    let inst = vec![InstanceSpec::sized(MODULES, NODES, LINKS)
        .generate(0x600D)
        .expect("spec generates")];

    // warm the bank, then measure the daemon's unpaced banked capacity
    let warm = run_open_loop(
        &socket,
        &inst,
        &LoadConfig {
            connections: 1,
            requests: 1,
            ..base.clone()
        },
    )
    .expect("warmup");
    assert_eq!(warm.ok, 1, "warmup solve must succeed");
    // unpaced flood: the queue saturates and sheds, and the rate the
    // daemon actually completes at *is* its capacity
    let probe = run_open_loop(&socket, &inst, &base).expect("capacity probe");
    assert!(probe.ok > 0, "probe must complete some work");
    let capacity_rps = probe.ok as f64 / probe.elapsed_s.max(1e-9);

    let run_at = |fraction: f64| -> LoadReport {
        run_open_loop(
            &socket,
            &inst,
            &LoadConfig {
                rate_per_sec: capacity_rps * fraction,
                ..base.clone()
            },
        )
        .expect("paced run")
    };
    let rows: Vec<OverloadRow> = [0.5, 1.0, 2.0]
        .iter()
        .map(|&fraction| {
            let report = run_at(fraction);
            let row = OverloadRow {
                offered_fraction: fraction,
                offered_rps: capacity_rps * fraction,
                sent: report.sent,
                ok: report.ok,
                shed: report.shed,
                goodput_rps: report.ok as f64 / report.elapsed_s.max(1e-9),
                p50_ms: report.p50_ms,
                p99_ms: report.p99_ms,
            };
            println!(
                "overload {:.1}x ({:.0} rps offered): {} ok, {} shed, goodput {:.0}/s, \
                 p50 {:.2}ms, p99 {:.2}ms",
                fraction,
                row.offered_rps,
                row.ok,
                row.shed,
                row.goodput_rps,
                row.p50_ms,
                row.p99_ms
            );
            row
        })
        .collect();
    assert!(
        rows.last().expect("three rows").shed > 0,
        "2x offered load must shed on a bounded queue"
    );

    let stats = server.shutdown();
    assert_eq!(stats.requests, stats.accepted + stats.shed);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.timeouts + stats.errors,
        "drained ledger must balance"
    );
    assert!(
        stats.max_queue_depth <= QUEUE as u64,
        "the queue bound must hold under 2x overload"
    );

    OverloadSection {
        solver: base.solver,
        nodes: NODES,
        links: LINKS,
        workers: WORKERS,
        queue_capacity: QUEUE,
        capacity_rps,
        rows,
    }
}

fn main() {
    let artifact = FaultsArtifact {
        group: "faults".into(),
        recovery: recovery_rows(),
        overload: overload_section(),
    };

    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    let back: FaultsArtifact = serde_json::from_str(&json).expect("own artifact parses");
    assert_eq!(back.group, "faults");

    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_faults.json");
    std::fs::write(&dest, json.as_bytes()).expect("write artifact");
    println!("wrote {}", dest.display());
}
