//! The metaheuristic solver bench: simulated annealing and genetic search
//! against the exact/DP references on a mid-size instance, cold context vs
//! a shared warm closure (the compare-harness shape, where the DPs run
//! first and every metaheuristic candidate evaluation is a hash lookup).
//! The `BENCH_metaheuristics.json` artifact tracks it across commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{solver, CostModel, SolveContext};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_metaheuristics(c: &mut Criterion) {
    let cost = CostModel::default();
    // mid-size: large enough that the closure build dominates a cold solve,
    // small enough that every solver finishes in milliseconds when warm
    let inst_owned = InstanceSpec::sized(10, 30, 110).generate(0xA11E).unwrap();
    let inst = inst_owned.as_instance();
    let names = [
        "anneal_delay",
        "anneal_rate",
        "genetic_delay",
        "genetic_rate",
    ];

    let mut group = c.benchmark_group("metaheuristics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // cold: the metaheuristic pays for every transfer tree it touches
    for name in names {
        let s = solver(name).expect("registered");
        group.bench_with_input(BenchmarkId::new("cold", name), &s, |b, s| {
            b.iter(|| {
                let ctx = SolveContext::new(inst, cost);
                black_box(s.solve(&ctx))
            })
        });
    }

    // warm: the compare-harness shape — the routed DPs populated the
    // closure, candidate evaluations are pure cache hits
    let warm = SolveContext::new(inst, cost);
    let _ = solver("elpc_delay_routed")
        .expect("registered")
        .solve(&warm);
    let _ = solver("elpc_rate_routed").expect("registered").solve(&warm);
    for name in names {
        let s = solver(name).expect("registered");
        group.bench_with_input(BenchmarkId::new("warm", name), &s, |b, s| {
            b.iter(|| black_box(s.solve(&warm)))
        });
    }

    // the references the quality gap is measured against
    for name in ["elpc_delay_routed", "elpc_rate_routed"] {
        let s = solver(name).expect("registered");
        group.bench_with_input(BenchmarkId::new("reference_warm", name), &s, |b, s| {
            b.iter(|| black_box(s.solve(&warm)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metaheuristics);
criterion_main!(benches);
