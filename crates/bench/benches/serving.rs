//! End-to-end serving throughput: open-loop bursts against an in-process
//! `elpc-serve` daemon, measured in two regimes —
//!
//! * **banked**: every request carries the same topology, so after the
//!   warm-up deposit each solve checks its metric closure out of the
//!   shared [`elpc_workloads::ClosureBank`] (pure bank hits);
//! * **cold**: every request carries a *distinct* topology, so each solve
//!   pays a full all-pairs closure build.
//!
//! The ratio between the two is the serving layer's reason to exist:
//! `BENCH_serving.json` commits it (`banked_over_cold`), and
//! `tests/bench_artifacts.rs` pins a ≥5× floor so a regression in bank
//! sharing or request coalescing fails the PR that caused it.
//!
//! Not a criterion bench: latency percentiles of a queueing system need
//! the open-loop generator, so this target has `harness = false` and
//! writes its artifact directly.
//!
//! ```text
//! cargo bench -p elpc-bench --bench serving
//! ```

use elpc_serving::loadgen::{run_open_loop, LoadConfig, LoadReport};
use elpc_serving::{Server, ServerConfig};
use elpc_workloads::{InstanceSpec, ProblemInstance};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Topology size: large enough that the all-pairs closure build dominates
/// a cold solve (that gap is what the bank amortizes), small enough to
/// keep the bench under a minute.
const MODULES: usize = 5;
const NODES: usize = 200;
const LINKS: usize = 460;

const BANKED_REQUESTS: usize = 96;
const COLD_REQUESTS: usize = 16;
const CONNECTIONS: usize = 4;
const WORKERS: usize = 2;

#[derive(Debug, Serialize, Deserialize)]
struct Regime {
    requests: usize,
    solves_per_sec: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ServingArtifact {
    group: String,
    solver: String,
    nodes: usize,
    links: usize,
    workers: usize,
    connections: usize,
    banked: Regime,
    cold: Regime,
    /// Banked throughput over cold throughput on the same daemon — the
    /// committed floor is ≥ 5x (see `tests/bench_artifacts.rs`).
    banked_over_cold: f64,
}

fn regime(report: &LoadReport) -> Regime {
    Regime {
        requests: report.ok,
        solves_per_sec: report.throughput_rps,
        mean_ms: report.mean_ms,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        max_ms: report.max_ms,
    }
}

fn instances(distinct: usize, base_seed: u64) -> Vec<ProblemInstance> {
    (0..distinct)
        .map(|i| {
            InstanceSpec::sized(MODULES, NODES, LINKS)
                .generate(base_seed + i as u64)
                .expect("spec generates")
        })
        .collect()
}

fn main() {
    let socket =
        std::env::temp_dir().join(format!("elpc-bench-serving-{}.sock", std::process::id()));
    let server = Server::bind(
        &socket,
        ServerConfig {
            workers: WORKERS,
            ..ServerConfig::default()
        },
    )
    .expect("bind daemon");
    let cfg = LoadConfig {
        connections: CONNECTIONS,
        solver: "elpc_delay_routed".into(),
        threads: 1,
        ..LoadConfig::default()
    };

    // --- banked: one topology, closure deposited once, then pure hits ----
    let fixed = instances(1, 0xBEEF);
    // warm-up outside the measured window: deposits the closure so the
    // measured burst is hit-only (and never coalesce-bound)
    let warm = run_open_loop(
        &socket,
        &fixed,
        &LoadConfig {
            connections: 1,
            requests: 1,
            ..cfg.clone()
        },
    )
    .expect("warmup");
    assert_eq!(warm.ok, 1, "warmup solve must succeed");
    let banked_report = run_open_loop(
        &socket,
        &fixed,
        &LoadConfig {
            requests: BANKED_REQUESTS,
            ..cfg.clone()
        },
    )
    .expect("banked burst");
    assert_eq!(
        banked_report.ok, BANKED_REQUESTS,
        "banked burst all-success"
    );

    // --- cold: a distinct topology per request, every closure built ------
    let distinct = instances(COLD_REQUESTS, 0xC01D);
    let cold_report = run_open_loop(
        &socket,
        &distinct,
        &LoadConfig {
            requests: COLD_REQUESTS,
            ..cfg.clone()
        },
    )
    .expect("cold burst");
    assert_eq!(cold_report.ok, COLD_REQUESTS, "cold burst all-success");

    let stats = server.shutdown();
    // exactness: every executed solve consulted the bank exactly once
    let total = (1 + BANKED_REQUESTS + COLD_REQUESTS) as u64;
    assert_eq!(stats.bank_hits + stats.bank_misses, total);
    // one build for the fixed topology + one per distinct topology
    assert_eq!(stats.bank_misses, 1 + COLD_REQUESTS as u64);

    let artifact = ServingArtifact {
        group: "serving".into(),
        solver: cfg.solver.clone(),
        nodes: NODES,
        links: LINKS,
        workers: WORKERS,
        connections: CONNECTIONS,
        banked_over_cold: banked_report.throughput_rps / cold_report.throughput_rps,
        banked: regime(&banked_report),
        cold: regime(&cold_report),
    };

    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    // self-check the round trip before committing bytes to disk
    let back: ServingArtifact = serde_json::from_str(&json).expect("own artifact parses");
    assert_eq!(back.group, "serving");

    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serving.json");
    std::fs::write(&dest, json.as_bytes()).expect("write artifact");
    println!(
        "serving: banked {:.1}/s (p50 {:.2}ms, p99 {:.2}ms) vs cold {:.1}/s (p50 {:.2}ms) — {:.1}x; wrote {}",
        artifact.banked.solves_per_sec,
        artifact.banked.p50_ms,
        artifact.banked.p99_ms,
        artifact.cold.solves_per_sec,
        artifact.cold.p50_ms,
        artifact.banked_over_cold,
        dest.display()
    );
}
