//! Criterion benches for the discrete-event substrate (experiment V1's
//! engine): single-dataset execution and saturated streaming across frame
//! counts — the simulator must stay cheap enough to validate every suite
//! instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elpc_mapping::{elpc_delay, elpc_rate, CostModel};
use elpc_simcore::{simulate, Workload};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let cost = CostModel::default();
    let inst_owned = InstanceSpec::sized(10, 20, 60).generate(0xC33).unwrap();
    let inst = inst_owned.as_instance();
    let delay = elpc_delay::solve(&inst, &cost).unwrap();
    let rate = elpc_rate::solve(&inst, &cost).unwrap();

    let mut group = c.benchmark_group("simulation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("single_dataset", |b| {
        b.iter(|| black_box(simulate(&inst, &cost, &delay.mapping, Workload::single())))
    });
    for frames in [10usize, 100, 1000] {
        group.throughput(Throughput::Elements(frames as u64));
        group.bench_with_input(
            BenchmarkId::new("stream_frames", frames),
            &frames,
            |b, &frames| {
                b.iter(|| {
                    black_box(simulate(
                        &inst,
                        &cost,
                        &rate.mapping,
                        Workload::stream(frames),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
