//! The ISSUE 5 evaluation-kernel bench: closure-locked vs dense full
//! evaluation, full vs O(1) delta move evaluation, and the headline
//! number — evaluations/second of the tabu/anneal-shaped move loop at the
//! 5000-candidate budget, locked baseline vs kernel delta. The
//! `BENCH_eval_kernel.json` artifact tracks it across commits.
//!
//! The bench also pins the reconciliation contract at solver level: every
//! metaheuristic registry entry and both portfolio slates must report
//! objectives that re-evaluate **bit-for-bit** under the closure-backed
//! routed evaluators (same seed, same budget — the kernel changes how fast
//! candidates are scored, never what the search returns).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use elpc_mapping::{
    portfolio, routed, solver, CostModel, DeltaEval, MoveSpec, NodeId, Objective, SolveContext,
};
use elpc_workloads::InstanceSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Candidate evaluations per timed move loop — the metaheuristics' shared
/// default budget (tabu: 250 × 20, anneal: 2500 × 2).
const BUDGET: usize = 5000;
/// Assignments per timed full-evaluation batch.
const BATCH: usize = 1000;

fn bench_eval_kernel(c: &mut Criterion) {
    let cost = CostModel::default();
    // the metaheuristics bench's mid-size instance (10 modules, 30 nodes)
    let inst_owned = InstanceSpec::sized(10, 30, 110).generate(0xA11E).unwrap();
    let inst = inst_owned.as_instance();
    let n = inst.n_modules();
    let k = inst.network.node_count();

    // compare-harness shape: the routed DPs warmed the closure, then the
    // kernel snapshot is built once for the whole solver family
    let warm = SolveContext::new(inst, cost);
    let _ = solver("elpc_delay_routed")
        .expect("registered")
        .solve(&warm);
    let _ = solver("elpc_rate_routed").expect("registered").solve(&warm);
    let kernel = warm.eval_kernel();

    let mut rng = ChaCha8Rng::seed_from_u64(0x4B45524E);
    // random shape-valid assignments: endpoints pinned, interior free
    let delay_batch: Vec<Vec<NodeId>> = (0..BATCH)
        .map(|_| {
            let mut a: Vec<NodeId> = (0..n)
                .map(|_| NodeId::from_index(rng.gen_range(0..k)))
                .collect();
            a[0] = inst.src;
            *a.last_mut().unwrap() = inst.dst;
            a
        })
        .collect();
    // distinct-host assignments for the rate side (partial Fisher–Yates)
    let rate_batch: Vec<Vec<NodeId>> = (0..BATCH)
        .map(|_| {
            let mut pool: Vec<NodeId> = (0..k)
                .map(NodeId::from_index)
                .filter(|&v| v != inst.src && v != inst.dst)
                .collect();
            let mut a = vec![inst.src; n];
            *a.last_mut().unwrap() = inst.dst;
            for slot in a.iter_mut().take(n - 1).skip(1) {
                let pick = rng.gen_range(0..pool.len());
                *slot = pool.swap_remove(pick);
            }
            a
        })
        .collect();

    let mut group = c.benchmark_group("eval_kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // --- tier 1: full evaluation, closure-locked vs dense ---------------
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("full_eval/locked_delay", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &delay_batch {
                acc += routed::routed_delay_ms_ctx(&warm, a).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("full_eval/dense_delay", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &delay_batch {
                acc += kernel.full_delay_ms(a);
            }
            black_box(acc)
        })
    });
    group.bench_function("full_eval/locked_rate", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &rate_batch {
                acc += routed::routed_bottleneck_ms_ctx(&warm, a, true).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("full_eval/dense_rate", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &rate_batch {
                acc += kernel.full_bottleneck_ms(a, true);
            }
            black_box(acc)
        })
    });

    // --- tier 2: the 5000-candidate move loop ---------------------------
    // identical pre-sampled move sequences driven through (a) the
    // closure-locked candidate-materializing loop every solver ran before
    // ISSUE 5 and (b) the kernel's O(1) delta tier — the two ends of the
    // headline evaluations/second comparison
    let delay_moves: Vec<MoveSpec> = (0..BUDGET)
        .map(|_| {
            if rng.gen_bool(0.5) {
                MoveSpec::Reassign {
                    stage: 1 + rng.gen_range(0..n - 2),
                    to: NodeId::from_index(rng.gen_range(0..k)),
                }
            } else {
                swap_move(n, &mut rng)
            }
        })
        .collect();
    // swaps only: distinct-preserving against any rate assignment
    let rate_moves: Vec<MoveSpec> = (0..BUDGET).map(|_| swap_move(n, &mut rng)).collect();

    group.throughput(Throughput::Elements(BUDGET as u64));
    for (id, objective, moves, start) in [
        (
            "move_loop_5000/locked_delay",
            Objective::MinDelay,
            &delay_moves,
            &delay_batch[0],
        ),
        (
            "move_loop_5000/locked_rate",
            Objective::MaxRate,
            &rate_moves,
            &rate_batch[0],
        ),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                // the pre-kernel loop: copy the assignment, mutate, and pay
                // the closure (shard lock + hash + Arc) for every term
                let mut current = start.clone();
                let mut cur_cost = locked_eval(&warm, objective, &current).unwrap();
                let mut candidate = current.clone();
                for &mv in moves {
                    candidate.copy_from_slice(&current);
                    apply_move(&mut candidate, mv);
                    if let Some(cand) = locked_eval(&warm, objective, &candidate) {
                        if cand < cur_cost {
                            current.copy_from_slice(&candidate);
                            cur_cost = cand;
                        }
                    }
                }
                black_box(cur_cost)
            })
        });
    }
    for (id, objective, moves, start) in [
        (
            "move_loop_5000/delta_delay",
            Objective::MinDelay,
            &delay_moves,
            &delay_batch[0],
        ),
        (
            "move_loop_5000/delta_rate",
            Objective::MaxRate,
            &rate_moves,
            &rate_batch[0],
        ),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut state = DeltaEval::new(Arc::clone(&kernel), objective, start);
                let mut cur_cost = state.objective_ms().unwrap();
                for &mv in moves {
                    if let Some(cand) = state.eval_move(mv) {
                        if cand < cur_cost {
                            cur_cost = state.apply(mv).unwrap();
                        }
                    }
                }
                black_box(cur_cost)
            })
        });
    }
    group.finish();

    // --- the reconciliation + unchanged-mappings record -----------------
    // every metaheuristic entry and both portfolio slates, solved at their
    // default seed/budget on the warm context: the reported objective must
    // re-evaluate bit-for-bit under the closure-backed routed evaluators
    for name in [
        "anneal_delay",
        "genetic_delay",
        "tabu_delay",
        "anneal_rate",
        "genetic_rate",
        "tabu_rate",
    ] {
        let s = solver(name).expect("registered");
        let sol = s.solve(&warm).expect("bench instance is feasible");
        let re = match s.objective() {
            Objective::MinDelay => routed::routed_delay_ms_ctx(&warm, &sol.assignment).unwrap(),
            Objective::MaxRate => {
                routed::routed_bottleneck_ms_ctx(&warm, &sol.assignment, true).unwrap()
            }
        };
        assert_eq!(
            re.to_bits(),
            sol.objective_ms.to_bits(),
            "{name}: kernel-reported objective must reconcile exactly"
        );
        eprintln!(
            "mapping {name:<14} objective {:>10.3} ms  assignment {:?}",
            sol.objective_ms,
            sol.assignment.iter().map(|h| h.index()).collect::<Vec<_>>()
        );
    }
    for objective in [Objective::MinDelay, Objective::MaxRate] {
        let config = portfolio::PortfolioConfig::for_objective(objective);
        let race = portfolio::solve_portfolio(&warm, objective, &config).expect("feasible");
        eprintln!(
            "portfolio {objective:?} winner {} objective {:>10.3} ms",
            race.winner, race.solution.objective_ms
        );
    }
}

/// A random interior swap (the move shape legal under both objectives).
fn swap_move(n: usize, rng: &mut ChaCha8Rng) -> MoveSpec {
    let interior = n - 2;
    let a = 1 + rng.gen_range(0..interior);
    let mut b = 1 + rng.gen_range(0..interior - 1);
    if b >= a {
        b += 1;
    }
    MoveSpec::Swap { a, b }
}

fn apply_move(a: &mut [NodeId], mv: MoveSpec) {
    match mv {
        MoveSpec::Reassign { stage, to } => a[stage] = to,
        MoveSpec::Swap { a: x, b: y } => a.swap(x, y),
    }
}

/// The pre-ISSUE 5 evaluation path: every term through the shared closure.
fn locked_eval(ctx: &SolveContext<'_>, objective: Objective, a: &[NodeId]) -> Option<f64> {
    let r = match objective {
        Objective::MinDelay => routed::routed_delay_ms_ctx(ctx, a),
        Objective::MaxRate => routed::routed_bottleneck_ms_ctx(ctx, a, true),
    };
    r.ok().filter(|ms| ms.is_finite())
}

criterion_group!(benches, bench_eval_kernel);
criterion_main!(benches);
