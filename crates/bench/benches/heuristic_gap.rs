//! Criterion benches for ablation A2 (experiment E8): the cost of widening
//! the ELPC-rate label set, against the exact enumerator on an instance
//! small enough for it.
//!
//! The gap *quality* numbers come from `elpc-experiments --bin
//! ablation_gap`; this bench measures what the extra labels cost in time.
//! The label-width sweep necessarily calls `solve_with` directly (the
//! registry entries carry fixed configurations); the exact enumerator and
//! the production rate portfolio are benched through the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::elpc_rate::{solve_with, RateConfig};
use elpc_mapping::{solver, CostModel, SolveContext};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_gap(c: &mut Criterion) {
    let cost = CostModel::default();
    let small = InstanceSpec::sized(5, 8, 16).generate(0xA11).unwrap();
    let medium = InstanceSpec::sized(12, 30, 120).generate(0xB22).unwrap();

    let mut group = c.benchmark_group("heuristic_gap");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("rate_k_labels_small", k), &k, |b, &k| {
            let inst = small.as_instance();
            b.iter(|| black_box(solve_with(&inst, &cost, RateConfig { k_labels: k })))
        });
        group.bench_with_input(BenchmarkId::new("rate_k_labels_medium", k), &k, |b, &k| {
            let inst = medium.as_instance();
            b.iter(|| black_box(solve_with(&inst, &cost, RateConfig { k_labels: k })))
        });
    }
    let exact_rate = solver("exact_rate").expect("registered");
    group.bench_function("exact_rate_small", |b| {
        let ctx = SolveContext::new(small.as_instance(), cost);
        b.iter(|| black_box(exact_rate.solve(&ctx)))
    });
    let portfolio = solver("elpc_rate_routed").expect("registered");
    group.bench_function("rate_portfolio_medium", |b| {
        let ctx = SolveContext::new(medium.as_instance(), cost);
        b.iter(|| black_box(portfolio.solve(&ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_gap);
criterion_main!(benches);
