//! Criterion benches for the §4.3 scaling claim (experiment E7): solver
//! runtime as a function of problem size, verifying the published
//! complexity classes (`O(n·|E|)` ELPC-delay, `O(m·n²)` Streamline,
//! `O(m·n)` Greedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elpc_mapping::{elpc_delay, greedy, streamline, CostModel};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let cost = CostModel::default();
    let sweep: Vec<(usize, usize, usize)> = vec![
        (10, 25, 80),
        (20, 50, 250),
        (40, 100, 800),
        (80, 200, 3000),
    ];
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &(m, n, l) in &sweep {
        let inst_owned = InstanceSpec::sized(m, n, l)
            .generate(0xBE_EF + m as u64)
            .expect("sweep instances generate");
        // n·|E| is the DP's work unit; report throughput in those terms
        group.throughput(Throughput::Elements((m * l * 2) as u64));
        let label = format!("m{m}_n{n}_l{l}");
        group.bench_with_input(BenchmarkId::new("elpc_delay", &label), &inst_owned, |b, io| {
            let inst = io.as_instance();
            b.iter(|| black_box(elpc_delay::solve(&inst, &cost)))
        });
        group.bench_with_input(
            BenchmarkId::new("streamline_delay", &label),
            &inst_owned,
            |b, io| {
                let inst = io.as_instance();
                b.iter(|| black_box(streamline::solve_min_delay(&inst, &cost)))
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy_delay", &label), &inst_owned, |b, io| {
            let inst = io.as_instance();
            b.iter(|| black_box(greedy::solve_min_delay(&inst, &cost)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
