//! Criterion benches for the §4.3 scaling claim (experiment E7): solver
//! runtime as a function of problem size, verifying the published
//! complexity classes (`O(n·|E|)` ELPC-delay, `O(m·n²)` Streamline,
//! `O(m·n)` Greedy). Algorithms come from the solver registry; each
//! measured iteration builds a *cold* `SolveContext` so Streamline's
//! per-stage Dijkstra work — the thing the complexity class describes —
//! is actually inside the measurement. (Warm shared-context timings live
//! in the `context_reuse` bench.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elpc_mapping::{solver, CostModel, SolveContext};
use elpc_workloads::InstanceSpec;
use std::hint::black_box;
use std::time::Duration;

const SOLVERS: [&str; 3] = ["elpc_delay", "streamline_delay", "greedy_delay"];

fn bench_scaling(c: &mut Criterion) {
    let cost = CostModel::default();
    let sweep: Vec<(usize, usize, usize)> =
        vec![(10, 25, 80), (20, 50, 250), (40, 100, 800), (80, 200, 3000)];
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &(m, n, l) in &sweep {
        let inst_owned = InstanceSpec::sized(m, n, l)
            .generate(0xBE_EF + m as u64)
            .expect("sweep instances generate");
        // n·|E| is the DP's work unit; report throughput in those terms
        group.throughput(Throughput::Elements((m * l * 2) as u64));
        let label = format!("m{m}_n{n}_l{l}");
        let inst = inst_owned.as_instance();
        for name in SOLVERS {
            let entry = solver(name).expect("registered");
            group.bench_with_input(BenchmarkId::new(name, &label), &inst, |b, inst| {
                b.iter(|| {
                    let ctx = SolveContext::new(*inst, cost);
                    black_box(entry.solve(&ctx))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
