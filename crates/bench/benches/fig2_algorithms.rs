//! Criterion benches for the Fig. 2 comparison: per-algorithm solve time on
//! representative suite cases (E1/E2 in DESIGN.md §5).
//!
//! The published observation (§4.3) is that all three algorithms run in
//! milliseconds-to-seconds; these benches regenerate that comparison with
//! statistical rigor. Criterion parameters are tuned down so the full
//! bench suite completes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{elpc_delay, elpc_rate, greedy, streamline, CostModel};
use elpc_workloads::cases::paper_cases;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let cost = CostModel::default();
    let cases = paper_cases();
    let mut group = c.benchmark_group("fig2_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // one small, one medium, one large suite case
    for idx in [0usize, 7, 14] {
        let case = &cases[idx];
        let inst_owned = case.generate().expect("suite cases generate");
        let label = format!("m{}_n{}_l{}", case.modules, case.nodes, case.links);

        group.bench_with_input(BenchmarkId::new("elpc_delay", &label), &inst_owned, |b, io| {
            let inst = io.as_instance();
            b.iter(|| black_box(elpc_delay::solve(&inst, &cost)))
        });
        group.bench_with_input(BenchmarkId::new("elpc_rate", &label), &inst_owned, |b, io| {
            let inst = io.as_instance();
            b.iter(|| black_box(elpc_rate::solve(&inst, &cost)))
        });
        group.bench_with_input(
            BenchmarkId::new("streamline_delay", &label),
            &inst_owned,
            |b, io| {
                let inst = io.as_instance();
                b.iter(|| black_box(streamline::solve_min_delay(&inst, &cost)))
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy_delay", &label), &inst_owned, |b, io| {
            let inst = io.as_instance();
            b.iter(|| black_box(greedy::solve_min_delay(&inst, &cost)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
