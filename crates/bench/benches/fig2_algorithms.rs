//! Criterion benches for the Fig. 2 comparison: per-algorithm solve time on
//! representative suite cases (E1/E2 in DESIGN.md §5).
//!
//! The published observation (§4.3) is that all three algorithms run in
//! milliseconds-to-seconds; these benches regenerate that comparison with
//! statistical rigor. Algorithms are pulled from the `elpc_mapping` solver
//! registry; every measured iteration builds a *cold* `SolveContext` so
//! the cross-algorithm runtimes stay comparable (a warm shared context
//! would serve Streamline's Dijkstra work from cache while the strict DPs
//! do full work — the warm numbers live in the `context_reuse` bench).
//! Criterion parameters are tuned down so the full bench suite completes
//! in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elpc_mapping::{solver, CostModel, SolveContext};
use elpc_workloads::cases::paper_cases;
use std::hint::black_box;
use std::time::Duration;

const SOLVERS: [&str; 4] = [
    "elpc_delay",
    "elpc_rate",
    "streamline_delay",
    "greedy_delay",
];

fn bench_fig2(c: &mut Criterion) {
    let cost = CostModel::default();
    let cases = paper_cases();
    let mut group = c.benchmark_group("fig2_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // one small, one medium, one large suite case
    for idx in [0usize, 7, 14] {
        let case = &cases[idx];
        let inst_owned = case.generate().expect("suite cases generate");
        let label = format!("m{}_n{}_l{}", case.modules, case.nodes, case.links);
        let inst = inst_owned.as_instance();

        for name in SOLVERS {
            let entry = solver(name).expect("registered");
            group.bench_with_input(BenchmarkId::new(name, &label), &inst, |b, inst| {
                b.iter(|| {
                    let ctx = SolveContext::new(*inst, cost);
                    black_box(entry.solve(&ctx))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
