//! # elpc-bench — criterion benchmarks per paper table/figure
//!
//! See `benches/`: `fig2_algorithms` (E1/E2), `scaling` (E7),
//! `heuristic_gap` (E8/A2), `simulation` (V1 engine cost), and
//! `context_reuse` (cold-solve vs shared-`SolveContext` solve for every
//! registered algorithm — the metric-closure cache payoff — plus the
//! `context_parallel_warm` entries: serial vs all-CPU `par_warm` closure
//! builds, parallel-warm cold solves, and `ClosureBank` checkout solves).
//! Run with
//! `cargo bench --workspace`; each bench group writes a `BENCH_<group>.json`
//! artifact so results are tracked across commits. DESIGN.md §5 maps each
//! bench to its paper artifact.
