//! # elpc-bench — criterion benchmarks per paper table/figure
//!
//! See `benches/`: `fig2_algorithms` (E1/E2), `scaling` (E7),
//! `heuristic_gap` (E8/A2), `simulation` (V1 engine cost),
//! `context_reuse` (cold-solve vs shared-`SolveContext` solve for every
//! registered algorithm — the metric-closure cache payoff — plus the
//! `context_parallel_warm` entries: serial vs all-CPU `par_warm` closure
//! builds, parallel-warm cold solves, and `ClosureBank` checkout solves),
//! `metaheuristics` / `portfolio` (the solver family against its exact
//! references, the slate race, equal-budget quality), and `eval_kernel`
//! (closure-locked vs dense full evaluation, full vs O(1) delta move
//! evaluation, and the 5000-candidate move loop behind the ISSUE 5
//! evaluations/second headline — plus the solver-level reconciliation
//! pin: every metaheuristic's reported objective re-evaluates bit-for-bit
//! under the routed evaluators).
//! Run with
//! `cargo bench --workspace`; each bench group writes a `BENCH_<group>.json`
//! artifact so results are tracked across commits. DESIGN.md §5 maps each
//! bench to its paper artifact.
