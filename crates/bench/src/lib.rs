//! # elpc-bench — criterion benchmarks per paper table/figure
//!
//! See `benches/`: `fig2_algorithms` (E1/E2), `scaling` (E7),
//! `heuristic_gap` (E8/A2), `simulation` (V1 engine cost). Run with
//! `cargo bench --workspace`; DESIGN.md §5 maps each bench to its paper
//! artifact.
