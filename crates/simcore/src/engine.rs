//! Deterministic discrete-event engine: a time-ordered event queue and
//! FIFO resources.
//!
//! Determinism: events at equal times fire in schedule order (a
//! monotonically increasing sequence number breaks ties), so a simulation
//! is a pure function of its inputs — a requirement for the experiment
//! harness and for test reproducibility.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A scheduled event: fires at `time`, carrying a payload.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed for min-heap behavior on (time, seq)
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current time (events
    /// cannot fire in the past).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A FIFO single-server resource: serves one token at a time in arrival
/// order, accumulating busy time for utilization reports.
#[derive(Debug, Clone)]
pub struct FifoResource<T> {
    queue: VecDeque<T>,
    in_service: Option<T>,
    busy_ms: f64,
}

impl<T> Default for FifoResource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoResource<T> {
    /// An idle resource.
    pub fn new() -> Self {
        FifoResource {
            queue: VecDeque::new(),
            in_service: None,
            busy_ms: 0.0,
        }
    }

    /// A token arrives. Returns `Some(token)` when the resource was idle
    /// and service should start immediately; otherwise the token queues.
    #[must_use]
    pub fn arrive(&mut self, token: T) -> Option<&T> {
        if self.in_service.is_none() {
            self.in_service = Some(token);
            self.in_service.as_ref()
        } else {
            self.queue.push_back(token);
            None
        }
    }

    /// The current service completes (`service_ms` is accounted as busy
    /// time). Returns the finished token and, if another token was
    /// waiting, a reference to the next one now entering service.
    pub fn complete(&mut self, service_ms: f64) -> (T, Option<&T>) {
        let done = self
            .in_service
            .take()
            .expect("complete() requires a token in service");
        self.busy_ms += service_ms;
        if let Some(next) = self.queue.pop_front() {
            self.in_service = Some(next);
        }
        (done, self.in_service.as_ref())
    }

    /// The token currently in service, if any.
    pub fn current(&self) -> Option<&T> {
        self.in_service.as_ref()
    }

    /// Queue length excluding the token in service.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated busy time in ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(4.0, ());
        q.schedule(7.0, ());
        q.pop();
        assert_eq!(q.now(), 4.0);
        q.pop();
        assert_eq!(q.now(), 7.0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn events_scheduled_at_now_are_allowed() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "first");
        q.pop();
        q.schedule(5.0, "second"); // zero-delay follow-up
        assert_eq!(q.pop().unwrap(), (5.0, "second"));
    }

    #[test]
    fn fifo_resource_serves_in_arrival_order() {
        let mut r = FifoResource::new();
        assert_eq!(r.arrive(1), Some(&1)); // idle → starts at once
        assert_eq!(r.arrive(2), None); // queued
        assert_eq!(r.arrive(3), None);
        assert_eq!(r.backlog(), 2);
        let (done, next) = r.complete(10.0);
        assert_eq!(done, 1);
        assert_eq!(next, Some(&2));
        let (done, next) = r.complete(5.0);
        assert_eq!(done, 2);
        assert_eq!(next, Some(&3));
        let (done, next) = r.complete(1.0);
        assert_eq!(done, 3);
        assert_eq!(next, None);
        assert_eq!(r.busy_ms(), 16.0);
    }

    #[test]
    #[should_panic(expected = "requires a token in service")]
    fn completing_an_idle_resource_panics() {
        let mut r: FifoResource<u8> = FifoResource::new();
        r.complete(1.0);
    }

    #[test]
    fn queue_len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
