//! Simulation results and derived metrics.

use serde::{Deserialize, Serialize};

/// The measured outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    injections_ms: Vec<f64>,
    completions_ms: Vec<f64>,
    resource_busy_ms: Vec<(String, f64)>,
    stage_labels: Vec<String>,
}

impl SimReport {
    pub(crate) fn new(
        injections_ms: Vec<f64>,
        completions_ms: Vec<f64>,
        resource_busy_ms: Vec<(String, f64)>,
        stage_labels: Vec<String>,
    ) -> Self {
        SimReport {
            injections_ms,
            completions_ms,
            resource_busy_ms,
            stage_labels,
        }
    }

    /// Number of frames that flowed through the pipeline.
    pub fn frames(&self) -> usize {
        self.completions_ms.len()
    }

    /// Injection times (ms) per frame.
    pub fn injections_ms(&self) -> &[f64] {
        &self.injections_ms
    }

    /// Completion times (ms) per frame, in frame order.
    pub fn completions_ms(&self) -> &[f64] {
        &self.completions_ms
    }

    /// Busy time per resource, `(name, ms)`.
    pub fn resource_busy_ms(&self) -> &[(String, f64)] {
        &self.resource_busy_ms
    }

    /// Human-readable stage descriptions, in chain order.
    pub fn stage_labels(&self) -> &[String] {
        &self.stage_labels
    }

    /// End-to-end latency of frame `f` (completion − injection), the
    /// measured counterpart of Eq. 1 for frame 0 of a single-frame run.
    pub fn end_to_end_delay_ms(&self, f: usize) -> Option<f64> {
        Some(self.completions_ms.get(f)? - self.injections_ms.get(f)?)
    }

    /// The last inter-departure gap (ms). In a deterministic saturated
    /// pipeline this converges to the Eq. 2 bottleneck once every stage has
    /// filled (after `q` frames). `None` with fewer than 2 frames.
    pub fn steady_interdeparture_ms(&self) -> Option<f64> {
        let n = self.completions_ms.len();
        if n < 2 {
            return None;
        }
        Some(self.completions_ms[n - 1] - self.completions_ms[n - 2])
    }

    /// Steady-state frame rate (fps) — `1000 / steady gap`, the measured
    /// counterpart of the paper's "maximum frame rate".
    pub fn steady_rate_fps(&self) -> Option<f64> {
        let gap = self.steady_interdeparture_ms()?;
        Some(elpc_netsim::units::frame_rate_fps(gap))
    }

    /// Mean throughput over the whole run: `(frames − 1) / (last − first
    /// completion)`, in fps. Less sharp than [`SimReport::steady_rate_fps`]
    /// because it averages over the pipeline fill transient.
    pub fn mean_rate_fps(&self) -> Option<f64> {
        let n = self.completions_ms.len();
        if n < 2 {
            return None;
        }
        let span = self.completions_ms[n - 1] - self.completions_ms[0];
        if span <= 0.0 {
            return None;
        }
        Some((n - 1) as f64 * elpc_netsim::units::MS_PER_S / span)
    }

    /// Total simulated time (last completion).
    pub fn makespan_ms(&self) -> f64 {
        self.completions_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Utilization of each resource over the makespan, `(name, fraction)`.
    pub fn utilizations(&self) -> Vec<(String, f64)> {
        let makespan = self.makespan_ms();
        self.resource_busy_ms
            .iter()
            .map(|(name, busy)| {
                let u = if makespan > 0.0 { busy / makespan } else { 0.0 };
                (name.clone(), u)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            vec![0.0, 10.0, 20.0],
            vec![100.0, 150.0, 200.0],
            vec![("node 0".into(), 60.0), ("edge 0".into(), 190.0)],
            vec!["compute".into(), "transfer".into()],
        )
    }

    #[test]
    fn delay_is_completion_minus_injection() {
        let r = report();
        assert_eq!(r.end_to_end_delay_ms(0), Some(100.0));
        assert_eq!(r.end_to_end_delay_ms(1), Some(140.0));
        assert_eq!(r.end_to_end_delay_ms(9), None);
    }

    #[test]
    fn steady_gap_uses_the_last_pair() {
        let r = report();
        assert_eq!(r.steady_interdeparture_ms(), Some(50.0));
        assert_eq!(r.steady_rate_fps(), Some(20.0));
    }

    #[test]
    fn mean_rate_spans_all_completions() {
        let r = report();
        // 2 gaps over 100 ms → 20 fps
        assert!((r.mean_rate_fps().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn single_frame_has_no_rate() {
        let r = SimReport::new(vec![0.0], vec![42.0], vec![], vec![]);
        assert_eq!(r.steady_interdeparture_ms(), None);
        assert_eq!(r.steady_rate_fps(), None);
        assert_eq!(r.mean_rate_fps(), None);
        assert_eq!(r.makespan_ms(), 42.0);
    }

    #[test]
    fn utilizations_are_fractions_of_makespan() {
        let r = report();
        let u = r.utilizations();
        assert_eq!(u[0].1, 0.3);
        assert_eq!(u[1].1, 0.95);
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let r2: SimReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, r2);
    }
}
