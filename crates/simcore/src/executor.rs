//! Frame-level execution of a mapped pipeline over FIFO resources.

use crate::engine::{EventQueue, FifoResource};
use crate::report::SimReport;
use crate::Result;
use elpc_mapping::{CostModel, Instance, Mapping, MappingError};
use std::collections::HashMap;

/// Injection schedule for the data source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of datasets (frames) pushed through the pipeline.
    pub frames: usize,
    /// Spacing between injections in ms; `0.0` saturates the pipeline
    /// (streaming mode — each frame is ready as soon as the source can
    /// take it).
    pub interarrival_ms: f64,
}

impl Workload {
    /// A single interactive dataset (the Eq. 1 scenario).
    pub fn single() -> Self {
        Workload {
            frames: 1,
            interarrival_ms: 0.0,
        }
    }

    /// A saturated stream of `frames` datasets (the Eq. 2 scenario).
    pub fn stream(frames: usize) -> Self {
        Workload {
            frames,
            interarrival_ms: 0.0,
        }
    }

    /// A paced stream (e.g. a 30 fps camera: `interarrival_ms = 33.3`).
    pub fn paced(frames: usize, interarrival_ms: f64) -> Self {
        Workload {
            frames,
            interarrival_ms,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.frames == 0 {
            return Err(MappingError::BadConfig(
                "workload needs at least one frame".into(),
            ));
        }
        if !(self.interarrival_ms >= 0.0) || !self.interarrival_ms.is_finite() {
            return Err(MappingError::BadConfig(format!(
                "interarrival must be finite and non-negative, got {}",
                self.interarrival_ms
            )));
        }
        Ok(())
    }
}

/// What a stage occupies while serving a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ResKey {
    /// Compute stages occupy their physical node — *shared* across path
    /// positions when the mapping reuses a node, which is exactly how the
    /// §5 reuse extension degrades throughput.
    Node(elpc_netgraph::NodeId),
    /// Transfer stages occupy a physical directed edge.
    Edge(elpc_netgraph::EdgeId),
    /// Routed transfers (non-adjacent baselines) occupy a private virtual
    /// route, keyed by the boundary index; routes are assumed
    /// non-interfering (documented simplification).
    Route(usize),
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive { frame: usize, stage: usize },
    Complete { frame: usize, stage: usize },
}

/// One stage of the executable chain.
struct ExecStage {
    service_ms: f64,
    resource: usize,
    label: String,
}

/// Executes a strict (adjacent-path) [`Mapping`] under `workload`.
///
/// Service times come from the analytic cost model, so a single frame's
/// completion time equals Eq. 1 by construction; what the simulation adds
/// is *contention*: queueing at shared nodes and links under streaming
/// load, which is the behaviour Eq. 2 summarizes as the bottleneck.
pub fn simulate(
    inst: &Instance<'_>,
    cost: &CostModel,
    mapping: &Mapping,
    workload: Workload,
) -> Result<SimReport> {
    workload.validate()?;
    let stages = cost.stage_times(inst, mapping)?;
    let path = mapping.path();
    let mut exec = Vec::with_capacity(stages.len());
    let mut keys: Vec<ResKey> = Vec::with_capacity(stages.len());
    for stage in &stages {
        match stage {
            elpc_mapping::Stage::Compute {
                position,
                node,
                modules,
                ms,
            } => {
                keys.push(ResKey::Node(*node));
                exec.push(ExecStage {
                    service_ms: *ms,
                    resource: usize::MAX,
                    label: format!(
                        "compute g{} (modules {}..{}) @ node {}",
                        position, modules.start, modules.end, node
                    ),
                });
            }
            elpc_mapping::Stage::Transfer {
                from_position,
                bytes,
                ms,
            } => {
                let a = path[*from_position];
                let b = path[*from_position + 1];
                let (edge, _) = inst
                    .network
                    .best_edge(a, b, *bytes)
                    .expect("validated mappings have adjacent path nodes");
                keys.push(ResKey::Edge(edge));
                exec.push(ExecStage {
                    service_ms: *ms,
                    resource: usize::MAX,
                    label: format!("transfer {a} → {b} ({bytes} B) @ edge {edge}"),
                });
            }
        }
    }
    run(exec, keys, workload)
}

/// Executes a per-module assignment (possibly non-adjacent, e.g. a
/// Streamline placement) using routed transfers. Each inter-host transfer
/// occupies its own virtual route resource.
pub fn simulate_assignment(
    inst: &Instance<'_>,
    cost: &CostModel,
    assignment: &[elpc_netgraph::NodeId],
    workload: Workload,
) -> Result<SimReport> {
    workload.validate()?;
    let ctx = elpc_mapping::SolveContext::new(*inst, *cost);
    // reuse the routed validation by evaluating the delay once; the same
    // context then serves every per-boundary transfer below from cache
    elpc_mapping::routed::routed_delay_ms_ctx(&ctx, assignment)?;
    let net = inst.network;
    let pipe = inst.pipeline;
    let mut exec = Vec::new();
    let mut keys = Vec::new();
    for (j, &node) in assignment.iter().enumerate() {
        let work = pipe.compute_work(j);
        keys.push(ResKey::Node(node));
        exec.push(ExecStage {
            service_ms: if work > 0.0 {
                work / net.power(node)
            } else {
                0.0
            },
            resource: usize::MAX,
            label: format!("compute module {j} @ node {node}"),
        });
        if j + 1 < assignment.len() && assignment[j + 1] != node {
            let bytes = pipe.module(j).output_bytes;
            let ms = ctx.routed_transfer_ms(node, assignment[j + 1], bytes)?;
            keys.push(ResKey::Route(j));
            exec.push(ExecStage {
                service_ms: ms,
                resource: usize::MAX,
                label: format!(
                    "routed transfer {} → {} ({bytes} B)",
                    node,
                    assignment[j + 1]
                ),
            });
        }
    }
    run(exec, keys, workload)
}

fn run(mut exec: Vec<ExecStage>, keys: Vec<ResKey>, workload: Workload) -> Result<SimReport> {
    // bind stages to shared resources
    let mut index: HashMap<ResKey, usize> = HashMap::new();
    let mut resources: Vec<FifoResource<(usize, usize)>> = Vec::new();
    let mut resource_names: Vec<String> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let r = *index.entry(*key).or_insert_with(|| {
            resources.push(FifoResource::new());
            resource_names.push(match key {
                ResKey::Node(n) => format!("node {n}"),
                ResKey::Edge(e) => format!("edge {e}"),
                ResKey::Route(j) => format!("route after module {j}"),
            });
            resources.len() - 1
        });
        exec[i].resource = r;
    }

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut injections = Vec::with_capacity(workload.frames);
    for f in 0..workload.frames {
        let t = f as f64 * workload.interarrival_ms;
        injections.push(t);
        q.schedule(t, Ev::Arrive { frame: f, stage: 0 });
    }
    let mut completions = vec![f64::NAN; workload.frames];

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrive { frame, stage } => {
                let r = exec[stage].resource;
                if resources[r].arrive((frame, stage)).is_some() {
                    q.schedule(now + exec[stage].service_ms, Ev::Complete { frame, stage });
                }
            }
            Ev::Complete { frame, stage } => {
                let r = exec[stage].resource;
                let ((done_frame, done_stage), next) =
                    resources[r].complete(exec[stage].service_ms);
                debug_assert_eq!((done_frame, done_stage), (frame, stage));
                if let Some(&(nf, ns)) = next {
                    q.schedule(
                        now + exec[ns].service_ms,
                        Ev::Complete {
                            frame: nf,
                            stage: ns,
                        },
                    );
                }
                if stage + 1 < exec.len() {
                    q.schedule(
                        now,
                        Ev::Arrive {
                            frame,
                            stage: stage + 1,
                        },
                    );
                } else {
                    completions[frame] = now;
                }
            }
        }
    }

    debug_assert!(
        completions.iter().all(|c| !c.is_nan()),
        "every frame must complete"
    );
    let busy: Vec<(String, f64)> = resource_names
        .into_iter()
        .zip(resources.iter().map(FifoResource::busy_ms))
        .collect();
    let stage_labels = exec.into_iter().map(|s| s.label).collect();
    Ok(SimReport::new(injections, completions, busy, stage_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_mapping::{elpc_delay, elpc_rate, NodeId};
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// 4-node line with distinct powers and links.
    fn net4() -> Network {
        let mut b = Network::builder();
        let powers = [100.0, 40.0, 200.0, 80.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        b.add_link(ns[0], ns[1], 100.0, 1.0).unwrap();
        b.add_link(ns[1], ns[2], 50.0, 2.0).unwrap();
        b.add_link(ns[2], ns[3], 200.0, 0.5).unwrap();
        b.build().unwrap()
    }

    fn pipe4() -> Pipeline {
        Pipeline::new(vec![
            Module::new(0.0, 2e5),
            Module::new(1.5, 1e5),
            Module::new(3.0, 4e4),
            Module::new(0.8, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn single_frame_delay_equals_eq1() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_delay::solve(&inst, &cost()).unwrap();
        let report = simulate(&inst, &cost(), &sol.mapping, Workload::single()).unwrap();
        let sim_delay = report.end_to_end_delay_ms(0).unwrap();
        assert!(
            (sim_delay - sol.delay_ms).abs() < 1e-6,
            "sim {sim_delay} vs analytic {}",
            sol.delay_ms
        );
    }

    #[test]
    fn saturated_stream_rate_equals_eq2_reciprocal() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_rate::solve(&inst, &cost()).unwrap();
        let report = simulate(&inst, &cost(), &sol.mapping, Workload::stream(50)).unwrap();
        let gap = report.steady_interdeparture_ms().unwrap();
        assert!(
            (gap - sol.bottleneck_ms).abs() < 1e-6,
            "steady gap {gap} vs bottleneck {}",
            sol.bottleneck_ms
        );
        let fps = report.steady_rate_fps().unwrap();
        assert!((fps - sol.frame_rate_fps()).abs() < 1e-6);
    }

    #[test]
    fn node_reuse_serializes_shared_compute() {
        // both middle modules grouped on one node but in *separate* path
        // positions is impossible on a line; instead map a 3-module
        // pipeline with modules 0,1 grouped on the source: streaming
        // throughput is limited by the shared source node doing
        // module-1 work for every frame.
        let mut b = Network::builder();
        let s = b.add_node(10.0).unwrap();
        let d = b.add_node(10.0).unwrap();
        b.add_link(s, d, 1000.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e5),
            Module::new(2.0, 1e4), // 2*1e5/10 = 20000 ms on the source
            Module::new(1.0, 0.0), // 1e4/10 = 1000 ms on dst
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, s, d).unwrap();
        let mapping = elpc_mapping::Mapping::from_parts(vec![s, d], vec![2, 1]).unwrap();
        let report = simulate(&inst, &cost(), &mapping, Workload::stream(20)).unwrap();
        let gap = report.steady_interdeparture_ms().unwrap();
        // bottleneck = source compute group = 20000 ms
        assert!((gap - 20000.0).abs() < 1e-6, "gap {gap}");
    }

    #[test]
    fn paced_injection_below_capacity_tracks_the_camera() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_rate::solve(&inst, &cost()).unwrap();
        // pace slower than the bottleneck: departures follow injections
        let pace = sol.bottleneck_ms * 2.0;
        let report = simulate(&inst, &cost(), &sol.mapping, Workload::paced(20, pace)).unwrap();
        let gap = report.steady_interdeparture_ms().unwrap();
        assert!((gap - pace).abs() < 1e-6, "gap {gap} vs pace {pace}");
        // every frame sees the same (queue-free) latency
        let d0 = report.end_to_end_delay_ms(0).unwrap();
        let d19 = report.end_to_end_delay_ms(19).unwrap();
        assert!((d0 - d19).abs() < 1e-6);
    }

    #[test]
    fn assignment_simulation_matches_routed_delay() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        // a deliberately non-adjacent placement: module 1 on node 2,
        // module 2 back on node 1
        let assignment = vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)];
        let expected = elpc_mapping::routed::routed_delay_ms(&inst, &cost(), &assignment).unwrap();
        let report = simulate_assignment(&inst, &cost(), &assignment, Workload::single()).unwrap();
        let got = report.end_to_end_delay_ms(0).unwrap();
        assert!(
            (got - expected).abs() < 1e-6,
            "sim {got} vs routed {expected}"
        );
    }

    #[test]
    fn utilization_never_exceeds_makespan() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_rate::solve(&inst, &cost()).unwrap();
        let report = simulate(&inst, &cost(), &sol.mapping, Workload::stream(10)).unwrap();
        let makespan = report.makespan_ms();
        for (name, busy) in report.resource_busy_ms() {
            assert!(
                *busy <= makespan + 1e-9,
                "{name} busy {busy} > makespan {makespan}"
            );
        }
        // the bottleneck resource is near-saturated in steady state
        let max_busy = report
            .resource_busy_ms()
            .iter()
            .map(|(_, b)| *b)
            .fold(0.0, f64::max);
        assert!(max_busy > makespan * 0.5);
    }

    #[test]
    fn zero_frames_is_rejected() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_delay::solve(&inst, &cost()).unwrap();
        let w = Workload {
            frames: 0,
            interarrival_ms: 0.0,
        };
        assert!(simulate(&inst, &cost(), &sol.mapping, w).is_err());
        let w = Workload {
            frames: 1,
            interarrival_ms: f64::NAN,
        };
        assert!(simulate(&inst, &cost(), &sol.mapping, w).is_err());
    }

    #[test]
    fn completions_are_monotone_in_frame_index() {
        let net = net4();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(3)).unwrap();
        let sol = elpc_rate::solve(&inst, &cost()).unwrap();
        let report = simulate(&inst, &cost(), &sol.mapping, Workload::stream(15)).unwrap();
        let c = report.completions_ms();
        for w in c.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "FIFO order violated: {w:?}");
        }
    }
}
