//! # elpc-simcore — discrete-event execution of mapped pipelines
//!
//! The paper evaluates its mappings purely with the analytic cost model
//! (Eq. 1/2); the real system behind those models was the remote
//! visualization pipeline of reference \[13\], which we do not have. This
//! crate is the substitution (DESIGN.md §4): a deterministic discrete-event
//! simulator that *executes* a mapped pipeline frame by frame and measures
//! what actually happens, so the analytic objectives can be validated
//! end-to-end (experiment V1):
//!
//! * a single injected dataset's completion time must equal Eq. 1's
//!   end-to-end delay;
//! * the steady-state departure rate of a saturated stream must equal
//!   Eq. 2's `1 / bottleneck` when every stage owns its resources;
//! * when several module groups share a physical node (the §5 "frame rate
//!   with node reuse" extension), the shared node serializes their work and
//!   the achievable rate degrades to `1 / Σ(stage times on that node)` —
//!   the quantity the extension optimizes.
//!
//! ## Model
//!
//! A mapping's stage list (from [`elpc_mapping::CostModel::stage_times`])
//! becomes a chain of FIFO *resources*: each compute stage occupies its
//! physical node, each transfer stage occupies its physical (directed)
//! link. Frames are injected at the source on a configurable schedule and
//! flow through the chain; every resource serves one frame at a time in
//! arrival order. Service times are the analytic stage times — the
//! simulator adds *queueing*, which is exactly the phenomenon Eq. 2
//! abstracts into "the bottleneck".
//!
//! The [`engine`] module (event queue, FIFO resources) is independent of
//! pipelines and reusable as a general DES substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod executor;
mod report;

pub use executor::{simulate, simulate_assignment, Workload};
pub use report::SimReport;

/// Result alias matching the mapping crate's error type (simulation reuses
/// its validation).
pub type Result<T> = std::result::Result<T, elpc_mapping::MappingError>;
