//! Property tests: the discrete-event execution agrees with the analytic
//! cost model on randomly generated instances (experiment V1's invariant).

use elpc_mapping::{elpc_delay, elpc_rate, CostModel, Instance, NodeId};
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use elpc_simcore::{simulate, Workload};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn build_instance(seed: u64) -> (Network, Pipeline) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(4usize..=10);
    let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
    let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
    let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(10.0..1000.0)).collect();
    let mut lr = ChaCha8Rng::seed_from_u64(seed ^ 0xF00D);
    let net = Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| Link::new(lr.gen_range(1.0..1000.0), lr.gen_range(0.01..5.0)),
    )
    .unwrap();
    let n = rng.gen_range(2usize..=k.min(7));
    let pipe = PipelineSpec {
        modules: n,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    (net, pipe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A single simulated dataset experiences exactly the Eq. 1 delay.
    #[test]
    fn simulated_single_frame_equals_analytic_delay(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = elpc_delay::solve(&inst, &cm) {
            let report = simulate(&inst, &cm, &sol.mapping, Workload::single()).unwrap();
            let sim = report.end_to_end_delay_ms(0).unwrap();
            prop_assert!((sim - sol.delay_ms).abs() <= 1e-6 * sol.delay_ms.max(1.0),
                "sim {sim} vs analytic {}", sol.delay_ms);
        }
    }

    /// A saturated simulated stream departs at exactly the Eq. 2 rate.
    #[test]
    fn simulated_stream_rate_equals_analytic_bottleneck(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = elpc_rate::solve(&inst, &cm) {
            let frames = 4 * pipe.len().max(4);
            let report = simulate(&inst, &cm, &sol.mapping, Workload::stream(frames)).unwrap();
            let gap = report.steady_interdeparture_ms().unwrap();
            prop_assert!((gap - sol.bottleneck_ms).abs() <= 1e-6 * sol.bottleneck_ms.max(1.0),
                "gap {gap} vs bottleneck {}", sol.bottleneck_ms);
        }
    }

    /// Under-capacity pacing: departures track injections one-to-one and
    /// latency stays flat (no queueing anywhere).
    #[test]
    fn paced_below_capacity_keeps_latency_flat(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = elpc_rate::solve(&inst, &cm) {
            let pace = sol.bottleneck_ms * 1.5;
            let report = simulate(&inst, &cm, &sol.mapping, Workload::paced(12, pace)).unwrap();
            let d0 = report.end_to_end_delay_ms(0).unwrap();
            for f in 1..12 {
                let df = report.end_to_end_delay_ms(f).unwrap();
                prop_assert!((df - d0).abs() <= 1e-6 * d0.max(1.0),
                    "frame {f} latency {df} drifted from {d0}");
            }
        }
    }

    /// Overloaded pacing can only stretch latency, never shrink it, and
    /// the measured steady rate never exceeds the analytic maximum.
    #[test]
    fn saturation_bounds_the_measured_rate(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = elpc_rate::solve(&inst, &cm) {
            let report = simulate(&inst, &cm, &sol.mapping, Workload::stream(30)).unwrap();
            let fps = report.steady_rate_fps().unwrap();
            let max_fps = sol.frame_rate_fps();
            prop_assert!(fps <= max_fps * (1.0 + 1e-6),
                "measured {fps} exceeds analytic max {max_fps}");
            // last frame waited at least as long as the first
            let d0 = report.end_to_end_delay_ms(0).unwrap();
            let dl = report.end_to_end_delay_ms(29).unwrap();
            prop_assert!(dl + 1e-9 >= d0);
        }
    }
}
