//! Cache-correctness regression tests for the `SolveContext` metric
//! closure.
//!
//! The refactor that introduced [`SolveContext`] deleted four inline
//! Dijkstra blocks (in `elpc_delay::solve_routed`, `elpc_rate::
//! solve_routed_with`, `streamline::place`, and `routed::*`) in favor of
//! one shared, lazily-keyed cache. These tests pin the two properties that
//! make that refactor safe:
//!
//! 1. every closure entry equals a freshly computed `dijkstra` run, bit
//!    for bit, on random `netgraph::gen` topologies;
//! 2. the routed solvers' outputs are bit-identical to reference
//!    implementations that recompute shortest paths inline on every query
//!    — i.e. the pre-refactor behavior.

use elpc_mapping::{
    elpc_delay, routed, streamline, CostModel, Instance, MetricClosure, NodeId, SolveContext,
};
use elpc_netgraph::algo::dijkstra;
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random connected instance: 4..=12 nodes, feasible link budget,
/// 2..=min(k, 7) modules, WAN-like parameters.
fn build_instance(seed: u64) -> (Network, Pipeline) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(4usize..=12);
    let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
    let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
    let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(5.0..2000.0)).collect();
    let mut lr = ChaCha8Rng::seed_from_u64(seed ^ 0xCAC4E);
    let net = Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| Link::new(lr.gen_range(1.0..1000.0), lr.gen_range(0.01..10.0)),
    )
    .unwrap();
    let n = rng.gen_range(2usize..=k.min(7));
    let pipe = PipelineSpec {
        modules: n,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    (net, pipe)
}

fn endpoints(net: &Network) -> (NodeId, NodeId) {
    (NodeId(0), NodeId((net.node_count() - 1) as u32))
}

/// Reference routed-delay DP: the pre-refactor `solve_routed` body, with a
/// fresh Dijkstra per (column, source) and no caching.
fn reference_routed_delay(inst: &Instance<'_>, cost: &CostModel) -> Option<(Vec<NodeId>, f64)> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    let mut prev = vec![f64::INFINITY; k];
    prev[inst.src.index()] = 0.0;
    let mut parents: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(n - 1);
    let mut cur = vec![f64::INFINITY; k];
    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        let mut parent: Vec<Option<NodeId>> = vec![None; k];
        for v in 0..k {
            cur[v] = if prev[v].is_finite() {
                parent[v] = Some(NodeId::from_index(v));
                prev[v] + work / net.power(NodeId::from_index(v))
            } else {
                f64::INFINITY
            };
        }
        for u in 0..k {
            if !prev[u].is_finite() {
                continue;
            }
            let du = dijkstra(net.graph(), NodeId::from_index(u), |eid, _| {
                cost.edge_transfer_ms(net, eid, in_bytes)
            })
            .dist;
            for v in 0..k {
                if v == u || du[v].is_infinite() {
                    continue;
                }
                let t = prev[u] + du[v] + work / net.power(NodeId::from_index(v));
                if t < cur[v] {
                    cur[v] = t;
                    parent[v] = Some(NodeId::from_index(u));
                }
            }
        }
        parents.push(parent);
        std::mem::swap(&mut prev, &mut cur);
    }
    let total = prev[inst.dst.index()];
    if !total.is_finite() {
        return None;
    }
    let mut assignment = vec![inst.dst; n];
    let mut node = inst.dst;
    for j in (1..n).rev() {
        assignment[j] = node;
        node = parents[j - 1][node.index()].expect("finite cells have parents");
    }
    assignment[0] = node;
    Some((assignment, total))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: every metric-closure entry equals a fresh Dijkstra run,
    /// bit for bit, including predecessor links — and repeat queries are
    /// served from cache.
    #[test]
    fn closure_entries_equal_fresh_dijkstra(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let cost = CostModel::default();
        let closure = MetricClosure::new(&net, cost);
        let k = net.node_count();
        // query the closure with the instance's real payload sizes plus a
        // couple of synthetic ones
        let mut sizes: Vec<f64> = (1..pipe.len()).map(|j| pipe.input_bytes(j)).collect();
        sizes.push(1.0);
        sizes.push(3.5e6);
        for &bytes in &sizes {
            for u in 0..k {
                let cached = closure.routed_from(NodeId::from_index(u), bytes);
                let fresh = dijkstra(net.graph(), NodeId::from_index(u), |eid, _| {
                    cost.edge_transfer_ms(&net, eid, bytes)
                });
                for v in 0..k {
                    prop_assert_eq!(cached.dist[v].to_bits(), fresh.dist[v].to_bits(),
                        "dist mismatch: bytes {} source {} target {}", bytes, u, v);
                    prop_assert_eq!(cached.prev[v], fresh.prev[v]);
                }
            }
        }
        // second pass over the same queries must be all hits
        let before = closure.stats();
        for &bytes in &sizes {
            for u in 0..k {
                closure.routed_from(NodeId::from_index(u), bytes);
            }
        }
        let after = closure.stats();
        prop_assert_eq!(after.misses, before.misses, "repeat queries recomputed");
        prop_assert!(after.hits > before.hits);
    }

    /// Property 2: `solve_routed` through the shared context is
    /// bit-identical — objective and assignment — to the pre-refactor
    /// reference that recomputes Dijkstra inline on every call.
    #[test]
    fn solve_routed_outputs_are_bit_identical_to_the_uncached_reference(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cost = CostModel::default();
        let reference = reference_routed_delay(&inst, &cost);
        let cached = elpc_delay::solve_routed(&inst, &cost);
        match (reference, cached) {
            (Some((ref_assignment, ref_ms)), Ok(sol)) => {
                prop_assert_eq!(sol.objective_ms.to_bits(), ref_ms.to_bits(),
                    "objective drifted: cached {} vs reference {}", sol.objective_ms, ref_ms);
                prop_assert_eq!(sol.assignment, ref_assignment);
            }
            (None, Err(_)) => {}
            (r, c) => prop_assert!(false, "feasibility disagreement: {r:?} vs {c:?}"),
        }
    }

    /// Routed evaluation of a fixed assignment agrees bit-for-bit between
    /// the cold free functions and a warm shared context, no matter how
    /// much unrelated state the closure already holds.
    #[test]
    fn routed_evaluators_agree_between_cold_and_warm_contexts(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cost = CostModel::default();
        let ctx = SolveContext::new(inst, cost);
        // warm the closure with solver traffic first
        let _ = elpc_delay::solve_routed_ctx(&ctx);
        let _ = streamline::solve_min_delay_ctx(&ctx);
        if let Ok(sl) = streamline::solve_min_delay_ctx(&ctx) {
            let warm = routed::routed_delay_ms_ctx(&ctx, &sl.assignment).unwrap();
            let cold = routed::routed_delay_ms(&inst, &cost, &sl.assignment).unwrap();
            prop_assert_eq!(warm.to_bits(), cold.to_bits());
            prop_assert_eq!(warm.to_bits(), sl.objective_ms.to_bits());
        }
        if let Ok(sl) = streamline::solve_max_rate_ctx(&ctx) {
            let warm = routed::routed_bottleneck_ms_ctx(&ctx, &sl.assignment, true).unwrap();
            let cold = routed::routed_bottleneck_ms(&inst, &cost, &sl.assignment, true).unwrap();
            prop_assert_eq!(warm.to_bits(), cold.to_bits());
        }
    }

    /// Waxman topologies (the other §4.1 generator family) get the same
    /// bit-identical guarantee.
    #[test]
    fn closure_matches_dijkstra_on_waxman_topologies(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = rng.gen_range(5usize..=15);
        let topo = elpc_netgraph::gen::waxman(k, 0.5, 0.4, &mut rng).unwrap();
        let mut lr = ChaCha8Rng::seed_from_u64(seed ^ 0x3A7);
        let powers: Vec<f64> = (0..k).map(|_| lr.gen_range(10.0..1000.0)).collect();
        let net = Network::from_topology(
            &topo,
            |i| Node::with_power(powers[i]),
            |_, _| Link::new(lr.gen_range(1.0..622.0), lr.gen_range(0.1..20.0)),
        )
        .unwrap();
        let cost = CostModel { include_mld: rng.gen_bool(0.5) };
        let closure = MetricClosure::new(&net, cost);
        let bytes = lr.gen_range(1e3..1e7);
        for u in 0..k {
            let cached = closure.routed_from(NodeId::from_index(u), bytes);
            let fresh = dijkstra(net.graph(), NodeId::from_index(u), |eid, _| {
                cost.edge_transfer_ms(&net, eid, bytes)
            });
            for v in 0..k {
                prop_assert_eq!(cached.dist[v].to_bits(), fresh.dist[v].to_bits());
            }
        }
    }
}
