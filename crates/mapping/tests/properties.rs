//! Property-based tests for the mapping solvers.
//!
//! These encode the paper's central claims as machine-checked properties:
//!
//! * §3.1.1's optimality proof — the ELPC-delay DP equals exhaustive search;
//! * Eq. 2 ≤ Eq. 1 — a bottleneck never exceeds the total delay;
//! * the ELPC-rate heuristic never beats the exact optimum, and wider label
//!   sets never hurt it;
//! * baselines never beat the optimal DP on the delay objective.

use elpc_mapping::{
    elpc_delay, elpc_rate, exact, greedy, lns, portfolio, solver, tabu, CostModel, Instance,
    LnsConfig, MappingError, NodeId, Objective, SolveContext, TabuConfig,
};
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random connected instance from a seed: 4..=9 nodes, feasible
/// link budget, 2..=min(k,6) modules.
fn build_instance(seed: u64) -> (Network, Pipeline) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(4usize..=9);
    let max_links = k * (k - 1) / 2;
    let links = rng.gen_range(k - 1..=max_links);
    let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
    let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(5.0..2000.0)).collect();
    let mut link_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    let net = Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| {
            Link::new(
                link_rng.gen_range(1.0..1000.0),
                link_rng.gen_range(0.01..10.0),
            )
        },
    )
    .unwrap();
    let n = rng.gen_range(2usize..=k.min(6));
    let pipe = PipelineSpec {
        modules: n,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    (net, pipe)
}

fn endpoints(net: &Network) -> (NodeId, NodeId) {
    (NodeId(0), NodeId((net.node_count() - 1) as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §3.1.1: "the final solution is optimal for a given mapping problem".
    #[test]
    fn elpc_delay_is_optimal(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        match (elpc_delay::solve(&inst, &cm), exact::min_delay(&inst, &cm, exact::ExactLimits::default())) {
            (Ok(dp), Ok(ex)) => {
                prop_assert!((dp.delay_ms - ex.delay_ms).abs() <= 1e-6 * ex.delay_ms.max(1.0),
                    "DP {} vs exact {}", dp.delay_ms, ex.delay_ms);
            }
            (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
            (dp, ex) => prop_assert!(false, "disagreement: {dp:?} vs {ex:?}"),
        }
    }

    /// The heuristic can never do better than the exact optimum, and its
    /// solution re-evaluates consistently under the cost model.
    #[test]
    fn elpc_rate_never_beats_exact(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        let ex = exact::max_rate(&inst, &cm, exact::ExactLimits::default());
        let heur = elpc_rate::solve(&inst, &cm);
        match (&ex, &heur) {
            (Ok(ex), Ok(h)) => {
                prop_assert!(ex.bottleneck_ms <= h.bottleneck_ms + 1e-9);
                let re = cm.bottleneck_ms(&inst, &h.mapping).unwrap();
                prop_assert!((re - h.bottleneck_ms).abs() < 1e-6 * h.bottleneck_ms.max(1.0));
            }
            (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
            // heuristic may miss a path exact finds; never the reverse
            (Ok(_), Err(MappingError::Infeasible(_))) => {}
            (ex, h) => prop_assert!(false, "unexpected: {ex:?} vs {h:?}"),
        }
    }

    /// Widening the label set is monotone: K labels never worsen the result.
    #[test]
    fn k_labels_are_monotone(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        let k1 = elpc_rate::solve_with(&inst, &cm, elpc_rate::RateConfig { k_labels: 1 });
        let k4 = elpc_rate::solve_with(&inst, &cm, elpc_rate::RateConfig { k_labels: 4 });
        match (k1, k4) {
            (Ok(a), Ok(b)) => prop_assert!(b.bottleneck_ms <= a.bottleneck_ms + 1e-9),
            (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
            // K=4 may find a path K=1 misses; never the reverse
            (Err(MappingError::Infeasible(_)), Ok(_)) => {}
            (a, b) => prop_assert!(false, "unexpected: {a:?} vs {b:?}"),
        }
    }

    /// Eq. 2 ≤ Eq. 1: the slowest stage cannot exceed the sum of stages.
    #[test]
    fn bottleneck_never_exceeds_delay(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        if let Ok(sol) = elpc_delay::solve(&inst, &cm) {
            let b = cm.bottleneck_ms(&inst, &sol.mapping).unwrap();
            prop_assert!(b <= sol.delay_ms + 1e-9);
        }
        if let Ok(sol) = elpc_rate::solve(&inst, &cm) {
            let d = cm.delay_ms(&inst, &sol.mapping).unwrap();
            prop_assert!(sol.bottleneck_ms <= d + 1e-9);
        }
    }

    /// The optimal DP dominates the greedy baseline on every instance
    /// (Fig. 5's qualitative shape).
    #[test]
    fn greedy_never_beats_elpc_delay(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        if let (Ok(e), Ok(g)) = (elpc_delay::solve(&inst, &cm), greedy::solve_min_delay(&inst, &cm)) {
            prop_assert!(e.delay_ms <= g.delay_ms + 1e-9,
                "ELPC {} must dominate greedy {}", e.delay_ms, g.delay_ms);
        }
    }

    /// Greedy rate solutions, when they exist, are valid one-to-one
    /// mappings and never beat the exact optimum.
    #[test]
    fn greedy_rate_solutions_are_sound(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        if let Ok(g) = greedy::solve_max_rate(&inst, &cm) {
            prop_assert!(g.mapping.is_one_to_one());
            g.mapping.validate(&inst, true).unwrap();
            if let Ok(ex) = exact::max_rate(&inst, &cm, exact::ExactLimits::default()) {
                prop_assert!(ex.bottleneck_ms <= g.bottleneck_ms + 1e-9);
            }
        }
    }

    /// Tabu search is seed-deterministic — the same seed yields the same
    /// mapping whether the context is lazy-serial (`threads = 1`) or
    /// all-CPU (`threads = 0`) — and, because the greedy solution is one
    /// of its starting candidates, never worse than greedy on the same
    /// instance (greedy's strict objective upper-bounds its own routed
    /// re-evaluation).
    #[test]
    fn tabu_is_deterministic_and_never_worse_than_greedy(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let config = TabuConfig::default();
            let serial = tabu::solve_tabu(&SolveContext::new(inst, cm), objective, &config);
            let parallel =
                tabu::solve_tabu(&SolveContext::with_threads(inst, cm, 0), objective, &config);
            match (&serial, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.assignment, &b.assignment);
                    prop_assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                other => prop_assert!(false, "divergent feasibility {:?}", other),
            }
            let greedy_ms = match objective {
                Objective::MinDelay => greedy::solve_min_delay(&inst, &cm).ok().map(|s| s.delay_ms),
                Objective::MaxRate => {
                    greedy::solve_max_rate(&inst, &cm).ok().map(|s| s.bottleneck_ms)
                }
            };
            if let (Ok(t), Some(g)) = (&serial, greedy_ms) {
                prop_assert!(t.objective_ms <= g + 1e-9 * g.max(1.0),
                    "tabu {} worse than greedy {} ({objective:?})", t.objective_ms, g);
            }
        }
    }

    /// LNS is seed-deterministic at any thread count and — starting from
    /// the same warm-start candidates as tabu (greedy among them) — never
    /// worse than greedy on the same instance.
    #[test]
    fn lns_is_deterministic_and_never_worse_than_greedy(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let config = LnsConfig {
                budget: 600,
                ..Default::default()
            };
            let serial = lns::solve_lns(&SolveContext::new(inst, cm), objective, &config);
            let parallel =
                lns::solve_lns(&SolveContext::with_threads(inst, cm, 0), objective, &config);
            match (&serial, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.assignment, &b.assignment);
                    prop_assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                other => prop_assert!(false, "divergent feasibility {:?}", other),
            }
            let greedy_ms = match objective {
                Objective::MinDelay => greedy::solve_min_delay(&inst, &cm).ok().map(|s| s.delay_ms),
                Objective::MaxRate => {
                    greedy::solve_max_rate(&inst, &cm).ok().map(|s| s.bottleneck_ms)
                }
            };
            if let (Ok(l), Some(g)) = (&serial, greedy_ms) {
                prop_assert!(l.objective_ms <= g + 1e-9 * g.max(1.0),
                    "lns {} worse than greedy {} ({objective:?})", l.objective_ms, g);
            }
        }
    }

    /// The portfolio registry entries are deterministic across thread
    /// counts (the winner is chosen by value with a fixed tie-break, the
    /// context's `warm_threads` only sets the worker count) and — greedy
    /// being a slate member — never worse than greedy.
    #[test]
    fn portfolio_is_deterministic_and_never_worse_than_greedy(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let cm = CostModel::default();
        for (name, objective) in [
            ("portfolio_delay", Objective::MinDelay),
            ("portfolio_rate", Objective::MaxRate),
        ] {
            let s = solver(name).expect("registered");
            let serial = s.solve(&SolveContext::new(inst, cm));
            let parallel = s.solve(&SolveContext::with_threads(inst, cm, 0));
            match (&serial, &parallel) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.assignment, &b.assignment);
                    prop_assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                other => prop_assert!(false, "divergent feasibility {:?}", other),
            }
            let greedy_ms = match objective {
                Objective::MinDelay => greedy::solve_min_delay(&inst, &cm).ok().map(|s| s.delay_ms),
                Objective::MaxRate => {
                    greedy::solve_max_rate(&inst, &cm).ok().map(|s| s.bottleneck_ms)
                }
            };
            if let (Ok(p), Some(g)) = (&serial, greedy_ms) {
                prop_assert!(p.objective_ms <= g + 1e-9 * g.max(1.0),
                    "{name} {} worse than greedy {}", p.objective_ms, g);
            }
            // a race with an explicit config agrees with the registry entry
            if let Ok(p) = &serial {
                let race = portfolio::solve_portfolio(
                    &SolveContext::new(inst, cm),
                    objective,
                    &portfolio::PortfolioConfig::for_objective(objective),
                ).unwrap();
                prop_assert_eq!(race.solution.objective_ms.to_bits(), p.objective_ms.to_bits());
                prop_assert_eq!(&race.solution.assignment, &p.assignment);
            }
        }
    }

    /// Removing the MLD term can only shrink delays (ablation A1 direction).
    #[test]
    fn dropping_mld_never_increases_optimal_delay(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let (src, dst) = endpoints(&net);
        let inst = Instance::new(&net, &pipe, src, dst).unwrap();
        let with = elpc_delay::solve(&inst, &CostModel { include_mld: true });
        let without = elpc_delay::solve(&inst, &CostModel { include_mld: false });
        if let (Ok(w), Ok(wo)) = (with, without) {
            prop_assert!(wo.delay_ms <= w.delay_ms + 1e-9);
        }
    }
}
