//! Kernel-equivalence lockdown (ISSUE 5): the dense [`EvalKernel`] and its
//! delta-move tier must be indistinguishable from the closure-backed routed
//! evaluators.
//!
//! Two property families:
//!
//! * **Full evaluation** — on random instances and random (possibly
//!   host-reusing, possibly disconnected) assignments, the kernel's full
//!   delay/bottleneck equals `routed_delay_ms_ctx` /
//!   `routed_bottleneck_ms_ctx` **bit for bit**, with the evaluators' error
//!   cases mapping to `f64::INFINITY`.
//! * **Delta reconciliation** — a randomized sequence of delta-applied
//!   reassign/swap moves (including moves into and out of infeasible
//!   assignments on disconnected networks) keeps [`DeltaEval`] exactly
//!   reconciled: after every commit the tracked objective is bit-identical
//!   to a fresh full evaluation, candidate feasibility always agrees,
//!   MaxRate candidate values are bit-exact, and MinDelay candidate values
//!   sit within float-rounding tolerance of the candidate's full sum.

use elpc_mapping::{
    routed, CostModel, DeltaEval, EvalKernel, Instance, MappingError, MoveSpec, NodeId, Objective,
    SolveContext,
};
use elpc_netsim::Network;
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A random instance from a seed: 4..=9 nodes, 2..=min(k,6) modules; every
/// third seed drops enough links to (usually) disconnect the network, so
/// infinite transfer terms are exercised too.
fn build_instance(seed: u64) -> (Network, Pipeline) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(4usize..=9);
    let max_links = k * (k - 1) / 2;
    let links = rng.gen_range(k - 1..=max_links);
    let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
    let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(5.0..2000.0)).collect();
    let mut link_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    let disconnect = seed.is_multiple_of(3);
    let mut b = Network::builder();
    let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
    for &(x, y) in topo.links() {
        // disconnecting variant: drop every link touching node 1 (an
        // interior host candidate), stranding it from the endpoints
        if disconnect && (x == 1 || y == 1) {
            continue;
        }
        b.add_link(
            ns[x as usize],
            ns[y as usize],
            link_rng.gen_range(1.0..1000.0),
            link_rng.gen_range(0.01..10.0),
        )
        .unwrap();
    }
    let net = b.build_unchecked();
    let n = rng.gen_range(2usize..=k.min(6));
    let pipe = PipelineSpec {
        modules: n,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    (net, pipe)
}

/// A random shape-valid assignment: endpoints pinned, interior free (host
/// reuse allowed — the distinct-hosts violation path is part of the
/// contract under test).
fn random_assignment(inst: &Instance<'_>, rng: &mut ChaCha8Rng) -> Vec<NodeId> {
    let n = inst.n_modules();
    let k = inst.network.node_count();
    let mut a: Vec<NodeId> = (0..n)
        .map(|_| NodeId::from_index(rng.gen_range(0..k)))
        .collect();
    a[0] = inst.src;
    *a.last_mut().expect("n >= 2") = inst.dst;
    a
}

/// The kernel-vs-evaluator contract for one assignment.
fn assert_full_equivalence(ctx: &SolveContext<'_>, kernel: &EvalKernel, a: &[NodeId]) {
    let dense = kernel.full_delay_ms(a);
    match routed::routed_delay_ms_ctx(ctx, a) {
        Ok(ms) => assert_eq!(ms.to_bits(), dense.to_bits(), "delay mismatch on {a:?}"),
        Err(MappingError::Infeasible(_)) => {
            assert!(dense.is_infinite(), "unreachable transfer must be ∞")
        }
        Err(e) => panic!("unexpected delay error {e}"),
    }
    for require_distinct in [false, true] {
        let dense = kernel.full_bottleneck_ms(a, require_distinct);
        match routed::routed_bottleneck_ms_ctx(ctx, a, require_distinct) {
            Ok(ms) => assert_eq!(ms.to_bits(), dense.to_bits(), "rate mismatch on {a:?}"),
            Err(MappingError::Infeasible(_)) | Err(MappingError::InvalidMapping(_)) => {
                assert!(dense.is_infinite(), "evaluator error must map to ∞")
            }
            Err(e) => panic!("unexpected rate error {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Full kernel evaluation ≡ the closure-backed routed evaluators, bit
    /// for bit, on random assignments over random (sometimes disconnected)
    /// instances.
    #[test]
    fn kernel_full_evaluation_matches_the_routed_evaluators(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((net.node_count() - 1) as u32)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        let kernel = ctx.eval_kernel();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD15EA5E);
        for _ in 0..25 {
            let a = random_assignment(&inst, &mut rng);
            assert_full_equivalence(&ctx, &kernel, &a);
        }
    }

    /// A randomized sequence of delta-applied moves stays exactly
    /// reconciled with fresh full evaluations, through feasible and
    /// infeasible territory alike.
    #[test]
    fn delta_move_sequences_reconcile_exactly(seed in any::<u64>()) {
        let (net, pipe) = build_instance(seed);
        let k = net.node_count();
        let n = pipe.len();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        let kernel = ctx.eval_kernel();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE17A);
        if n < 3 {
            return Ok(()); // no interior stage, no moves
        }

        for objective in [Objective::MinDelay, Objective::MaxRate] {
            // MaxRate needs a distinct start (and enough hosts)
            let start: Vec<NodeId> = match objective {
                Objective::MaxRate if n <= k => {
                    let mut hosts: Vec<NodeId> = (0..k).map(NodeId::from_index).collect();
                    let last = hosts.remove(k - 1);
                    hosts.truncate(n - 1);
                    hosts.push(last);
                    hosts
                }
                Objective::MaxRate => continue,
                Objective::MinDelay => random_assignment(&inst, &mut rng),
            };
            let mut state = DeltaEval::new(Arc::clone(&kernel), objective, &start);
            let mut shadow = start.clone();
            for _ in 0..60 {
                let mv = if objective == Objective::MinDelay && rng.gen_bool(0.5) {
                    MoveSpec::Reassign {
                        stage: 1 + rng.gen_range(0..n - 2),
                        to: NodeId::from_index(rng.gen_range(0..k)),
                    }
                } else if objective == Objective::MaxRate && n < k && rng.gen_bool(0.5) {
                    // reassign to an unused host, preserving distinctness
                    let used = state.used_hosts();
                    let free: Vec<usize> =
                        (0..k).filter(|&v| !used[v]).collect();
                    MoveSpec::Reassign {
                        stage: 1 + rng.gen_range(0..n - 2),
                        to: NodeId::from_index(free[rng.gen_range(0..free.len())]),
                    }
                } else {
                    let a = 1 + rng.gen_range(0..n - 2);
                    let mut b = 1 + rng.gen_range(0..n - 2);
                    if b == a {
                        b = if b + 1 < n - 1 { b + 1 } else { 1 };
                    }
                    MoveSpec::Swap { a, b }
                };

                // the candidate the move would produce
                let mut cand = shadow.clone();
                match mv {
                    MoveSpec::Reassign { stage, to } => cand[stage] = to,
                    MoveSpec::Swap { a, b } => cand.swap(a, b),
                }
                let full_cand = kernel.full_objective_ms(objective, &cand);
                match state.eval_move(mv) {
                    Some(ms) => {
                        prop_assert!(full_cand.is_finite(), "feasibility must agree");
                        match objective {
                            Objective::MaxRate => prop_assert_eq!(
                                ms.to_bits(), full_cand.to_bits(), "rate deltas are exact"
                            ),
                            Objective::MinDelay => prop_assert!(
                                (ms - full_cand).abs() <= 1e-9 * full_cand.abs().max(1.0),
                                "delay delta {} drifted from full {}", ms, full_cand
                            ),
                        }
                    }
                    None => prop_assert!(full_cand.is_infinite(), "feasibility must agree"),
                }

                // commit: the tracked objective reconciles bit-for-bit
                let committed = state.apply(mv);
                shadow = cand;
                let full_now = kernel.full_objective_ms(objective, &shadow);
                match committed {
                    Some(ms) => prop_assert_eq!(ms.to_bits(), full_now.to_bits(), "apply is exact"),
                    None => prop_assert!(full_now.is_infinite()),
                }
                prop_assert_eq!(state.assignment(), &shadow[..]);
                prop_assert_eq!(state.objective_ms().is_none(), full_now.is_infinite());
            }
        }
    }
}
