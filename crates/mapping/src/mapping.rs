//! The mapping representation: a network path plus a module grouping.

use crate::{Instance, MappingError, Result};
use elpc_netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A pipeline-to-network mapping: the paper's "decompose the pipeline into
/// q groups of modules g1…gq and map them onto a selected path P of q nodes"
/// (§2.3).
///
/// * `path[i]` is the node executing group `i`; consecutive path nodes must
///   be network-adjacent.
/// * `group_sizes[i] ≥ 1` modules run on `path[i]`; groups partition the
///   module chain in order.
/// * With node reuse the path may revisit nodes ("the selected path P
///   contains a loop"); without reuse all path nodes are distinct and every
///   group has exactly one module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    path: Vec<NodeId>,
    group_sizes: Vec<usize>,
}

impl Mapping {
    /// Builds a mapping from a path and per-position group sizes.
    pub fn from_parts(path: Vec<NodeId>, group_sizes: Vec<usize>) -> Result<Self> {
        if path.is_empty() {
            return Err(MappingError::InvalidMapping("empty path".into()));
        }
        if path.len() != group_sizes.len() {
            return Err(MappingError::InvalidMapping(format!(
                "path has {} nodes but {} group sizes",
                path.len(),
                group_sizes.len()
            )));
        }
        if let Some(i) = group_sizes.iter().position(|&s| s == 0) {
            return Err(MappingError::InvalidMapping(format!(
                "group {i} is empty (every path node must run at least one module)"
            )));
        }
        if path.windows(2).any(|w| w[0] == w[1]) {
            return Err(MappingError::InvalidMapping(
                "consecutive path positions repeat a node; merge their groups instead".into(),
            ));
        }
        Ok(Mapping { path, group_sizes })
    }

    /// Builds a mapping from a per-module node assignment by merging
    /// consecutive runs on the same node.
    pub fn from_assignment(assignment: &[NodeId]) -> Result<Self> {
        if assignment.is_empty() {
            return Err(MappingError::InvalidMapping("empty assignment".into()));
        }
        let mut path = Vec::new();
        let mut sizes = Vec::new();
        for &node in assignment {
            match path.last() {
                Some(&last) if last == node => *sizes.last_mut().expect("paired") += 1,
                _ => {
                    path.push(node);
                    sizes.push(1);
                }
            }
        }
        Mapping::from_parts(path, sizes)
    }

    /// The selected network path (q nodes).
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// Group sizes per path position.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Number of groups `q`.
    pub fn q(&self) -> usize {
        self.path.len()
    }

    /// Total number of modules mapped.
    pub fn n_modules(&self) -> usize {
        self.group_sizes.iter().sum()
    }

    /// Expands to one node per module.
    pub fn assignment(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.n_modules());
        for (i, &node) in self.path.iter().enumerate() {
            out.extend(std::iter::repeat_n(node, self.group_sizes[i]));
        }
        out
    }

    /// The node executing module `j` (0-based).
    pub fn node_of_module(&self, j: usize) -> Option<NodeId> {
        let mut start = 0;
        for (i, &size) in self.group_sizes.iter().enumerate() {
            if j < start + size {
                return Some(self.path[i]);
            }
            start += size;
        }
        None
    }

    /// Iterates `(node, module index range)` per group.
    pub fn groups(&self) -> impl Iterator<Item = (NodeId, Range<usize>)> + '_ {
        let mut start = 0usize;
        self.path
            .iter()
            .zip(&self.group_sizes)
            .map(move |(&node, &size)| {
                let r = start..start + size;
                start += size;
                (node, r)
            })
    }

    /// True when no node appears twice anywhere in the path.
    pub fn uses_distinct_nodes(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.path.iter().all(|&n| seen.insert(n))
    }

    /// True when the mapping is one-module-per-node (the no-reuse shape of
    /// §3.1.2).
    pub fn is_one_to_one(&self) -> bool {
        self.uses_distinct_nodes() && self.group_sizes.iter().all(|&s| s == 1)
    }

    /// Validates against an instance: module count, pinned endpoints, and
    /// network adjacency of consecutive path nodes. With `require_distinct`
    /// also enforces the no-reuse shape.
    pub fn validate(&self, inst: &Instance<'_>, require_distinct: bool) -> Result<()> {
        if self.n_modules() != inst.n_modules() {
            return Err(MappingError::InvalidMapping(format!(
                "mapping covers {} modules, pipeline has {}",
                self.n_modules(),
                inst.n_modules()
            )));
        }
        if self.path[0] != inst.src {
            return Err(MappingError::InvalidMapping(format!(
                "first group runs on {} but the data source is pinned to {}",
                self.path[0], inst.src
            )));
        }
        if *self.path.last().expect("non-empty") != inst.dst {
            return Err(MappingError::InvalidMapping(format!(
                "last group runs on {} but the end user is pinned to {}",
                self.path.last().expect("non-empty"),
                inst.dst
            )));
        }
        for w in self.path.windows(2) {
            if inst.network.graph().find_edge(w[0], w[1]).is_none() {
                return Err(MappingError::InvalidMapping(format!(
                    "path nodes {} and {} are not adjacent in the network",
                    w[0], w[1]
                )));
            }
        }
        if require_distinct && !self.is_one_to_one() {
            return Err(MappingError::InvalidMapping(
                "streaming mappings require one module per node with no reuse".into(),
            ));
        }
        Ok(())
    }
}

/// A per-module assignment with its objective value — the output shape of
/// solvers that place modules without the adjacent-path restriction
/// (Streamline's free placement, and the routed-overlay ELPC variants).
/// Transfers between non-adjacent hosts are charged at routed cost
/// (see [`crate::routed`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentSolution {
    /// Node hosting each module, in pipeline order.
    pub assignment: Vec<NodeId>,
    /// Objective value in ms: end-to-end delay (delay mode) or bottleneck
    /// stage time (rate mode).
    pub objective_ms: f64,
}

impl AssignmentSolution {
    /// Frames per second for rate-mode solutions.
    pub fn frame_rate_fps(&self) -> f64 {
        elpc_netsim::units::frame_rate_fps(self.objective_ms)
    }
}

/// A minimum end-to-end delay solution (interactive objective, Eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelaySolution {
    /// The mapping.
    pub mapping: Mapping,
    /// Total end-to-end delay in ms.
    pub delay_ms: f64,
}

/// A maximum frame-rate solution (streaming objective, Eq. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSolution {
    /// The mapping.
    pub mapping: Mapping,
    /// Bottleneck stage time in ms.
    pub bottleneck_ms: f64,
}

impl RateSolution {
    /// Frames per second (Eq. 2 reciprocal).
    pub fn frame_rate_fps(&self) -> f64 {
        elpc_netsim::units::frame_rate_fps(self.bottleneck_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    fn net4() -> Network {
        // 0-1-2-3 line plus 0-2 chord
        let mut b = Network::builder();
        let ns: Vec<NodeId> = (0..4).map(|_| b.add_node(1.0).unwrap()).collect();
        b.add_link(ns[0], ns[1], 10.0, 0.1).unwrap();
        b.add_link(ns[1], ns[2], 10.0, 0.1).unwrap();
        b.add_link(ns[2], ns[3], 10.0, 0.1).unwrap();
        b.add_link(ns[0], ns[2], 10.0, 0.1).unwrap();
        b.build().unwrap()
    }

    fn pipe(n: usize) -> Pipeline {
        let stages: Vec<(f64, f64)> = (0..n - 2).map(|_| (1.0, 50.0)).collect();
        Pipeline::from_stages(100.0, &stages, 2.0).unwrap()
    }

    #[test]
    fn from_assignment_merges_consecutive_runs() {
        let m = Mapping::from_assignment(&[NodeId(0), NodeId(0), NodeId(2), NodeId(2), NodeId(3)])
            .unwrap();
        assert_eq!(m.path(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(m.group_sizes(), &[2, 2, 1]);
        assert_eq!(m.q(), 3);
        assert_eq!(m.n_modules(), 5);
    }

    #[test]
    fn assignment_round_trips() {
        let a = vec![NodeId(0), NodeId(1), NodeId(1), NodeId(2)];
        let m = Mapping::from_assignment(&a).unwrap();
        assert_eq!(m.assignment(), a);
    }

    #[test]
    fn node_of_module_walks_groups() {
        let m = Mapping::from_parts(vec![NodeId(5), NodeId(7)], vec![3, 2]).unwrap();
        assert_eq!(m.node_of_module(0), Some(NodeId(5)));
        assert_eq!(m.node_of_module(2), Some(NodeId(5)));
        assert_eq!(m.node_of_module(3), Some(NodeId(7)));
        assert_eq!(m.node_of_module(4), Some(NodeId(7)));
        assert_eq!(m.node_of_module(5), None);
    }

    #[test]
    fn groups_iterator_yields_ranges() {
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1)], vec![2, 3]).unwrap();
        let gs: Vec<(NodeId, Range<usize>)> = m.groups().collect();
        assert_eq!(gs, vec![(NodeId(0), 0..2), (NodeId(1), 2..5)]);
    }

    #[test]
    fn structural_rejections() {
        assert!(Mapping::from_parts(vec![], vec![]).is_err());
        assert!(Mapping::from_parts(vec![NodeId(0)], vec![]).is_err());
        assert!(Mapping::from_parts(vec![NodeId(0)], vec![0]).is_err());
        // consecutive duplicates must be merged, not repeated
        assert!(Mapping::from_parts(vec![NodeId(0), NodeId(0)], vec![1, 1]).is_err());
        assert!(Mapping::from_assignment(&[]).is_err());
    }

    #[test]
    fn loops_are_allowed_but_detected() {
        // non-contiguous reuse: 0 → 1 → 0 (§2.3 "the selected path P
        // contains a loop")
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1), NodeId(0)], vec![1, 1, 1]).unwrap();
        assert!(!m.uses_distinct_nodes());
        assert!(!m.is_one_to_one());
    }

    #[test]
    fn validate_checks_endpoints_and_adjacency() {
        let net = net4();
        let p = pipe(4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        // 0 → 2 → 3 with group sizes 2,1,1: valid (0-2 chord exists)
        let good =
            Mapping::from_parts(vec![NodeId(0), NodeId(2), NodeId(3)], vec![2, 1, 1]).unwrap();
        good.validate(&inst, false).unwrap();
        // 0 → 3 not adjacent
        let bad = Mapping::from_parts(vec![NodeId(0), NodeId(3)], vec![2, 2]).unwrap();
        assert!(bad.validate(&inst, false).is_err());
        // wrong endpoint
        let bad =
            Mapping::from_parts(vec![NodeId(1), NodeId(2), NodeId(3)], vec![2, 1, 1]).unwrap();
        assert!(bad.validate(&inst, false).is_err());
        // wrong module count
        let bad =
            Mapping::from_parts(vec![NodeId(0), NodeId(2), NodeId(3)], vec![1, 1, 1]).unwrap();
        assert!(bad.validate(&inst, false).is_err());
    }

    #[test]
    fn validate_distinct_enforces_one_to_one() {
        let net = net4();
        let p = pipe(4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let one_to_one = Mapping::from_parts(
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![1, 1, 1, 1],
        )
        .unwrap();
        one_to_one.validate(&inst, true).unwrap();
        let grouped =
            Mapping::from_parts(vec![NodeId(0), NodeId(2), NodeId(3)], vec![2, 1, 1]).unwrap();
        assert!(grouped.validate(&inst, true).is_err());
    }

    #[test]
    fn rate_solution_converts_to_fps() {
        let m = Mapping::from_parts(vec![NodeId(0)], vec![2]).unwrap();
        let s = RateSolution {
            mapping: m,
            bottleneck_ms: 40.0,
        };
        assert!((s.frame_rate_fps() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(2)], vec![1, 3]).unwrap();
        let m2: Mapping = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, m2);
    }
}
