//! The analytic cost model: Eq. 1 (end-to-end delay) and Eq. 2 (bottleneck /
//! frame rate) of §2.3.

use crate::{Instance, Mapping, MappingError, Result};
use elpc_netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Cost-model configuration.
///
/// `include_mld` resolves the paper's internal inconsistency (DESIGN.md
/// erratum 1): §2.2 defines `T_transport = m/b + d` but Eq. 1/3/4 write only
/// `m/b`. The default **includes** the minimum link delay, matching the
/// prose definition and the magnitude of the published results; ablation A1
/// measures the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Include the minimum-link-delay term `d` in transport times.
    pub include_mld: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { include_mld: true }
    }
}

impl CostModel {
    /// A structural fingerprint of the configuration, mixed into cache
    /// keys (`elpc_workloads::ClosureBank`) so closures computed under
    /// different cost models never collide.
    ///
    /// The exhaustive destructuring is deliberate: adding a field to
    /// `CostModel` fails to compile here until the new field is mixed in,
    /// so the cache key can never silently ignore it.
    pub fn fingerprint(&self) -> u64 {
        let CostModel { include_mld } = *self;
        let mut h = elpc_netgraph::fnv::Fnv1a::new();
        h.write_u64(include_mld as u64);
        h.finish()
    }
}

/// One stage of a mapped pipeline's timeline — the breakdown behind both
/// objectives, and the data for the Fig. 3/4 annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// Group `position` computing on `node`: modules `modules`, total
    /// `ms` milliseconds.
    Compute {
        /// Path position (0-based).
        position: usize,
        /// Executing node.
        node: NodeId,
        /// Module index range of the group.
        modules: std::ops::Range<usize>,
        /// Compute time in ms.
        ms: f64,
    },
    /// Transfer from path position `from_position` to the next: `bytes`
    /// over the chosen link, `ms` milliseconds.
    Transfer {
        /// Source path position.
        from_position: usize,
        /// Bytes moved (the last module of the group's output).
        bytes: f64,
        /// Transfer time in ms.
        ms: f64,
    },
}

impl Stage {
    /// The stage's time in ms.
    pub fn ms(&self) -> f64 {
        match self {
            Stage::Compute { ms, .. } | Stage::Transfer { ms, .. } => *ms,
        }
    }

    /// True for compute stages.
    pub fn is_compute(&self) -> bool {
        matches!(self, Stage::Compute { .. })
    }
}

impl CostModel {
    /// Transport time of `bytes` over the best direct link `a → b`
    /// (§2.2's `m/b + d`, MLD per configuration), or `None` when the nodes
    /// are not adjacent.
    pub fn link_transfer_ms(
        &self,
        net: &elpc_netsim::Network,
        a: NodeId,
        b: NodeId,
        bytes: f64,
    ) -> Option<f64> {
        net.graph()
            .neighbors(a)
            .filter(|nb| nb.node == b)
            .map(|nb| self.edge_transfer_ms(net, nb.edge, bytes))
            .min_by(|x, y| x.partial_cmp(y).expect("transfer times are not NaN"))
    }

    /// Transport time of `bytes` over a specific directed edge.
    pub fn edge_transfer_ms(
        &self,
        net: &elpc_netsim::Network,
        edge: elpc_netgraph::EdgeId,
        bytes: f64,
    ) -> f64 {
        self.raw_link_transfer_ms(net.link(edge).expect("valid edge id"), bytes)
    }

    /// Transport time of `bytes` over a bare [`elpc_netsim::Link`] value,
    /// independent of any network. This is [`Self::edge_transfer_ms`]
    /// factored down to the link itself, and is bit-identical to it for
    /// the edge carrying `link` — which is what lets the incremental
    /// (churn) layer price a perturbed edge's old and new cost without
    /// materializing two networks.
    pub fn raw_link_transfer_ms(&self, link: &elpc_netsim::Link, bytes: f64) -> f64 {
        if self.include_mld {
            link.transfer_time_ms(bytes)
        } else {
            link.serialization_time_ms(bytes)
        }
    }

    /// Full per-stage timeline of a mapping (validated against `inst`).
    ///
    /// Stages alternate Compute(g1), Transfer(g1→g2), Compute(g2), … —
    /// exactly the terms of Eq. 1/2. Intra-group transfers are free (§2.3:
    /// "the inter-module transport time within one group on the same node
    /// is negligible").
    pub fn stage_times(&self, inst: &Instance<'_>, mapping: &Mapping) -> Result<Vec<Stage>> {
        mapping.validate(inst, false)?;
        let net = inst.network;
        let pipe = inst.pipeline;
        let mut stages = Vec::with_capacity(mapping.q() * 2 - 1);
        let groups: Vec<(NodeId, std::ops::Range<usize>)> = mapping.groups().collect();
        for (pos, (node, modules)) in groups.iter().enumerate() {
            let power = net.power(*node);
            let work: f64 = modules.clone().map(|j| pipe.compute_work(j)).sum();
            let ms = if work == 0.0 { 0.0 } else { work / power };
            stages.push(Stage::Compute {
                position: pos,
                node: *node,
                modules: modules.clone(),
                ms,
            });
            if pos + 1 < groups.len() {
                // m(g_i): the output of the group's last module
                let bytes = pipe.module(modules.end - 1).output_bytes;
                let ms = self
                    .link_transfer_ms(net, *node, groups[pos + 1].0, bytes)
                    .expect("validate() guarantees adjacency");
                stages.push(Stage::Transfer {
                    from_position: pos,
                    bytes,
                    ms,
                });
            }
        }
        Ok(stages)
    }

    /// Eq. 1 — total end-to-end delay in ms.
    pub fn delay_ms(&self, inst: &Instance<'_>, mapping: &Mapping) -> Result<f64> {
        Ok(self.stage_times(inst, mapping)?.iter().map(Stage::ms).sum())
    }

    /// Eq. 2 — the bottleneck stage time in ms (maximum over group compute
    /// times and inter-group transfers).
    ///
    /// Defined for any mapping shape; the §3.1.2 *no-reuse* problem
    /// additionally requires [`Mapping::is_one_to_one`], which the solvers
    /// enforce. (Grouped mappings are used by the §5 "frame rate with node
    /// reuse" extension.)
    pub fn bottleneck_ms(&self, inst: &Instance<'_>, mapping: &Mapping) -> Result<f64> {
        Ok(self
            .stage_times(inst, mapping)?
            .iter()
            .map(Stage::ms)
            .fold(0.0, f64::max))
    }

    /// The stage achieving the bottleneck (for Fig. 4's "the bottleneck is
    /// located on the last node" style reporting).
    pub fn bottleneck_stage(&self, inst: &Instance<'_>, mapping: &Mapping) -> Result<Stage> {
        let stages = self.stage_times(inst, mapping)?;
        Ok(stages
            .into_iter()
            .max_by(|a, b| a.ms().partial_cmp(&b.ms()).expect("times are not NaN"))
            .expect("mappings have at least one stage"))
    }

    /// Eq. 2 reciprocal — frames per second.
    pub fn frame_rate_fps(&self, inst: &Instance<'_>, mapping: &Mapping) -> Result<f64> {
        Ok(elpc_netsim::units::frame_rate_fps(
            self.bottleneck_ms(inst, mapping)?,
        ))
    }

    /// Validation helper shared by solvers: ensures the instance's pipeline
    /// and network are individually sane before solving.
    pub fn check_instance(&self, inst: &Instance<'_>) -> Result<()> {
        inst.network.validate().map_err(MappingError::from)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    /// The worked micro-instance used across solver tests:
    ///
    /// nodes: 0 (p=100, src) — 1 (p=50) — 2 (p=200, dst), line topology
    /// links: 0-1 (1 Mbps, 2 ms), 1-2 (2 Mbps, 1 ms)
    /// pipeline: source (m0=1e5), stage (c=2, m1=5e4), sink (c=1)
    fn fixture() -> (Network, Pipeline) {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(50.0).unwrap();
        let n2 = b.add_node(200.0).unwrap();
        b.add_link(n0, n1, 1.0, 2.0).unwrap();
        b.add_link(n1, n2, 2.0, 1.0).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e5),
            Module::new(2.0, 5e4),
            Module::new(1.0, 0.0),
        ])
        .unwrap();
        (net, pipe)
    }

    #[test]
    fn delay_matches_hand_computation() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        // mapping: module 0 on n0, module 1 on n1, module 2 on n2
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1), NodeId(2)], vec![1, 1, 1]).unwrap();
        // transfer 1e5 B over 1 Mbps: 1e5*8/1e6 s = 0.8 s = 800 ms, + 2 MLD
        // compute module 1 on n1: 2*1e5/50 = 4000 ms
        // transfer 5e4 B over 2 Mbps: 5e4*8/2e6 = 0.2 s = 200 ms + 1 MLD
        // compute module 2 on n2: 1*5e4/200 = 250 ms
        let cm = CostModel::default();
        let d = cm.delay_ms(&inst, &m).unwrap();
        assert!(
            (d - (802.0 + 4000.0 + 201.0 + 250.0)).abs() < 1e-9,
            "got {d}"
        );
        // without MLD, 3 ms less
        let cm = CostModel { include_mld: false };
        let d2 = cm.delay_ms(&inst, &m).unwrap();
        assert!((d - d2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_the_slowest_stage() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1), NodeId(2)], vec![1, 1, 1]).unwrap();
        let cm = CostModel::default();
        // stages: compute0 = 0, xfer 802, compute1 = 4000, xfer 201,
        // compute2 = 250 → bottleneck 4000 (module 1 on weak node 1)
        let b = cm.bottleneck_ms(&inst, &m).unwrap();
        assert!((b - 4000.0).abs() < 1e-9);
        match cm.bottleneck_stage(&inst, &m).unwrap() {
            Stage::Compute { node, modules, .. } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(modules, 1..2);
            }
            s => panic!("expected compute bottleneck, got {s:?}"),
        }
        let fps = cm.frame_rate_fps(&inst, &m).unwrap();
        assert!((fps - 0.25).abs() < 1e-12);
    }

    #[test]
    fn grouping_avoids_transfers() {
        let (net, pipe) = fixture();
        // modules 0 and 1 grouped on the source: no first transfer; the
        // source is powerful (p=100) so compute is 2*1e5/100 = 2000
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1), NodeId(2)], vec![2, 0, 1]);
        assert!(m.is_err()); // empty group forbidden — regroup properly
                             // proper grouped mapping skips node 1 entirely? 0 and 2 are not
                             // adjacent, so the path must still pass node 1 with some module.
                             // Put modules {0,1} on n0, module {2} must traverse n1 — not
                             // expressible without a module on n1; instead test grouping {0,1}
                             // on n0 in a 3-group walk is impossible, so group {0,1} on n0 and
                             // {2} on n1 with dst=n1:
        let inst2 = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1)], vec![2, 1]).unwrap();
        let cm = CostModel::default();
        let stages = cm.stage_times(&inst2, &m).unwrap();
        assert_eq!(stages.len(), 3); // compute, transfer, compute
                                     // group 0 compute: module1 on n0 = 2*1e5/100 = 2000 ms
        assert!((stages[0].ms() - 2000.0).abs() < 1e-9);
        // transfer m1 = 5e4 B over 1 Mbps + 2: 400 + 2
        assert!((stages[1].ms() - 402.0).abs() < 1e-9);
        // sink compute on n1: 1*5e4/50 = 1000 ms
        assert!((stages[2].ms() - 1000.0).abs() < 1e-9);
        assert!((cm.delay_ms(&inst2, &m).unwrap() - 3402.0).abs() < 1e-9);
    }

    #[test]
    fn whole_pipeline_on_one_node_has_no_transfers() {
        let (net, pipe) = fixture();
        // src == dst == node 0; q = 1 ("the path reduces to a single
        // computer when q = 1", §2.3)
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(0)).unwrap();
        let m = Mapping::from_parts(vec![NodeId(0)], vec![3]).unwrap();
        let cm = CostModel::default();
        let stages = cm.stage_times(&inst, &m).unwrap();
        assert_eq!(stages.len(), 1);
        // all compute on n0: (2*1e5 + 1*5e4)/100 = 2500 ms
        assert!((cm.delay_ms(&inst, &m).unwrap() - 2500.0).abs() < 1e-9);
        assert!((cm.bottleneck_ms(&inst, &m).unwrap() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_mappings_are_refused_by_the_cost_model() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        // wrong endpoint
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1)], vec![2, 1]).unwrap();
        let cm = CostModel::default();
        assert!(matches!(
            cm.delay_ms(&inst, &m),
            Err(MappingError::InvalidMapping(_))
        ));
    }

    #[test]
    fn source_module_contributes_no_compute_anywhere() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let m = Mapping::from_parts(vec![NodeId(0), NodeId(1), NodeId(2)], vec![1, 1, 1]).unwrap();
        let cm = CostModel::default();
        let stages = cm.stage_times(&inst, &m).unwrap();
        assert_eq!(stages[0].ms(), 0.0);
        assert!(stages[0].is_compute());
    }

    #[test]
    fn parallel_links_use_the_fastest() {
        let mut b = Network::builder();
        let a = b.add_node(10.0).unwrap();
        let c = b.add_node(10.0).unwrap();
        b.add_link(a, c, 1.0, 0.0).unwrap();
        b.add_link(a, c, 100.0, 0.0).unwrap();
        let net = b.build().unwrap();
        let cm = CostModel::default();
        let t = cm.link_transfer_ms(&net, a, c, 1e6).unwrap();
        assert!((t - 80.0).abs() < 1e-9); // the 100 Mbps link
        assert_eq!(cm.link_transfer_ms(&net, a, NodeId(9), 1.0), None);
    }
}
