//! ELPC maximum frame rate without node reuse (§3.1.2).
//!
//! The underlying problem — the widest path with *exactly* `n` nodes — is
//! NP-complete (the paper's reduction from Hamiltonian Path; reproduced as
//! a test in `exact.rs`). The paper's heuristic adapts the delay DP:
//! a cell `T_j(v)` now holds the best *bottleneck* (Eq. 5/6), "at each step,
//! we ensure that the current node has not been used previously in the
//! path".
//!
//! Keeping only one label (partial path) per cell is what makes it a
//! heuristic: if the single best partial path into `v` blocks the only
//! continuation to the destination, a feasible or better solution is
//! missed. The paper argues this is "extremely rare"; experiment E8
//! measures it against the exact solver. [`RateConfig::k_labels`] keeps the
//! K best distinct partial paths per cell instead of one (ablation A2) —
//! `k_labels = 1` is the published algorithm.
//!
//! Eq. 5's transfer term is `m_{j-1}/b` here (the data module `j` actually
//! receives); the paper prints `m_j`, inconsistent with its own base case
//! Eq. 6 — DESIGN.md erratum 3.

use crate::{
    AssignmentSolution, CostModel, Instance, Mapping, MappingError, RateSolution, Result,
    SolveContext,
};
use elpc_netgraph::NodeId;

/// Configuration for the rate DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateConfig {
    /// Number of labels (distinct partial paths) kept per DP cell.
    /// 1 reproduces the paper's algorithm.
    pub k_labels: usize,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig { k_labels: 1 }
    }
}

/// A partial mapping ending at some node: bottleneck so far, visited-node
/// bitmask, and the predecessor (node, label index) for reconstruction.
#[derive(Debug, Clone)]
struct Label {
    bottleneck: f64,
    mask: Box<[u64]>,
    parent: Option<(NodeId, u32)>,
}

impl Label {
    fn mask_contains(&self, v: usize) -> bool {
        self.mask[v / 64] & (1u64 << (v % 64)) != 0
    }

    fn mask_with(&self, v: usize) -> Box<[u64]> {
        let mut m = self.mask.clone();
        m[v / 64] |= 1u64 << (v % 64);
        m
    }
}

/// Solves with the paper's single-label heuristic.
pub fn solve(inst: &Instance<'_>, cost: &CostModel) -> Result<RateSolution> {
    solve_with(inst, cost, RateConfig::default())
}

/// Solves with an explicit [`RateConfig`].
pub fn solve_with(
    inst: &Instance<'_>,
    cost: &CostModel,
    config: RateConfig,
) -> Result<RateSolution> {
    if config.k_labels == 0 {
        return Err(MappingError::BadConfig(
            "k_labels must be at least 1".into(),
        ));
    }
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    if n > k {
        return Err(MappingError::Infeasible(format!(
            "{n} modules need {n} distinct nodes, network has {k}"
        )));
    }
    if inst.src == inst.dst {
        return Err(MappingError::Infeasible(
            "source and destination coincide; a simple path of ≥ 2 nodes is impossible".into(),
        ));
    }
    let words = k.div_ceil(64);

    // column 0: module 0 on src, zero cost (the source only transfers)
    let mut root_mask = vec![0u64; words].into_boxed_slice();
    root_mask[inst.src.index() / 64] |= 1 << (inst.src.index() % 64);
    let mut columns: Vec<Vec<Vec<Label>>> = Vec::with_capacity(n);
    let mut col0 = vec![Vec::new(); k];
    col0[inst.src.index()].push(Label {
        bottleneck: 0.0,
        mask: root_mask,
        parent: None,
    });
    columns.push(col0);

    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        let prev = &columns[j - 1];
        let mut cur: Vec<Vec<Label>> = vec![Vec::new(); k];
        for (eid, e) in net.graph().edges() {
            let u = e.src.index();
            if prev[u].is_empty() {
                continue;
            }
            let v = e.dst.index();
            // the destination may only host the final module
            if e.dst == inst.dst && j != n - 1 {
                continue;
            }
            let compute = work / net.power(e.dst);
            let transfer = cost.edge_transfer_ms(net, eid, in_bytes);
            for (idx, label) in prev[u].iter().enumerate() {
                if label.mask_contains(v) {
                    continue; // node reuse is disabled for streaming
                }
                let bottleneck = label.bottleneck.max(compute).max(transfer);
                insert_label(
                    &mut cur[v],
                    Label {
                        bottleneck,
                        mask: label.mask_with(v),
                        parent: Some((e.src, idx as u32)),
                    },
                    config.k_labels,
                );
            }
        }
        columns.push(cur);
    }

    let final_labels = &columns[n - 1][inst.dst.index()];
    let Some((best_idx, best)) = final_labels
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.bottleneck.partial_cmp(&b.1.bottleneck).expect("no NaN"))
    else {
        return Err(MappingError::Infeasible(format!(
            "the heuristic found no simple {n}-node path from {} to {} \
             (either none exists or the single-label DP missed it)",
            inst.src, inst.dst
        )));
    };
    let bottleneck = best.bottleneck;

    // reconstruct: walk parent pointers back through the columns
    let mut assignment = vec![inst.dst; n];
    let mut cursor = (inst.dst, best_idx as u32);
    for j in (0..n).rev() {
        assignment[j] = cursor.0;
        let label = &columns[j][cursor.0.index()][cursor.1 as usize];
        match label.parent {
            Some(p) => cursor = p,
            None => debug_assert_eq!(j, 0, "only the root label lacks a parent"),
        }
    }
    debug_assert_eq!(assignment[0], inst.src);

    let mapping = Mapping::from_assignment(&assignment)?;
    debug_assert!(mapping.is_one_to_one(), "rate mappings never reuse nodes");
    debug_assert!({
        let check = cost.bottleneck_ms(inst, &mapping)?;
        (check - bottleneck).abs() <= 1e-6 * bottleneck.max(1.0)
    });
    Ok(RateSolution {
        mapping,
        bottleneck_ms: bottleneck,
    })
}

/// ELPC-rate on the network's metric closure (routed-overlay variant).
///
/// The counterpart of [`crate::elpc_delay::solve_routed`] for the streaming
/// objective: hosts may be any *distinct* nodes (module hosts are still
/// never reused), and each inter-host transfer is one pipeline stage whose
/// time is the best routed transfer. This matches the semantics under
/// which the Streamline baseline is evaluated
/// ([`crate::routed::routed_bottleneck_ms`] with `require_distinct`).
/// Like the strict DP it is a heuristic — the exact routed problem
/// contains the NP-complete strict problem. `solve_routed` keeps the
/// paper-style single label per cell; [`solve_routed_with`] widens it.
pub fn solve_routed(inst: &Instance<'_>, cost: &CostModel) -> Result<AssignmentSolution> {
    solve_routed_with(inst, cost, RateConfig::default())
}

/// [`solve_routed`] with an explicit label-set width and a transient
/// context (cold path).
pub fn solve_routed_with(
    inst: &Instance<'_>,
    cost: &CostModel,
    config: RateConfig,
) -> Result<AssignmentSolution> {
    solve_routed_with_ctx(&SolveContext::new(*inst, *cost), config)
}

/// The routed rate DP over a shared [`SolveContext`]: all routed transfer
/// trees come from the context's metric closure, and the `O(k²)` per-stage
/// label relax runs on [`SolveContext::warm_threads`] chunked column
/// workers (each worker owns a contiguous block of destination cells, so
/// results are bit-for-bit identical at any thread count; `threads == 1`
/// spawns nothing).
pub fn solve_routed_with_ctx(
    ctx: &SolveContext<'_>,
    config: RateConfig,
) -> Result<AssignmentSolution> {
    if config.k_labels == 0 {
        return Err(MappingError::BadConfig(
            "k_labels must be at least 1".into(),
        ));
    }
    let inst = ctx.instance();
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    if n > k {
        return Err(MappingError::Infeasible(format!(
            "{n} modules need {n} distinct hosts, network has {k}"
        )));
    }
    if inst.src == inst.dst {
        return Err(MappingError::Infeasible(
            "source and destination coincide".into(),
        ));
    }

    // parallel tree pre-build on contexts configured for it (lazy no-op
    // otherwise); the label DP below then only reads the shared cache
    ctx.warm_routed_dp();
    // below the crossover size a per-stage scope spawn costs more than the
    // whole O(k²) relax; the serial path computes identical cells
    let threads = if k >= crate::context::MIN_PARALLEL_RELAX_NODES_RATE {
        crate::context::effective_threads(ctx.warm_threads())
    } else {
        1
    };
    let words = k.div_ceil(64);
    let mut root_mask = vec![0u64; words].into_boxed_slice();
    root_mask[inst.src.index() / 64] |= 1 << (inst.src.index() % 64);
    let mut columns: Vec<Vec<Vec<Label>>> = Vec::with_capacity(n);
    let mut col0 = vec![Vec::new(); k];
    col0[inst.src.index()].push(Label {
        bottleneck: 0.0,
        mask: root_mask,
        parent: None,
    });
    columns.push(col0);

    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        let prev = &columns[j - 1];
        let mut cur: Vec<Vec<Label>> = vec![Vec::new(); k];
        // per-source trees in ascending order (the queries the serial
        // source-major loop used to make lazily)
        let trees: Vec<Option<std::sync::Arc<elpc_netgraph::algo::ShortestPaths>>> = prev
            .iter()
            .enumerate()
            .map(|(u, labels)| {
                (!labels.is_empty()).then(|| ctx.routed_from(NodeId::from_index(u), in_bytes))
            })
            .collect();
        // one destination cell: extend every predecessor label in ascending
        // (source, label-index) order — each cell's label set is built from
        // the same insertion sequence whichever chunk it lands in
        crate::context::relax_columns_chunked(threads, &mut cur, |v, cell| {
            let vid = NodeId::from_index(v);
            if vid == inst.dst && j != n - 1 {
                return; // the destination may only host the final module
            }
            let compute = work / net.power(vid);
            for (u, tree) in trees.iter().enumerate() {
                let Some(tree) = tree else { continue };
                if u == v || tree.dist[v].is_infinite() {
                    continue;
                }
                for (idx, label) in prev[u].iter().enumerate() {
                    if label.mask_contains(v) {
                        continue;
                    }
                    let bottleneck = label.bottleneck.max(compute).max(tree.dist[v]);
                    insert_label(
                        cell,
                        Label {
                            bottleneck,
                            mask: label.mask_with(v),
                            parent: Some((NodeId::from_index(u), idx as u32)),
                        },
                        config.k_labels,
                    );
                }
            }
        });
        columns.push(cur);
    }

    let final_labels = &columns[n - 1][inst.dst.index()];
    let Some((best_idx, best)) = final_labels
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.bottleneck.partial_cmp(&b.1.bottleneck).expect("no NaN"))
    else {
        return Err(MappingError::Infeasible(format!(
            "no {n}-host routed placement found from {} to {}",
            inst.src, inst.dst
        )));
    };
    let bottleneck = best.bottleneck;
    let mut assignment = vec![inst.dst; n];
    let mut cursor = (inst.dst, best_idx as u32);
    for j in (0..n).rev() {
        assignment[j] = cursor.0;
        let label = &columns[j][cursor.0.index()][cursor.1 as usize];
        match label.parent {
            Some(p) => cursor = p,
            None => debug_assert_eq!(j, 0),
        }
    }
    debug_assert_eq!(assignment[0], inst.src);
    debug_assert!({
        let re = crate::routed::routed_bottleneck_ms_ctx(ctx, &assignment, true)?;
        (re - bottleneck).abs() <= 1e-6 * bottleneck.max(1.0)
    });
    Ok(AssignmentSolution {
        assignment,
        objective_ms: bottleneck,
    })
}

/// ELPC rate under routed semantics as a small portfolio — the Fig. 2
/// "ELPC rate" column. Members: the routed DP with a modestly widened
/// label set (ablation A2 showed K-best labels recover most single-label
/// misses) and the strict DP's mapping re-evaluated under routed transport;
/// the better placement is polished by
/// [`crate::routed::polish_rate_assignment_ctx`]. Both members are ELPC
/// variants — the portfolio only papers over heuristic label misses.
///
/// All members share the context's metric closure, so the portfolio costs
/// little more than its most expensive member.
pub fn solve_routed_portfolio(ctx: &SolveContext<'_>) -> Result<AssignmentSolution> {
    // wider label sets are cheap on small networks and recover nearly all
    // single-label misses; large networks keep a modest width
    let k_labels = if ctx.network().node_count() <= 100 {
        16
    } else {
        12
    };
    let config = RateConfig { k_labels };

    let mut candidates: Vec<(f64, Vec<NodeId>)> = Vec::new();
    if let Ok(r) = solve_routed_with_ctx(ctx, config) {
        candidates.push((r.objective_ms, r.assignment));
    }
    if let Ok(s) = solve_with(ctx.instance(), ctx.cost(), config) {
        let a = s.mapping.assignment();
        if let Ok(b) = crate::routed::routed_bottleneck_ms_ctx(ctx, &a, true) {
            candidates.push((b, a));
        }
    }
    let Some((_, mut best)) = candidates
        .into_iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("objectives are not NaN"))
    else {
        return Err(MappingError::Infeasible(
            "no ELPC rate variant found a feasible placement".into(),
        ));
    };
    // local-search polish absorbs residual label-pruning misses
    let sweeps = 4;
    let objective_ms = crate::routed::polish_rate_assignment_ctx(ctx, &mut best, sweeps)?;
    Ok(AssignmentSolution {
        assignment: best,
        objective_ms,
    })
}

/// Inserts into a bounded, sorted (ascending bottleneck) label set,
/// dropping exact duplicates (same bottleneck and same visited set).
fn insert_label(labels: &mut Vec<Label>, label: Label, cap: usize) {
    if labels
        .iter()
        .any(|l| l.bottleneck == label.bottleneck && l.mask == label.mask)
    {
        return;
    }
    let pos = labels.partition_point(|l| l.bottleneck <= label.bottleneck);
    if pos >= cap {
        return;
    }
    labels.insert(pos, label);
    labels.truncate(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Two disjoint 2-hop routes 0→3: via 1 (fast node, slow link) and via
    /// 2 (slow node, fast link).
    fn diamond() -> Network {
        let mut b = Network::builder();
        let s = b.add_node(100.0).unwrap();
        let fast_node = b.add_node(1000.0).unwrap();
        let slow_node = b.add_node(10.0).unwrap();
        let d = b.add_node(100.0).unwrap();
        b.add_link(s, fast_node, 1.0, 0.1).unwrap(); // slow link
        b.add_link(fast_node, d, 1.0, 0.1).unwrap();
        b.add_link(s, slow_node, 100.0, 0.1).unwrap(); // fast link
        b.add_link(slow_node, d, 100.0, 0.1).unwrap();
        b.build().unwrap()
    }

    fn pipe3(c: f64, m0: f64, m1: f64) -> Pipeline {
        Pipeline::new(vec![
            Module::new(0.0, m0),
            Module::new(c, m1),
            Module::new(c, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn picks_the_route_with_smaller_bottleneck() {
        let net = diamond();
        // transfer-dominated workload: big data, light compute.
        // via fast_node: links 1 Mbps → 1e6 B = 8000 ms bottleneck
        // via slow_node: links 100 Mbps = 80 ms; compute 0.1*1e6/10 = 10000/
        //   wait, slow node power 10: c=0.01 → 0.01*1e6/10 = 1000 ms. Choose
        //   c small enough that the link dominates: c = 0.001 → 100 ms.
        let p = pipe3(0.001, 1e6, 1e6);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.path()[1], NodeId(2), "fast links win");
        // compute-dominated: heavy compute, tiny data → fast node wins
        let p = pipe3(100.0, 1e3, 1e3);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.path()[1], NodeId(1), "fast node wins");
    }

    #[test]
    fn solution_is_one_to_one_and_validates() {
        let net = diamond();
        let p = pipe3(1.0, 1e5, 1e4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        sol.mapping.validate(&inst, true).unwrap();
        assert_eq!(sol.mapping.q(), 3);
    }

    #[test]
    fn bottleneck_matches_cost_model() {
        let net = diamond();
        let p = pipe3(2.0, 5e5, 2e5);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        let re = cost().bottleneck_ms(&inst, &sol.mapping).unwrap();
        assert!((sol.bottleneck_ms - re).abs() < 1e-9);
        assert!(sol.frame_rate_fps() > 0.0);
    }

    #[test]
    fn more_modules_than_nodes_is_infeasible() {
        let net = diamond();
        let stages: Vec<(f64, f64)> = (0..4).map(|_| (1.0, 1e3)).collect();
        let p = Pipeline::from_stages(1e4, &stages, 1.0).unwrap(); // 6 modules, 4 nodes
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        assert!(matches!(
            solve(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn coincident_endpoints_are_infeasible() {
        let net = diamond();
        let p = pipe3(1.0, 1e4, 1e3);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(0)).unwrap();
        assert!(matches!(
            solve(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn pipeline_longer_than_longest_simple_path_is_infeasible() {
        // 0-1-2 line, 3 nodes; 3-module pipeline fits, but src/dst adjacent
        // (0→1) forces a 2-node path for a 3-module pipeline: infeasible.
        let mut b = Network::builder();
        let n0 = b.add_node(10.0).unwrap();
        let n1 = b.add_node(10.0).unwrap();
        let n2 = b.add_node(10.0).unwrap();
        b.add_link(n0, n1, 10.0, 0.1).unwrap();
        b.add_link(n1, n2, 10.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let p = pipe3(1.0, 1e4, 1e3);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            solve(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
        // but 0 → 2 works: path 0-1-2
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(2)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.path(), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn zero_k_labels_is_rejected() {
        let net = diamond();
        let p = pipe3(1.0, 1e4, 1e3);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        assert!(matches!(
            solve_with(&inst, &cost(), RateConfig { k_labels: 0 }),
            Err(MappingError::BadConfig(_))
        ));
    }

    #[test]
    fn k_labels_never_hurt_the_objective() {
        let net = diamond();
        for (c, m0, m1) in [(0.5, 1e5, 5e4), (3.0, 1e6, 1e5), (0.01, 1e6, 1e6)] {
            let p = pipe3(c, m0, m1);
            let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
            let k1 = solve_with(&inst, &cost(), RateConfig { k_labels: 1 }).unwrap();
            let k4 = solve_with(&inst, &cost(), RateConfig { k_labels: 4 }).unwrap();
            assert!(k4.bottleneck_ms <= k1.bottleneck_ms + 1e-9);
        }
    }

    /// The documented failure mode of the single-label heuristic: the best
    /// partial path into a cut node blocks the only continuation.
    /// Topology ("theta" graph):
    ///
    /// ```text
    ///        s ——fast—— a ——fast—— c ———— d
    ///        └──slow——— b ——fast———┘
    /// ```
    ///
    /// 4 modules must use s→{a|b}→c→d. The fast s-a edge beats s-b, so the
    /// single label at column 1 sits on `a`… which is fine here; to force a
    /// miss we make the a→c edge terrible, so the *optimal* route is s-b-c-d
    /// but a greedy per-cell winner via `a` can coexist — multi-label search
    /// must still find the optimum.
    #[test]
    fn k_labels_recover_the_optimum_when_single_label_is_misled() {
        let mut bld = Network::builder();
        let s = bld.add_node(100.0).unwrap();
        let a = bld.add_node(100.0).unwrap();
        let b = bld.add_node(100.0).unwrap();
        let c = bld.add_node(100.0).unwrap();
        let d = bld.add_node(100.0).unwrap();
        bld.add_link(s, a, 1000.0, 0.1).unwrap(); // fast
        bld.add_link(s, b, 10.0, 0.1).unwrap(); // slow
        bld.add_link(a, c, 1.0, 0.1).unwrap(); // terrible
        bld.add_link(b, c, 1000.0, 0.1).unwrap(); // fast
        bld.add_link(c, d, 1000.0, 0.1).unwrap();
        let net = bld.build().unwrap();
        let stages = vec![(0.01, 1e5), (0.01, 1e5)];
        let p = Pipeline::from_stages(1e5, &stages, 0.01).unwrap(); // 4 modules
        let inst = Instance::new(&net, &p, s, d).unwrap();
        let k1 = solve_with(&inst, &cost(), RateConfig { k_labels: 1 }).unwrap();
        let k4 = solve_with(&inst, &cost(), RateConfig { k_labels: 4 }).unwrap();
        // the optimum goes via b; single-label also finds it here because
        // cell c at column 2 keeps the better bottleneck — the point is
        // both must agree with the s-b-c-d bottleneck (the slow s-b link).
        assert_eq!(k4.mapping.path(), &[s, b, c, d]);
        assert!(k4.bottleneck_ms <= k1.bottleneck_ms);
    }

    #[test]
    fn deterministic_results() {
        let net = diamond();
        let p = pipe3(1.0, 1e5, 1e4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let a = solve(&inst, &cost()).unwrap();
        let b = solve(&inst, &cost()).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.bottleneck_ms, b.bottleneck_ms);
    }

    #[test]
    fn routed_variant_relaxes_the_strict_problem() {
        let net = diamond();
        let p = pipe3(1.0, 1e5, 1e4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(3)).unwrap();
        let strict = solve(&inst, &cost()).unwrap();
        let routed = solve_routed(&inst, &cost()).unwrap();
        // routed hosts are a superset of strict adjacent paths
        assert!(routed.objective_ms <= strict.bottleneck_ms + 1e-9);
        // distinct hosts, pinned endpoints
        let mut seen = std::collections::BTreeSet::new();
        for &h in &routed.assignment {
            assert!(seen.insert(h));
        }
        assert_eq!(routed.assignment[0], NodeId(0));
        assert_eq!(*routed.assignment.last().unwrap(), NodeId(3));
    }

    #[test]
    fn routed_variant_usually_dominates_streamline() {
        use rand::{Rng, SeedableRng};
        let mut wins = 0;
        let mut comparisons = 0;
        for seed in 0..15u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let k = rng.gen_range(4..9);
            let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
            let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
            let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(10.0..1000.0)).collect();
            let mut lr = rand_chacha::ChaCha8Rng::seed_from_u64(seed + 55);
            let net = Network::from_topology(
                &topo,
                |i| elpc_netsim::Node::with_power(powers[i]),
                |_, _| elpc_netsim::Link::new(lr.gen_range(1.0..1000.0), lr.gen_range(0.1..5.0)),
            )
            .unwrap();
            let n = rng.gen_range(2..=k.min(5));
            let p = elpc_pipeline::gen::PipelineSpec {
                modules: n,
                ..Default::default()
            }
            .generate(&mut rng)
            .unwrap();
            let inst = Instance::new(&net, &p, NodeId(0), NodeId((k - 1) as u32)).unwrap();
            if let (Ok(r), Ok(s)) = (
                solve_routed(&inst, &cost()),
                crate::streamline::solve_max_rate(&inst, &cost()),
            ) {
                comparisons += 1;
                if r.objective_ms <= s.objective_ms + 1e-9 {
                    wins += 1;
                }
            }
        }
        assert!(comparisons >= 5, "too few comparisons ran");
        // heuristic vs heuristic: dominance is not guaranteed, but the DP
        // should win essentially always
        assert!(
            wins as f64 >= comparisons as f64 * 0.9,
            "routed ELPC won only {wins}/{comparisons}"
        );
    }
}
