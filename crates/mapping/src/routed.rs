//! Routed-transport evaluation of arbitrary per-module assignments.
//!
//! The ELPC formulation (§2.3) maps module groups onto a *path*: consecutive
//! groups sit on network-adjacent nodes and Eq. 1/2 charge the direct link.
//! The Streamline baseline, by contrast, was designed for a grid overlay
//! "with n resources and n×n communication links" (§3.2) — it freely
//! assigns any stage to any node. On an arbitrary sparse topology its
//! placements are not always adjacent, so transfers must be *routed*: the
//! transfer between hosts `a` and `b` costs the minimum over network routes
//! of the summed per-hop transport times (store-and-forward message
//! semantics, computed by Dijkstra with the §2.2 edge cost).
//!
//! For an assignment whose consecutive hosts *are* adjacent, the routed
//! value never exceeds the Eq. 1 value (a direct link is one of the
//! candidate routes), which keeps cross-algorithm comparisons conservative
//! toward the baselines: the experiment tables evaluate ELPC under its
//! strict Eq. 1/2 semantics and the baselines under this (never-worse)
//! routed relaxation, so the reported ELPC advantage is a lower bound.

use crate::{CostModel, Instance, MappingError, MetricClosure, Result, SolveContext};
use elpc_netgraph::NodeId;

/// Minimum routed transport time of `bytes` from `a` to `b` (ms): the
/// cheapest route by total per-hop transport time. Zero when `a == b`.
///
/// Cold-path convenience over [`MetricClosure::routed_transfer_ms`]; when
/// evaluating many transfers on one network, build a [`MetricClosure`] (or a
/// full [`SolveContext`]) and query it instead so the per-source Dijkstra
/// runs are shared.
pub fn routed_transfer_ms(
    net: &elpc_netsim::Network,
    cost: &CostModel,
    a: NodeId,
    b: NodeId,
    bytes: f64,
) -> Result<f64> {
    MetricClosure::new(net, *cost).routed_transfer_ms(a, b, bytes)
}

/// Validates the assignment shape shared by both routed objectives.
fn check_assignment(inst: &Instance<'_>, assignment: &[NodeId]) -> Result<()> {
    if assignment.len() != inst.n_modules() {
        return Err(MappingError::InvalidMapping(format!(
            "assignment covers {} modules, pipeline has {}",
            assignment.len(),
            inst.n_modules()
        )));
    }
    for &node in assignment {
        inst.network
            .graph()
            .check_node(node)
            .map_err(elpc_netsim::NetworkError::from)?;
    }
    if assignment[0] != inst.src {
        return Err(MappingError::InvalidMapping(format!(
            "module 0 assigned to {} but the data source is {}",
            assignment[0], inst.src
        )));
    }
    if *assignment.last().expect("non-empty") != inst.dst {
        return Err(MappingError::InvalidMapping(format!(
            "last module assigned to {} but the end user is {}",
            assignment.last().expect("non-empty"),
            inst.dst
        )));
    }
    Ok(())
}

/// End-to-end delay (Eq. 1 semantics, routed transfers) of an assignment,
/// sharing the context's metric closure.
pub fn routed_delay_ms_ctx(ctx: &SolveContext<'_>, assignment: &[NodeId]) -> Result<f64> {
    let inst = ctx.instance();
    check_assignment(inst, assignment)?;
    let net = inst.network;
    let pipe = inst.pipeline;
    let mut total = 0.0;
    for (j, &node) in assignment.iter().enumerate() {
        let work = pipe.compute_work(j);
        if work > 0.0 {
            total += work / net.power(node);
        }
        if j + 1 < assignment.len() && assignment[j + 1] != node {
            let bytes = pipe.module(j).output_bytes;
            total += ctx.routed_transfer_ms(node, assignment[j + 1], bytes)?;
        }
    }
    Ok(total)
}

/// End-to-end delay of an assignment with a transient context (cold path).
pub fn routed_delay_ms(
    inst: &Instance<'_>,
    cost: &CostModel,
    assignment: &[NodeId],
) -> Result<f64> {
    routed_delay_ms_ctx(&SolveContext::new(*inst, *cost), assignment)
}

/// Bottleneck stage time (Eq. 2 semantics, routed transfers) of an
/// assignment, sharing the context's metric closure. With
/// `require_distinct`, node reuse is rejected (the streaming constraint of
/// §3.1.2).
pub fn routed_bottleneck_ms_ctx(
    ctx: &SolveContext<'_>,
    assignment: &[NodeId],
    require_distinct: bool,
) -> Result<f64> {
    let inst = ctx.instance();
    check_assignment(inst, assignment)?;
    if require_distinct {
        let mut seen = std::collections::BTreeSet::new();
        for &n in assignment {
            if !seen.insert(n) {
                return Err(MappingError::InvalidMapping(format!(
                    "node {n} hosts more than one module but reuse is disabled"
                )));
            }
        }
    }
    let net = inst.network;
    let pipe = inst.pipeline;
    let mut bottleneck = 0.0_f64;
    for (j, &node) in assignment.iter().enumerate() {
        let work = pipe.compute_work(j);
        if work > 0.0 {
            bottleneck = bottleneck.max(work / net.power(node));
        }
        if j + 1 < assignment.len() && assignment[j + 1] != node {
            let bytes = pipe.module(j).output_bytes;
            bottleneck = bottleneck.max(ctx.routed_transfer_ms(node, assignment[j + 1], bytes)?);
        }
    }
    Ok(bottleneck)
}

/// Bottleneck of an assignment with a transient context (cold path).
pub fn routed_bottleneck_ms(
    inst: &Instance<'_>,
    cost: &CostModel,
    assignment: &[NodeId],
    require_distinct: bool,
) -> Result<f64> {
    routed_bottleneck_ms_ctx(
        &SolveContext::new(*inst, *cost),
        assignment,
        require_distinct,
    )
}

/// Per-sweep transfer-distance tables behind the polish's move estimates:
/// dense kernel rows when the context already snapshot one (identical
/// values, no per-sweep tree fetches), otherwise shortest-path trees from
/// the shared closure. `fwd(j, v)` is the routed time of boundary `j`'s
/// payload from `host[j]` to `v`; `rev(j, v)` is the time from `host[j+1]`
/// to `v` (the symmetric reverse estimate).
enum SweepTables<'t> {
    Kernel(&'t crate::eval::EvalKernel, &'t [NodeId]),
    Trees {
        fwd: Vec<std::sync::Arc<elpc_netgraph::algo::ShortestPaths>>,
        rev: Vec<std::sync::Arc<elpc_netgraph::algo::ShortestPaths>>,
    },
}

impl SweepTables<'_> {
    #[inline]
    fn fwd(&self, j: usize, v: usize) -> f64 {
        match self {
            SweepTables::Kernel(kernel, hosts) => {
                kernel.transfer_ms(j, hosts[j], NodeId::from_index(v))
            }
            SweepTables::Trees { fwd, .. } => fwd[j].dist[v],
        }
    }

    #[inline]
    fn rev(&self, j: usize, v: usize) -> f64 {
        match self {
            SweepTables::Kernel(kernel, hosts) => {
                kernel.transfer_ms(j, hosts[j + 1], NodeId::from_index(v))
            }
            SweepTables::Trees { rev, .. } => rev[j].dist[v],
        }
    }
}

/// Hill-climbing polish for a routed rate assignment: per sweep, estimate
/// every single-module relocation (to an unused node) and every interior
/// host swap from precomputed routed-distance tables, then apply the best
/// estimated move and re-verify it exactly; repeat until no move improves
/// or `max_sweeps` moves were taken. Endpoints stay pinned; distinctness is
/// preserved.
///
/// Move estimation assumes symmetric transfer costs (the builder's
/// undirected links), but acceptance is gated on an exact
/// [`routed_bottleneck_ms`] re-evaluation, so the result is correct on any
/// network — asymmetry only costs move-selection quality.
///
/// When some solver on the context already built the dense
/// [`crate::eval::EvalKernel`] (as any compare row or portfolio slate
/// containing a metaheuristic does), the distance tables are read straight
/// out of its flat matrices — same values, so the polish trajectory is
/// unchanged — and the per-sweep tree fetches disappear. On a cold context
/// the polish keeps its lazy closure path: its own `2n` trees per sweep
/// are cheaper than an all-sources kernel snapshot it would not amortize.
///
/// Used by the comparison harness to absorb label-pruning misses of the DP
/// heuristics; the result is always a valid no-reuse placement.
pub fn polish_rate_assignment_ctx(
    ctx: &SolveContext<'_>,
    assignment: &mut Vec<NodeId>,
    max_sweeps: usize,
) -> Result<f64> {
    let inst = ctx.instance();
    let mut current = routed_bottleneck_ms_ctx(ctx, assignment, true)?;
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = assignment.len();
    if n <= 2 {
        return Ok(current); // endpoints are pinned; nothing to move
    }
    let k = net.node_count();
    let kernel = ctx.eval_kernel_cached();

    for _ in 0..max_sweeps {
        // --- tables: routed distances per boundary, both directions -----
        // fwd(j, ·) from host[j] with bytes m_j (boundary j → j+1),
        // rev(j, ·) from host[j+1] (symmetric reverse) — dense kernel rows
        // when available, otherwise per-sweep trees from the shared closure
        let tables = match &kernel {
            Some(kern) => SweepTables::Kernel(kern, assignment),
            None => {
                let mut fwd = Vec::with_capacity(n - 1);
                let mut rev = Vec::with_capacity(n - 1);
                for j in 0..n - 1 {
                    let bytes = pipe.module(j).output_bytes;
                    fwd.push(ctx.routed_from(assignment[j], bytes));
                    rev.push(ctx.routed_from(assignment[j + 1], bytes));
                }
                SweepTables::Trees { fwd, rev }
            }
        };
        // stage times: stages[2j] = compute_j, stages[2j+1] = transfer_j
        let mut stages = vec![0.0_f64; 2 * n - 1];
        for j in 0..n {
            let work = pipe.compute_work(j);
            stages[2 * j] = if work > 0.0 {
                work / net.power(assignment[j])
            } else {
                0.0
            };
            if j + 1 < n {
                stages[2 * j + 1] = tables.fwd(j, assignment[j + 1].index());
            }
        }
        // prefix/suffix maxima for O(1) "max excluding a window"
        let len = stages.len();
        let mut pre = vec![0.0_f64; len + 1];
        let mut suf = vec![0.0_f64; len + 1];
        for i in 0..len {
            pre[i + 1] = pre[i].max(stages[i]);
        }
        for i in (0..len).rev() {
            suf[i] = suf[i + 1].max(stages[i]);
        }
        let max_excluding = |lo: usize, hi: usize| -> f64 {
            // max of stages outside [lo, hi]
            pre[lo].max(suf[hi + 1])
        };
        let used: std::collections::BTreeSet<NodeId> = assignment.iter().copied().collect();

        // --- enumerate candidate moves ----------------------------------
        #[derive(Clone, Copy)]
        enum Move {
            Relocate(usize, NodeId),
            Swap(usize, usize),
        }
        let mut best_est = current;
        let mut best_move: Option<Move> = None;
        // relocations of interior modules
        for j in 1..n - 1 {
            let work = pipe.compute_work(j);
            let others = max_excluding(2 * j - 1, 2 * j + 1);
            for vi in 0..k {
                let v = NodeId::from_index(vi);
                if used.contains(&v) {
                    continue;
                }
                // estimated affected stages: t_{j-1}, c_j, t_j
                let t_prev = tables.fwd(j - 1, vi);
                let t_next = tables.rev(j, vi); // symmetric estimate of t(v, host[j+1])
                if !t_prev.is_finite() || !t_next.is_finite() {
                    continue;
                }
                let c_j = if work > 0.0 { work / net.power(v) } else { 0.0 };
                let est = others.max(t_prev).max(c_j).max(t_next);
                if est < best_est - 1e-12 {
                    best_est = est;
                    best_move = Some(Move::Relocate(j, v));
                }
            }
        }
        // interior swaps (estimate by scanning affected stages exactly)
        for a in 1..n - 1 {
            for b in a + 1..n - 1 {
                let ha = assignment[a].index();
                let hb = assignment[b].index();
                let wa = pipe.compute_work(a);
                let wb = pipe.compute_work(b);
                // affected transfers use table symmetry; adjacent pairs share t_a
                let (t_am1, t_a, t_bm1, t_b);
                t_am1 = tables.fwd(a - 1, hb);
                t_b = tables.rev(b, ha);
                if b == a + 1 {
                    // boundary a now runs host_b → host_a
                    t_a = tables.fwd(a, hb); // symmetric: t(host_b, host_a, m_a)
                    t_bm1 = t_a;
                } else {
                    t_a = tables.rev(a, hb);
                    t_bm1 = tables.fwd(b - 1, ha);
                }
                if ![t_am1, t_a, t_bm1, t_b].iter().all(|t| t.is_finite()) {
                    continue;
                }
                let c_a = if wa > 0.0 {
                    wa / net.power(NodeId::from_index(hb))
                } else {
                    0.0
                };
                let c_b = if wb > 0.0 {
                    wb / net.power(NodeId::from_index(ha))
                } else {
                    0.0
                };
                // max over unaffected stages: scan once (O(n)); swaps touch
                // two windows so prefix/suffix alone cannot exclude both
                let mut others = 0.0_f64;
                for (i, &s) in stages.iter().enumerate() {
                    let touched =
                        (i >= 2 * a - 1 && i <= 2 * a + 1) || (i >= 2 * b - 1 && i <= 2 * b + 1);
                    if !touched {
                        others = others.max(s);
                    }
                }
                let est = others
                    .max(t_am1)
                    .max(c_a)
                    .max(t_a)
                    .max(t_bm1)
                    .max(c_b)
                    .max(t_b);
                if est < best_est - 1e-12 {
                    best_est = est;
                    best_move = Some(Move::Swap(a, b));
                }
            }
        }

        // --- apply and verify the best estimated move --------------------
        let Some(mv) = best_move else { break };
        let backup = assignment.clone();
        match mv {
            Move::Relocate(j, v) => assignment[j] = v,
            Move::Swap(a, b) => assignment.swap(a, b),
        }
        match routed_bottleneck_ms_ctx(ctx, assignment, true) {
            Ok(b) if b < current - 1e-12 => current = b,
            _ => {
                *assignment = backup;
                break; // estimate misled us (asymmetric net); stop here
            }
        }
    }
    Ok(current)
}

/// [`polish_rate_assignment_ctx`] with a transient context (cold path).
pub fn polish_rate_assignment(
    inst: &Instance<'_>,
    cost: &CostModel,
    assignment: &mut Vec<NodeId>,
    max_sweeps: usize,
) -> Result<f64> {
    polish_rate_assignment_ctx(&SolveContext::new(*inst, *cost), assignment, max_sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapping;
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    /// 0-1-2 line with a slow direct 0-2 link: routing beats the shortcut.
    fn shortcut_net() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(100.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 1000.0, 0.1).unwrap();
        b.add_link(n1, n2, 1000.0, 0.1).unwrap();
        b.add_link(n0, n2, 1.0, 0.1).unwrap(); // slow direct
        b.build().unwrap()
    }

    fn pipe3() -> Pipeline {
        Pipeline::from_stages(1e6, &[(1.0, 1e5)], 1.0).unwrap()
    }

    #[test]
    fn routing_takes_the_faster_multi_hop_route() {
        let net = shortcut_net();
        let cm = CostModel::default();
        // 1 MB: direct = 8000 ms + 0.1; via n1 = 8 + 0.1 + 8 + 0.1
        let t = routed_transfer_ms(&net, &cm, NodeId(0), NodeId(2), 1e6).unwrap();
        assert!((t - 16.2).abs() < 1e-9, "got {t}");
        // tiny message: MLD dominates; direct (0.1) beats 2 hops (0.2)
        let t = routed_transfer_ms(&net, &cm, NodeId(0), NodeId(2), 1.0).unwrap();
        assert!(t < 0.2, "got {t}");
    }

    #[test]
    fn same_node_transfer_is_free() {
        let net = shortcut_net();
        let cm = CostModel::default();
        assert_eq!(
            routed_transfer_ms(&net, &cm, NodeId(1), NodeId(1), 1e9).unwrap(),
            0.0
        );
    }

    #[test]
    fn routed_delay_matches_strict_cost_model_on_adjacent_assignments() {
        let net = shortcut_net();
        let pipe = pipe3();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let cm = CostModel::default();
        // assignment 0,1,2 — all consecutive pairs adjacent via fast links
        let a = vec![NodeId(0), NodeId(1), NodeId(2)];
        let strict = cm
            .delay_ms(&inst, &Mapping::from_assignment(&a).unwrap())
            .unwrap();
        let routed = routed_delay_ms(&inst, &cm, &a).unwrap();
        assert!(routed <= strict + 1e-9);
        // here the direct links are the best routes, so they are equal
        assert!((routed - strict).abs() < 1e-9);
    }

    #[test]
    fn routed_never_exceeds_strict_even_with_slow_direct_links() {
        let net = shortcut_net();
        let pipe = pipe3();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let cm = CostModel::default();
        // assignment 0,0,2: modules 0-1 on n0, sink on n2; the 0→2 transfer
        // is routed via n1 and beats the slow direct link
        let a = vec![NodeId(0), NodeId(0), NodeId(2)];
        let strict = cm
            .delay_ms(&inst, &Mapping::from_assignment(&a).unwrap())
            .unwrap();
        let routed = routed_delay_ms(&inst, &cm, &a).unwrap();
        assert!(
            routed < strict,
            "routed {routed} should beat strict {strict}"
        );
    }

    #[test]
    fn bottleneck_flags_reuse_when_distinct_required() {
        let net = shortcut_net();
        let pipe = pipe3();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let cm = CostModel::default();
        let a = vec![NodeId(0), NodeId(0), NodeId(2)];
        assert!(routed_bottleneck_ms(&inst, &cm, &a, true).is_err());
        assert!(routed_bottleneck_ms(&inst, &cm, &a, false).is_ok());
    }

    #[test]
    fn endpoint_and_length_validation() {
        let net = shortcut_net();
        let pipe = pipe3();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let cm = CostModel::default();
        assert!(routed_delay_ms(&inst, &cm, &[NodeId(0), NodeId(1)]).is_err());
        assert!(routed_delay_ms(&inst, &cm, &[NodeId(1), NodeId(1), NodeId(2)]).is_err());
        assert!(routed_delay_ms(&inst, &cm, &[NodeId(0), NodeId(1), NodeId(1)]).is_err());
        assert!(routed_delay_ms(&inst, &cm, &[NodeId(0), NodeId(9), NodeId(2)]).is_err());
    }

    #[test]
    fn polish_never_worsens_and_respects_constraints() {
        // 5-node net where the initial placement is deliberately bad
        let mut b = Network::builder();
        let powers = [100.0, 1.0, 1000.0, 1.0, 100.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        let net = b.build().unwrap();
        let pipe = Pipeline::from_stages(1e6, &[(5.0, 1e5)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, ns[0], ns[4]).unwrap();
        let cm = CostModel::default();
        // heavy middle module starts on the weakest node
        let mut a = vec![ns[0], ns[1], ns[4]];
        let before = routed_bottleneck_ms(&inst, &cm, &a, true).unwrap();
        let after = polish_rate_assignment(&inst, &cm, &mut a, 5).unwrap();
        assert!(after < before, "polish should fix the weak-node placement");
        assert_eq!(a[1], ns[2], "the strong node should host the heavy module");
        assert_eq!(a[0], ns[0]);
        assert_eq!(a[2], ns[4]);
        // idempotent at the local optimum
        let again = polish_rate_assignment(&inst, &cm, &mut a.clone(), 5).unwrap();
        assert!((again - after).abs() < 1e-12);
    }

    #[test]
    fn routed_bottleneck_is_max_of_stage_times() {
        let net = shortcut_net();
        let pipe = pipe3();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let cm = CostModel::default();
        let a = vec![NodeId(0), NodeId(1), NodeId(2)];
        let b = routed_bottleneck_ms(&inst, &cm, &a, true).unwrap();
        // stages: xfer 1e6 over 1000 Mbps = 8.1; compute 1e6/100 = 1e4;
        // xfer 1e5 = 0.9; compute 1e5/100 = 1e3 → bottleneck = 1e4
        assert!((b - 1e4).abs() < 1e-9, "got {b}");
    }
}
