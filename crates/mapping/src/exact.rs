//! Exact (exhaustive) solvers for both objectives.
//!
//! These exist to *verify* the rest of the crate, not to scale:
//!
//! * [`min_delay`] — branch-and-bound over all module walks; certifies the
//!   §3.1.1 optimality proof of the ELPC-delay DP on small instances.
//! * [`max_rate`] — enumerates every simple path with exactly `n` nodes and
//!   takes the best bottleneck; ground truth for the §3.1.2 NP-complete
//!   problem, used by experiment E8 to measure the heuristic's gap.
//! * [`hamiltonian_to_ensp`] — the paper's NP-completeness reduction
//!   (Hamiltonian Path → Exact-N-hop Shortest Path) as executable code.
//!
//! Both solvers take an explicit exploration budget and fail with
//! [`MappingError::BudgetExhausted`] rather than silently returning a
//! non-optimal answer.

use crate::{
    AssignmentSolution, CostModel, DelaySolution, Instance, Mapping, MappingError, RateSolution,
    Result, SolveContext,
};
use elpc_netgraph::algo::{for_each_simple_path_exact_nodes, hop_distances_rev, PathVisit};
use elpc_netgraph::NodeId;

/// Exploration limits for the exhaustive solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactLimits {
    /// Maximum DFS expansions (delay) or enumerated paths (rate).
    pub budget: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits { budget: 2_000_000 }
    }
}

/// Exhaustive minimum end-to-end delay with node reuse.
///
/// Searches every assignment where module 0 sits on `src`, each later
/// module stays or moves to a neighbor, and the last module lands on `dst`,
/// pruned by (a) the best delay found so far and (b) remaining-hop
/// reachability of the destination.
pub fn min_delay(
    inst: &Instance<'_>,
    cost: &CostModel,
    limits: ExactLimits,
) -> Result<DelaySolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let hops_to_dst = hop_distances_rev(net.graph(), inst.dst);

    struct Search<'s> {
        inst: &'s Instance<'s>,
        cost: &'s CostModel,
        hops_to_dst: &'s [Option<u32>],
        n: usize,
        best: f64,
        best_assignment: Option<Vec<NodeId>>,
        current: Vec<NodeId>,
        expansions: usize,
        budget: usize,
    }

    impl Search<'_> {
        fn dfs(&mut self, j: usize, node: NodeId, acc: f64) -> Result<()> {
            self.expansions += 1;
            if self.expansions > self.budget {
                return Err(MappingError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            if acc >= self.best {
                return Ok(()); // bound
            }
            if j == self.n {
                if node == self.inst.dst {
                    self.best = acc;
                    self.best_assignment = Some(self.current.clone());
                }
                return Ok(());
            }
            // prune: dst must stay reachable in the remaining j..n-1 moves
            let remaining = (self.n - 1 - j) as u32 + 1; // moves left incl. this one
            match self.hops_to_dst[node.index()] {
                Some(d) if d <= remaining => {}
                _ => return Ok(()),
            }
            let net = self.inst.network;
            let pipe = self.inst.pipeline;
            let work = pipe.compute_work(j);
            let in_bytes = pipe.input_bytes(j);
            // stay on the current node
            self.current.push(node);
            self.dfs(j + 1, node, acc + work / net.power(node))?;
            self.current.pop();
            // or move over an outgoing edge
            for nb in net.graph().neighbors(node) {
                let t = acc
                    + work / net.power(nb.node)
                    + self.cost.edge_transfer_ms(net, nb.edge, in_bytes);
                self.current.push(nb.node);
                self.dfs(j + 1, nb.node, t)?;
                self.current.pop();
            }
            Ok(())
        }
    }

    let mut search = Search {
        inst,
        cost,
        hops_to_dst: &hops_to_dst,
        n,
        best: f64::INFINITY,
        best_assignment: None,
        current: vec![inst.src],
        expansions: 0,
        budget: limits.budget,
    };
    // module 0 contributes no compute; start directly at module 1
    search.dfs(1, inst.src, 0.0)?;

    match search.best_assignment {
        Some(a) => Ok(DelaySolution {
            mapping: Mapping::from_assignment(&a)?,
            delay_ms: search.best,
        }),
        None => Err(MappingError::Infeasible(format!(
            "no walk of {} modules from {} reaches {}",
            n, inst.src, inst.dst
        ))),
    }
}

/// Exhaustive maximum frame rate without node reuse: the optimal answer to
/// the NP-complete exact-`n`-node widest path problem, by enumeration.
pub fn max_rate(
    inst: &Instance<'_>,
    cost: &CostModel,
    limits: ExactLimits,
) -> Result<RateSolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    if n > net.node_count() {
        return Err(MappingError::Infeasible(format!(
            "{n} modules need {n} distinct nodes, network has {}",
            net.node_count()
        )));
    }
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    let mut enumerated = 0usize;
    let mut out_of_budget = false;
    for_each_simple_path_exact_nodes(net.graph(), inst.src, inst.dst, n, |path| {
        enumerated += 1;
        if enumerated > limits.budget {
            out_of_budget = true;
            return PathVisit::Stop;
        }
        // bottleneck of the one-to-one mapping along `path`
        let mut bottleneck = 0.0_f64;
        for (j, &node) in path.iter().enumerate() {
            let work = pipe.compute_work(j);
            if work > 0.0 {
                bottleneck = bottleneck.max(work / net.power(node));
            }
            if j + 1 < path.len() {
                let bytes = pipe.module(j).output_bytes;
                let t = cost
                    .link_transfer_ms(net, node, path[j + 1], bytes)
                    .expect("enumerated paths follow edges");
                bottleneck = bottleneck.max(t);
            }
        }
        if best.as_ref().is_none_or(|(b, _)| bottleneck < *b) {
            best = Some((bottleneck, path.to_vec()));
        }
        PathVisit::Continue
    });
    if out_of_budget {
        return Err(MappingError::BudgetExhausted {
            budget: limits.budget,
        });
    }
    match best {
        Some((bottleneck, path)) => Ok(RateSolution {
            mapping: Mapping::from_assignment(&path)?,
            bottleneck_ms: bottleneck,
        }),
        None => Err(MappingError::Infeasible(format!(
            "no simple path of exactly {} nodes from {} to {}",
            n, inst.src, inst.dst
        ))),
    }
}

/// Exhaustive maximum frame rate under **routed** transport: enumerates
/// every assignment of pairwise-distinct hosts (endpoints pinned) and
/// scores each stage transfer at the best multi-hop route from the
/// context's shared metric closure. This is the ground truth for the
/// search space the [`crate::metaheuristic`] solvers and the routed rate
/// DP explore — `workloads::compare` uses it as the denominator of the
/// rate `quality_gap` column.
///
/// The interior assignment count is `P(k-2, n-2)`; the search refuses to
/// start (with [`MappingError::BudgetExhausted`]) when that product
/// exceeds `limits.budget`, and branch-and-bound on the monotone
/// bottleneck prunes the rest. Small instances only, by design.
pub fn max_rate_routed(ctx: &SolveContext<'_>, limits: ExactLimits) -> Result<AssignmentSolution> {
    let inst = ctx.instance();
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    inst.ensure_distinct_hosts_feasible()?;
    // refuse un-prunably large spaces up front: P(k-2, n-2) assignments
    let mut count: usize = 1;
    for i in 0..n.saturating_sub(2) {
        count = count.saturating_mul(k - 2 - i);
        if count > limits.budget {
            return Err(MappingError::BudgetExhausted {
                budget: limits.budget,
            });
        }
    }

    struct Search<'c, 's> {
        ctx: &'c SolveContext<'s>,
        n: usize,
        k: usize,
        dst: NodeId,
        used: Vec<bool>,
        current: Vec<NodeId>,
        best: f64,
        best_assignment: Option<Vec<NodeId>>,
    }

    impl Search<'_, '_> {
        /// Extends the partial assignment ending at `node` (module `j - 1`)
        /// with a host for module `j`, carrying the bottleneck so far.
        fn dfs(&mut self, j: usize, node: NodeId, acc: f64) {
            if acc >= self.best {
                return; // the bottleneck only grows along a branch
            }
            let net = self.ctx.network();
            let pipe = self.ctx.pipeline();
            let bytes = pipe.module(j - 1).output_bytes;
            let tree = self.ctx.routed_from(node, bytes);
            if j == self.n - 1 {
                let work = pipe.compute_work(j);
                let t = tree.dist[self.dst.index()];
                if t.is_infinite() {
                    return;
                }
                let total = acc.max(t).max(if work > 0.0 {
                    work / net.power(self.dst)
                } else {
                    0.0
                });
                if total < self.best {
                    self.best = total;
                    let mut a = self.current.clone();
                    a.push(self.dst);
                    self.best_assignment = Some(a);
                }
                return;
            }
            let work = pipe.compute_work(j);
            for v in 0..self.k {
                if self.used[v] {
                    continue;
                }
                let vid = NodeId::from_index(v);
                if vid == self.dst {
                    continue; // the sink hosts only the final module
                }
                let t = tree.dist[v];
                if t.is_infinite() {
                    continue;
                }
                let b = acc.max(t).max(if work > 0.0 {
                    work / net.power(vid)
                } else {
                    0.0
                });
                self.used[v] = true;
                self.current.push(vid);
                self.dfs(j + 1, vid, b);
                self.current.pop();
                self.used[v] = false;
            }
        }
    }

    let mut used = vec![false; k];
    used[inst.src.index()] = true;
    let mut search = Search {
        ctx,
        n,
        k,
        dst: inst.dst,
        used,
        current: vec![inst.src],
        best: f64::INFINITY,
        best_assignment: None,
    };
    // module 0 contributes no compute (input_bytes(0) is structurally 0);
    // start directly at module 1, as min_delay does
    search.dfs(1, inst.src, 0.0);
    match search.best_assignment {
        Some(assignment) => Ok(AssignmentSolution {
            assignment,
            objective_ms: search.best,
        }),
        None => Err(MappingError::Infeasible(format!(
            "no routed placement of {} distinct hosts from {} to {}",
            n, inst.src, inst.dst
        ))),
    }
}

/// The paper's NP-completeness reduction, §3.1.2: given a graph `G` with
/// `n+1` vertices, `G` has a Hamiltonian path `v0 → vn` **iff** the
/// unit-weight copy of `G` has a simple `v0 → vn` path with exactly `n`
/// hops of total distance ≤ `n`.
///
/// With unit weights the distance bound is vacuous (every `n`-hop path has
/// distance exactly `n`), so the decision reduces to the *existence* of an
/// exact-`(n+1)`-node simple path — which this function decides by
/// enumeration, serving as an executable witness of the transformation
/// `f(I_HP) = I_ENSP`.
pub fn hamiltonian_to_ensp<Npay, Epay>(
    g: &elpc_netgraph::Graph<Npay, Epay>,
    v0: NodeId,
    vn: NodeId,
) -> bool {
    let n_nodes = g.node_count();
    let mut found = false;
    for_each_simple_path_exact_nodes(g, v0, vn, n_nodes, |p| {
        // total distance D = hops = n ≤ B = n always holds with unit weights
        debug_assert_eq!(p.len(), n_nodes);
        found = true;
        PathVisit::Stop
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netgraph::Graph;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cost() -> CostModel {
        CostModel::default()
    }

    fn random_instance(seed: u64) -> (Network, Pipeline) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = rng.gen_range(4..8);
        let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
        let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let powers: Vec<f64> = (0..k).map(|_| rng2.gen_range(10.0..1000.0)).collect();
        let net = Network::from_topology(
            &topo,
            |i| elpc_netsim::Node::with_power(powers[i]),
            |_, _| elpc_netsim::Link::new(rng2.gen_range(1.0..1000.0), rng2.gen_range(0.01..5.0)),
        )
        .unwrap();
        let n = rng.gen_range(2..=k.min(5));
        let spec = elpc_pipeline::gen::PipelineSpec {
            modules: n,
            ..Default::default()
        };
        let pipe = spec.generate(&mut rng).unwrap();
        (net, pipe)
    }

    #[test]
    fn exact_delay_matches_elpc_dp_on_random_instances() {
        let mut agreements = 0;
        for seed in 0..40u64 {
            let (net, pipe) = random_instance(seed);
            let k = net.node_count();
            let src = NodeId(0);
            let dst = NodeId((k - 1) as u32);
            let inst = Instance::new(&net, &pipe, src, dst).unwrap();
            let dp = crate::elpc_delay::solve(&inst, &cost());
            let ex = min_delay(&inst, &cost(), ExactLimits::default());
            match (dp, ex) {
                (Ok(dp), Ok(ex)) => {
                    assert!(
                        (dp.delay_ms - ex.delay_ms).abs() <= 1e-6 * ex.delay_ms.max(1.0),
                        "seed {seed}: DP {} vs exact {}",
                        dp.delay_ms,
                        ex.delay_ms
                    );
                    agreements += 1;
                }
                (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
                (dp, ex) => panic!("seed {seed}: disagreement {dp:?} vs {ex:?}"),
            }
        }
        assert!(agreements >= 10, "too few feasible instances exercised");
    }

    #[test]
    fn exact_rate_lower_bounds_the_heuristic_on_random_instances() {
        let mut solved = 0;
        for seed in 100..140u64 {
            let (net, pipe) = random_instance(seed);
            let k = net.node_count();
            let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
            let ex = max_rate(&inst, &cost(), ExactLimits::default());
            let heur = crate::elpc_rate::solve(&inst, &cost());
            match (ex, heur) {
                (Ok(ex), Ok(heur)) => {
                    // exact is optimal: never worse than the heuristic
                    assert!(
                        ex.bottleneck_ms <= heur.bottleneck_ms + 1e-9,
                        "seed {seed}: exact {} > heuristic {}",
                        ex.bottleneck_ms,
                        heur.bottleneck_ms
                    );
                    solved += 1;
                }
                (Err(MappingError::Infeasible(_)), Err(MappingError::Infeasible(_))) => {}
                // the heuristic may miss a feasible path the exact finds —
                // that is precisely its documented failure mode
                (Ok(_), Err(MappingError::Infeasible(_))) => {}
                (ex, heur) => panic!("seed {seed}: unexpected {ex:?} vs {heur:?}"),
            }
        }
        assert!(solved >= 10, "too few feasible instances exercised");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (net, pipe) = random_instance(7);
        let inst = Instance::new(
            &net,
            &pipe,
            NodeId(0),
            NodeId((net.node_count() - 1) as u32),
        )
        .unwrap();
        let r = min_delay(&inst, &cost(), ExactLimits { budget: 3 });
        assert!(matches!(
            r,
            Err(MappingError::BudgetExhausted { budget: 3 })
        ));
    }

    #[test]
    fn hamiltonian_reduction_agrees_with_known_graphs() {
        // P4 path graph: Hamiltonian path 0→3 exists
        let mut g: Graph<(), ()> = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for w in ns.windows(2) {
            g.add_undirected_edge(w[0], w[1], ()).unwrap();
        }
        assert!(hamiltonian_to_ensp(&g, ns[0], ns[3]));
        // endpoints adjacent in the middle: no Hamiltonian 1→2 path in P4
        assert!(!hamiltonian_to_ensp(&g, ns[1], ns[2]));

        // star K1,3: no Hamiltonian path between leaves
        let mut g: Graph<(), ()> = Graph::new();
        let hub = g.add_node(());
        let l1 = g.add_node(());
        let l2 = g.add_node(());
        let l3 = g.add_node(());
        for l in [l1, l2, l3] {
            g.add_undirected_edge(hub, l, ()).unwrap();
        }
        assert!(!hamiltonian_to_ensp(&g, l1, l2));

        // K4: Hamiltonian paths everywhere
        let mut g: Graph<(), ()> = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_undirected_edge(ns[i], ns[j], ()).unwrap();
            }
        }
        assert!(hamiltonian_to_ensp(&g, ns[0], ns[2]));
    }

    #[test]
    fn exact_rate_on_a_diamond_picks_the_wider_route() {
        let mut b = Network::builder();
        let s = b.add_node(1000.0).unwrap();
        let x = b.add_node(1000.0).unwrap();
        let y = b.add_node(1000.0).unwrap();
        let d = b.add_node(1000.0).unwrap();
        b.add_link(s, x, 10.0, 0.1).unwrap();
        b.add_link(x, d, 10.0, 0.1).unwrap();
        b.add_link(s, y, 100.0, 0.1).unwrap();
        b.add_link(y, d, 100.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(0.001, 1e6),
            Module::new(0.001, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, s, d).unwrap();
        let sol = max_rate(&inst, &cost(), ExactLimits::default()).unwrap();
        assert_eq!(sol.mapping.path()[1], y);
    }

    #[test]
    fn routed_rate_exact_lower_bounds_routed_heuristics() {
        for seed in 200..230u64 {
            let (net, pipe) = random_instance(seed);
            let k = net.node_count();
            let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
            let ctx = SolveContext::new(inst, cost());
            let ex = max_rate_routed(&ctx, ExactLimits::default());
            let Ok(ex) = ex else { continue };
            // brute force agrees with the routed re-evaluation of its answer
            let re = crate::routed::routed_bottleneck_ms_ctx(&ctx, &ex.assignment, true).unwrap();
            assert!((re - ex.objective_ms).abs() <= 1e-9 * ex.objective_ms.max(1.0));
            // the DP heuristic explores the same space: never better
            if let Ok(dp) = crate::elpc_rate::solve_routed(&inst, &cost()) {
                assert!(
                    ex.objective_ms <= dp.objective_ms + 1e-9,
                    "seed {seed}: exact {} > DP {}",
                    ex.objective_ms,
                    dp.objective_ms
                );
            }
            // the strict exact optimum is a restriction of the routed space
            if let Ok(strict) = max_rate(&inst, &cost(), ExactLimits::default()) {
                assert!(ex.objective_ms <= strict.bottleneck_ms + 1e-9);
            }
        }
    }

    #[test]
    fn routed_rate_exact_refuses_oversized_spaces() {
        let (net, pipe) = random_instance(3);
        let k = net.node_count();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        // any pipeline of ≥ 3 modules on a >3-node network has an interior
        // assignment count above 1, so the budget guard must refuse
        assert!(pipe.len() >= 3 && k > 3, "fixture must exercise the guard");
        assert!(matches!(
            max_rate_routed(&ctx, ExactLimits { budget: 1 }),
            Err(MappingError::BudgetExhausted { budget: 1 })
        ));
    }

    #[test]
    fn exact_solvers_report_infeasibility() {
        // 2-node network, 3-module no-reuse pipeline
        let mut b = Network::builder();
        let s = b.add_node(10.0).unwrap();
        let d = b.add_node(10.0).unwrap();
        b.add_link(s, d, 10.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::from_stages(1e4, &[(1.0, 1e3)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, s, d).unwrap();
        assert!(matches!(
            max_rate(&inst, &cost(), ExactLimits::default()),
            Err(MappingError::Infeasible(_))
        ));
        // delay-with-reuse is feasible on the same instance
        assert!(min_delay(&inst, &cost(), ExactLimits::default()).is_ok());
    }
}
