//! Shared unit-test fixtures for the solver-family test modules
//! (`metaheuristic`, `tabu`, `portfolio`) — one copy of the small worked
//! instance so the suites cannot silently drift apart.

use crate::NodeId;
use elpc_netsim::Network;
use elpc_pipeline::Pipeline;

/// Complete 5-node network with one strong relay (node 2).
pub(crate) fn k5() -> Network {
    let mut b = Network::builder();
    let powers = [100.0, 10.0, 1000.0, 10.0, 100.0];
    let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
    for i in 0..5 {
        for j in (i + 1)..5 {
            b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
        }
    }
    b.build().unwrap()
}

/// A 4-module pipeline (source, two workers, sink).
pub(crate) fn pipe4() -> Pipeline {
    Pipeline::from_stages(1e6, &[(2.0, 1e5), (1.0, 5e4)], 1.0).unwrap()
}
