//! Shared per-instance solver state: the routed metric closure.
//!
//! Every routed-semantics algorithm in this crate — the routed-overlay ELPC
//! DPs, Streamline's free placement, the routed evaluators, and the
//! local-search polish — needs the same quantity over and over: *the
//! cheapest multi-hop transfer time of `m` bytes from node `u` to every
//! other node*, i.e. one Dijkstra run over the §2.2 edge cost
//! `m/b (+ d)`. Before this module existed, each solver recomputed those
//! runs inline on every call, making the 20-case comparison suite
//! `O(solvers × calls)` in repeated all-pairs work.
//!
//! [`MetricClosure`] memoizes those runs per `(payload size, source node)`
//! for a fixed network and cost model; [`SolveContext`] bundles a closure
//! with a problem [`Instance`] and is the single argument every registered
//! [`crate::Solver`] receives. Build one context per instance, hand it to
//! as many solvers as you like, and the all-pairs work is paid once.
//!
//! The closure is keyed by the exact payload byte count (`f64` bit
//! pattern): the §2.2 edge cost is `bytes·8/b + d`, so route choice genuinely
//! depends on the payload size, and consecutive pipeline stages usually
//! reuse only a handful of distinct sizes — exactly what a small hash map
//! captures. Entries store the full [`ShortestPaths`] (distances *and*
//! predecessor links), so routed paths can be reconstructed without a new
//! traversal.
//!
//! Interior mutability is a single-threaded `RefCell`; parallel sweeps give
//! each worker its own context (one per instance), which is both simpler
//! and faster than sharing a locked cache across threads.

use crate::{CostModel, Instance, MappingError, Result};
use elpc_netgraph::algo::{dijkstra, extract_path, ShortestPaths};
use elpc_netgraph::NodeId;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Cache statistics, for tests and perf reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClosureStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran a fresh Dijkstra.
    pub misses: u64,
}

impl ClosureStats {
    /// Fraction of queries served from cache (0 when nothing was queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lazily materialized routed metric closure of a network under one cost
/// model: per payload size, per source node, the single-source shortest
/// transfer-time tree.
pub struct MetricClosure<'a> {
    net: &'a elpc_netsim::Network,
    cost: CostModel,
    /// `bytes.to_bits() → per-source tree (index = source node id)`.
    cache: RefCell<HashMap<u64, Vec<Option<Rc<ShortestPaths>>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a> MetricClosure<'a> {
    /// An empty closure over `net` under `cost`.
    pub fn new(net: &'a elpc_netsim::Network, cost: CostModel) -> Self {
        MetricClosure {
            net,
            cost,
            cache: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &'a elpc_netsim::Network {
        self.net
    }

    /// The cost model the closure is computed under.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The routed shortest-path tree from `src` for a payload of `bytes`:
    /// `tree.dist[v]` is the cheapest multi-hop transfer time (ms), and
    /// `tree.prev` reconstructs the route. Cached after the first query.
    ///
    /// The result is identical (bit for bit) to calling
    /// [`elpc_netgraph::algo::dijkstra`] with the §2.2 edge cost directly —
    /// the cache-correctness property test pins this.
    pub fn routed_from(&self, src: NodeId, bytes: f64) -> Rc<ShortestPaths> {
        let key = bytes.to_bits();
        let k = self.net.node_count();
        let mut cache = self.cache.borrow_mut();
        let per_source = cache.entry(key).or_insert_with(|| vec![None; k]);
        if let Some(tree) = &per_source[src.index()] {
            self.hits.set(self.hits.get() + 1);
            return Rc::clone(tree);
        }
        self.misses.set(self.misses.get() + 1);
        let tree = Rc::new(dijkstra(self.net.graph(), src, |eid, _| {
            self.cost.edge_transfer_ms(self.net, eid, bytes)
        }));
        per_source[src.index()] = Some(Rc::clone(&tree));
        tree
    }

    /// Minimum routed transport time of `bytes` from `a` to `b` (ms), zero
    /// when `a == b`, [`MappingError::Infeasible`] when no route exists.
    pub fn routed_transfer_ms(&self, a: NodeId, b: NodeId, bytes: f64) -> Result<f64> {
        if a == b {
            return Ok(0.0);
        }
        let tree = self.routed_from(a, bytes);
        let d = tree.dist[b.index()];
        if d.is_finite() {
            Ok(d)
        } else {
            Err(MappingError::Infeasible(format!(
                "no route from {a} to {b} in the network"
            )))
        }
    }

    /// The node sequence of the cheapest route `a → b` for `bytes`, from
    /// the cached predecessor map. `None` when unreachable.
    pub fn routed_path(&self, a: NodeId, b: NodeId, bytes: f64) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let tree = self.routed_from(a, bytes);
        extract_path(&tree, a, b)
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> ClosureStats {
        ClosureStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Number of materialized `(payload, source)` trees.
    pub fn cached_trees(&self) -> usize {
        self.cache
            .borrow()
            .values()
            .map(|v| v.iter().filter(|t| t.is_some()).count())
            .sum()
    }
}

/// Everything a registered solver needs to run: the problem instance, the
/// cost model, and the shared metric closure. Build one per instance and
/// pass it to every algorithm being compared.
pub struct SolveContext<'a> {
    inst: Instance<'a>,
    closure: MetricClosure<'a>,
}

impl<'a> SolveContext<'a> {
    /// A context for `inst` under `cost` with an empty closure cache.
    pub fn new(inst: Instance<'a>, cost: CostModel) -> Self {
        SolveContext {
            inst,
            closure: MetricClosure::new(inst.network, cost),
        }
    }

    /// The problem instance.
    pub fn instance(&self) -> &Instance<'a> {
        &self.inst
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        self.closure.cost()
    }

    /// The transport network.
    pub fn network(&self) -> &'a elpc_netsim::Network {
        self.inst.network
    }

    /// The computing pipeline.
    pub fn pipeline(&self) -> &'a elpc_pipeline::Pipeline {
        self.inst.pipeline
    }

    /// The shared metric closure.
    pub fn closure(&self) -> &MetricClosure<'a> {
        &self.closure
    }

    /// Shorthand for [`MetricClosure::routed_from`].
    pub fn routed_from(&self, src: NodeId, bytes: f64) -> Rc<ShortestPaths> {
        self.closure.routed_from(src, bytes)
    }

    /// Shorthand for [`MetricClosure::routed_transfer_ms`].
    pub fn routed_transfer_ms(&self, a: NodeId, b: NodeId, bytes: f64) -> Result<f64> {
        self.closure.routed_transfer_ms(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    fn net3() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(100.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 1000.0, 0.1).unwrap();
        b.add_link(n1, n2, 1000.0, 0.1).unwrap();
        b.add_link(n0, n2, 1.0, 0.1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn closure_caches_per_payload_and_source() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        let a = mc.routed_from(NodeId(0), 1e6);
        let b = mc.routed_from(NodeId(0), 1e6);
        assert!(Rc::ptr_eq(&a, &b), "same query must return the cached tree");
        assert_eq!(mc.stats(), ClosureStats { hits: 1, misses: 1 });
        // different payload or source recomputes
        mc.routed_from(NodeId(0), 2e6);
        mc.routed_from(NodeId(1), 1e6);
        assert_eq!(mc.stats().misses, 3);
        assert_eq!(mc.cached_trees(), 3);
    }

    #[test]
    fn closure_matches_fresh_dijkstra_bit_for_bit() {
        let net = net3();
        let cost = CostModel::default();
        let mc = MetricClosure::new(&net, cost);
        for bytes in [1.0, 1e4, 1e6] {
            for src in 0..3u32 {
                let cached = mc.routed_from(NodeId(src), bytes);
                let fresh = dijkstra(net.graph(), NodeId(src), |eid, _| {
                    cost.edge_transfer_ms(&net, eid, bytes)
                });
                for v in 0..3 {
                    assert_eq!(cached.dist[v].to_bits(), fresh.dist[v].to_bits());
                    assert_eq!(cached.prev[v], fresh.prev[v]);
                }
            }
        }
    }

    #[test]
    fn routed_transfer_prefers_multi_hop_over_slow_direct() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        // 1 MB over the direct 1 Mbps link = 8000 ms; via n1 = 16.2 ms
        let t = mc.routed_transfer_ms(NodeId(0), NodeId(2), 1e6).unwrap();
        assert!((t - 16.2).abs() < 1e-9, "got {t}");
        assert_eq!(
            mc.routed_path(NodeId(0), NodeId(2), 1e6).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(
            mc.routed_transfer_ms(NodeId(1), NodeId(1), 1e9).unwrap(),
            0.0
        );
    }

    #[test]
    fn context_exposes_instance_and_closure() {
        let net = net3();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        assert_eq!(ctx.pipeline().len(), 3);
        assert_eq!(ctx.network().node_count(), 3);
        assert_eq!(ctx.instance().src, NodeId(0));
        ctx.routed_from(NodeId(0), 1e4);
        assert_eq!(ctx.closure().stats().misses, 1);
    }
}
