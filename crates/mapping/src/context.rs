//! Shared solver state: the thread-safe sharded routed metric closure.
//!
//! Every routed-semantics algorithm in this crate — the routed-overlay ELPC
//! DPs, Streamline's free placement, the routed evaluators, and the
//! local-search polish — needs the same quantity over and over: *the
//! cheapest multi-hop transfer time of `m` bytes from node `u` to every
//! other node*, i.e. one Dijkstra run over the §2.2 edge cost
//! `m/b (+ d)`. [`MetricClosure`] memoizes those runs per
//! `(payload size, source node)` for a fixed network and cost model;
//! [`SolveContext`] bundles a closure with a problem [`Instance`] and is the
//! single argument every registered [`crate::Solver`] receives.
//!
//! ## Concurrency model
//!
//! The closure is `Send + Sync`. Entries live in a small fixed array of
//! [`parking_lot::RwLock`]-guarded hash-map **shards** (selected by a hash
//! of the `(payload, source)` key), so concurrent readers never contend
//! with each other and concurrent writers rarely contend at all: a solve
//! running on one thread, a parallel sweep hammering the same closure from
//! many threads, and a background warm-up all observe one coherent cache.
//! Dijkstra itself runs *outside* any lock; when two threads race to build
//! the same tree the first insert wins and both receive the same `Arc`
//! (the trees are bit-identical either way — Dijkstra is deterministic per
//! key). Statistics are atomic counters, so `hits + misses` always equals
//! the number of [`MetricClosure::routed_from`] queries, even under
//! contention.
//!
//! ## Parallel warm-up
//!
//! The per-source trees are embarrassingly parallel — no tree depends on
//! any other — so [`MetricClosure::par_warm`] builds a whole
//! `sources × payloads` block on scoped worker threads (the same
//! work-pulling pattern as `elpc_workloads::sweep::run_parallel`). The
//! warm path runs on a flat [`Csr`] snapshot of the adjacency (built once
//! per closure) with the §2.2 edge cost resolved once per payload batch
//! and per-worker [`SsspScratch`] buffers recycled across sources; the
//! lazy [`MetricClosure::routed_from`] path keeps the original
//! adjacency-list Dijkstra, and the two produce bit-identical trees. The
//! routed DPs call [`SolveContext::warm_routed_dp`] on entry, which turns a
//! serial cold solve into a parallel-warm one when the context was built
//! with [`SolveContext::with_threads`]; with `threads == 1` the solvers
//! keep their lazy, minimal-work behavior. Warm-up changes *when* trees are
//! built, never *what* they contain, so results are bit-for-bit identical
//! at any thread count.
//!
//! ## Cross-instance reuse
//!
//! [`MetricClosure::export`] / [`MetricClosure::seed`] move materialized
//! trees (cheap `Arc` clones) between closures over the *same* network and
//! cost model — the mechanism behind `elpc_workloads::ClosureBank`, the
//! topology-keyed cache that lets consecutive sweep cases sharing a network
//! skip the all-pairs work entirely.
//!
//! The closure is keyed by the exact payload byte count (`f64` bit
//! pattern): the §2.2 edge cost is `bytes·8/b + d`, so route choice
//! genuinely depends on the payload size, and consecutive pipeline stages
//! usually reuse only a handful of distinct sizes. Entries store the full
//! [`ShortestPaths`] (distances *and* predecessor links), so routed paths
//! can be reconstructed without a new traversal.

use crate::{CostModel, Instance, MappingError, Result};
use elpc_netgraph::algo::{dijkstra, extract_path, ShortestPaths};
use elpc_netgraph::csr::{Csr, SsspScratch};
use elpc_netgraph::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of lock shards. A small power of two: enough to make write
/// contention negligible at realistic thread counts, small enough that
/// iterating all shards (stats, export) stays trivial.
const SHARD_COUNT: usize = 16;

/// Cache key of one shortest-path tree: the payload's `f64` bit pattern and
/// the source node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeKey {
    /// `bytes.to_bits()` of the payload size.
    pub payload_bits: u64,
    /// Source node index.
    pub source: u32,
}

impl TreeKey {
    /// The key for a `(source, payload)` query.
    pub fn new(src: NodeId, bytes: f64) -> Self {
        TreeKey {
            payload_bits: bytes.to_bits(),
            source: src.index() as u32,
        }
    }

    /// The payload size in bytes.
    pub fn payload(&self) -> f64 {
        f64::from_bits(self.payload_bits)
    }

    /// The source node.
    pub fn source_node(&self) -> NodeId {
        NodeId::from_index(self.source as usize)
    }
}

/// One materialized cache entry, as exported by [`MetricClosure::export`]
/// and re-imported by [`MetricClosure::seed`] (the unit the cross-instance
/// `ClosureBank` stores).
#[derive(Debug, Clone)]
pub struct CachedTree {
    /// The `(payload, source)` key.
    pub key: TreeKey,
    /// The shared shortest-path tree.
    pub tree: Arc<ShortestPaths>,
}

/// Cache statistics, for tests and perf reports.
///
/// **Invariant:** every [`MetricClosure::routed_from`] query counts exactly
/// one hit or one miss — `hits + misses` always equals the number of
/// queries made so far, even under concurrent access (the counters are
/// atomic and racing builders each record their own miss). Seeding via
/// [`MetricClosure::seed`] and probing via [`MetricClosure::contains`] are
/// *not* queries and leave the statistics untouched.
///
/// ```
/// use elpc_mapping::{CostModel, MetricClosure, NodeId};
/// # let mut b = elpc_netsim::Network::builder();
/// # let a = b.add_node(100.0).unwrap();
/// # let c = b.add_node(100.0).unwrap();
/// # b.add_link(a, c, 100.0, 0.5).unwrap();
/// # let network = b.build().unwrap();
/// let closure = MetricClosure::new(&network, CostModel::default());
/// let queries = 5u64;
/// for _ in 0..queries {
///     closure.routed_from(NodeId(0), 1e6); // 1 miss, then 4 hits
/// }
/// let stats = closure.stats();
/// assert_eq!(stats.hits + stats.misses, queries);
/// assert_eq!(stats.misses, 1);
/// assert!(closure.contains(NodeId(0), 1e6)); // not a query
/// assert_eq!(closure.stats().hits + closure.stats().misses, queries);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClosureStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran a fresh Dijkstra.
    pub misses: u64,
}

impl ClosureStats {
    /// Fraction of queries served from cache (0 when nothing was queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type ShardMap = HashMap<TreeKey, Arc<ShortestPaths>>;

/// Shard index of a key: an FNV-1a mix over both key halves, so payloads
/// and sources spread independently.
fn shard_of(key: &TreeKey) -> usize {
    let mut h = elpc_netgraph::fnv::Fnv1a::new();
    h.write_u64(key.payload_bits).write_u64(key.source as u64);
    (h.finish() >> 32) as usize & (SHARD_COUNT - 1)
}

/// Minimum node count before the routed **delay** DP chunks its per-stage
/// relax loop across worker threads: below this, the `O(k²)` column update
/// is microseconds of float work and a per-stage scope spawn/join would
/// cost more than it saves. Results are identical either way — this is
/// purely a crossover point.
pub(crate) const MIN_PARALLEL_RELAX_NODES_DELAY: usize = 64;

/// Crossover for the routed **rate** DP's label relax. Its per-stage cost
/// is `O(k² × labels)` with bitmask cloning per extension — two orders of
/// magnitude heavier per cell than the delay DP (compare the
/// `reference_warm` entries in `BENCH_metaheuristics.json`) — so chunking
/// pays off at much smaller networks.
pub(crate) const MIN_PARALLEL_RELAX_NODES_RATE: usize = 24;

/// The chunked column-update scaffolding shared by the routed DPs'
/// per-stage relax loops: applies `relax(v, &mut cells[v])` to every cell,
/// inline when `threads <= 1`, otherwise on scoped worker threads that each
/// own one contiguous chunk of cells. Because every cell is computed
/// independently and `relax` receives the same index either way, the chunk
/// layout cannot affect any cell's value — serial and chunked runs are
/// bit-for-bit identical.
pub(crate) fn relax_columns_chunked<T: Send, F>(threads: usize, cells: &mut [T], relax: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let k = cells.len();
    if threads <= 1 || k < 2 {
        for (v, cell) in cells.iter_mut().enumerate() {
            relax(v, cell);
        }
        return;
    }
    let chunk = k.div_ceil(threads.min(k));
    crossbeam::scope(|scope| {
        let relax = &relax;
        for (ci, cells_c) in cells.chunks_mut(chunk).enumerate() {
            scope.spawn(move |_| {
                for (i, cell) in cells_c.iter_mut().enumerate() {
                    relax(ci * chunk + i, cell);
                }
            });
        }
    })
    .expect("relax workers must not panic");
}

/// Resolves a thread-count request: `0` means "all CPUs".
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Lazily materialized routed metric closure of a network under one cost
/// model: per payload size, per source node, the single-source shortest
/// transfer-time tree. `Send + Sync`; see the module docs for the
/// concurrency model.
pub struct MetricClosure<'a> {
    net: &'a elpc_netsim::Network,
    cost: CostModel,
    shards: [RwLock<ShardMap>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Flat CSR snapshot of the network's adjacency, built once on the
    /// first batched warm-up and shared by every batch thereafter (the
    /// network behind a closure is immutable, so the snapshot never goes
    /// stale). Lazy queries never touch it.
    csr: OnceLock<Csr>,
}

impl<'a> MetricClosure<'a> {
    /// An empty closure over `net` under `cost`.
    pub fn new(net: &'a elpc_netsim::Network, cost: CostModel) -> Self {
        MetricClosure {
            net,
            cost,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            csr: OnceLock::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &'a elpc_netsim::Network {
        self.net
    }

    /// The cost model the closure is computed under.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The routed shortest-path tree from `src` for a payload of `bytes`:
    /// `tree.dist[v]` is the cheapest multi-hop transfer time (ms), and
    /// `tree.prev` reconstructs the route. Cached after the first query.
    ///
    /// The result is identical (bit for bit) to calling
    /// [`elpc_netgraph::algo::dijkstra`] with the §2.2 edge cost directly —
    /// the cache-correctness property test pins this. Counts exactly one
    /// hit or one miss per call (a miss when this call ran Dijkstra, even
    /// if a racing thread's identical tree won the insert).
    pub fn routed_from(&self, src: NodeId, bytes: f64) -> Arc<ShortestPaths> {
        let key = TreeKey::new(src, bytes);
        let shard = &self.shards[shard_of(&key)];
        if let Some(tree) = shard.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(tree);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tree = self.build_tree(src, bytes);
        Arc::clone(shard.write().entry(key).or_insert(tree))
    }

    /// Runs the Dijkstra for one key, outside any lock.
    fn build_tree(&self, src: NodeId, bytes: f64) -> Arc<ShortestPaths> {
        Arc::new(dijkstra(self.net.graph(), src, |eid, _| {
            self.cost.edge_transfer_ms(self.net, eid, bytes)
        }))
    }

    /// True when the `(src, bytes)` tree is already materialized. Does not
    /// count as a query.
    pub fn contains(&self, src: NodeId, bytes: f64) -> bool {
        let key = TreeKey::new(src, bytes);
        self.shards[shard_of(&key)].read().contains_key(&key)
    }

    /// The flat CSR snapshot of the network's adjacency, built on first
    /// use. Slot order matches [`elpc_netgraph::Graph::neighbors`] order,
    /// which is what makes the CSR kernels bit-identical to the lazy path.
    pub fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::from_graph(self.net.graph()))
    }

    /// Builds one missing tree on the CSR fast path, with the same
    /// hit/miss accounting as [`MetricClosure::routed_from`]: a hit when a
    /// racing builder already materialized the key, one miss per actual
    /// kernel run, first insert wins.
    fn warm_one(&self, csr: &Csr, key: TreeKey, costs: &[f64], scratch: &mut SsspScratch) {
        let shard = &self.shards[shard_of(&key)];
        if shard.read().contains_key(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tree = Arc::new(scratch.shortest_paths(csr, key.source_node(), costs));
        shard.write().entry(key).or_insert(tree);
    }

    /// Builds every missing `(source, payload)` tree of the cross product
    /// on `threads` worker threads (`0` = all CPUs, `1` = inline serial).
    /// Returns the number of trees this call set out to build.
    ///
    /// This is the batched CSR fast path: the adjacency is snapshotted once
    /// per closure ([`MetricClosure::csr`]), the §2.2 edge cost is resolved
    /// once per payload into a slot-aligned vector (instead of once per
    /// heap relaxation, the lazy path's behavior), and every worker runs
    /// the cache-friendly CSR kernel on a thread-local [`SsspScratch`]
    /// whose buffers are recycled across its sources.
    ///
    /// Each tree is an independent Dijkstra run and the CSR kernel is
    /// bit-identical to the lazy [`MetricClosure::routed_from`] build, so
    /// neither the build order, the thread count, nor which path
    /// materialized an entry can affect its contents: `par_warm(s, p, 1)`,
    /// `par_warm(s, p, 0)`, and lazy queries leave bit-for-bit identical
    /// caches (property-tested in `tests/csr_equivalence.rs`). Every build
    /// counts as one miss (and a racing duplicate query as a hit), keeping
    /// `hits + misses == queries` exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use elpc_mapping::{CostModel, MetricClosure, NodeId};
    /// # let mut b = elpc_netsim::Network::builder();
    /// # let s = b.add_node(100.0).unwrap();
    /// # let m = b.add_node(100.0).unwrap();
    /// # let d = b.add_node(100.0).unwrap();
    /// # b.add_link(s, m, 100.0, 0.5).unwrap();
    /// # b.add_link(m, d, 100.0, 0.5).unwrap();
    /// # let network = b.build().unwrap();
    /// let closure = MetricClosure::new(&network, CostModel::default());
    /// let sources: Vec<NodeId> = network.node_ids().collect();
    /// // 3 sources × 2 payloads on all CPUs
    /// let built = closure.par_warm(&sources, &[1e5, 1e6], 0);
    /// assert_eq!(built, 6);
    /// assert_eq!(closure.cached_trees(), 6);
    /// // idempotent: everything is already materialized
    /// assert_eq!(closure.par_warm(&sources, &[1e5, 1e6], 1), 0);
    /// ```
    pub fn par_warm(&self, sources: &[NodeId], payloads: &[f64], threads: usize) -> usize {
        // gather missing keys grouped per payload, so each batch shares one
        // precomputed cost vector
        let mut seen = std::collections::HashSet::new();
        let mut batches: Vec<(f64, Vec<TreeKey>)> = Vec::with_capacity(payloads.len());
        for &bytes in payloads {
            let mut batch = Vec::new();
            for &src in sources {
                let key = TreeKey::new(src, bytes);
                if seen.insert(key) && !self.shards[shard_of(&key)].read().contains_key(&key) {
                    batch.push(key);
                }
            }
            if !batch.is_empty() {
                batches.push((bytes, batch));
            }
        }
        if batches.is_empty() {
            return 0;
        }
        let csr = self.csr();
        // resolve the cost model once per (payload, edge) — the lazy path
        // pays this per heap relaxation instead
        let costs: Vec<Vec<f64>> = batches
            .iter()
            .map(|(bytes, _)| {
                csr.cost_vector(|eid| self.cost.edge_transfer_ms(self.net, eid, *bytes))
            })
            .collect();
        let work: Vec<(usize, TreeKey)> = batches
            .iter()
            .enumerate()
            .flat_map(|(bi, (_, keys))| keys.iter().map(move |&k| (bi, k)))
            .collect();
        let threads = effective_threads(threads).min(work.len());
        if threads <= 1 {
            let mut scratch = SsspScratch::new();
            for &(bi, key) in &work {
                self.warm_one(csr, key, &costs[bi], &mut scratch);
            }
        } else {
            let next = AtomicUsize::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| {
                        let mut scratch = SsspScratch::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            let (bi, key) = work[i];
                            self.warm_one(csr, key, &costs[bi], &mut scratch);
                        }
                    });
                }
            })
            .expect("warm-up workers must not panic");
        }
        work.len()
    }

    /// Every materialized entry, sorted by key (deterministic order), as
    /// cheap `Arc` clones. The export half of the cross-instance reuse path.
    pub fn export(&self) -> Vec<CachedTree> {
        let mut out: Vec<CachedTree> = Vec::with_capacity(self.cached_trees());
        for shard in &self.shards {
            for (key, tree) in shard.read().iter() {
                out.push(CachedTree {
                    key: *key,
                    tree: Arc::clone(tree),
                });
            }
        }
        out.sort_by_key(|e| e.key);
        out
    }

    /// Imports previously exported entries (same network, same cost model —
    /// the caller keys on that; `ClosureBank` uses a structural
    /// fingerprint). Entries whose tree does not match this network's node
    /// count are rejected; existing entries are kept. Returns the number of
    /// entries inserted. Seeding is not a query: stats are untouched.
    pub fn seed(&self, entries: &[CachedTree]) -> usize {
        let k = self.net.node_count();
        let mut inserted = 0;
        for e in entries {
            if e.tree.dist.len() != k || (e.key.source as usize) >= k {
                continue;
            }
            let mut shard = self.shards[shard_of(&e.key)].write();
            if let std::collections::hash_map::Entry::Vacant(v) = shard.entry(e.key) {
                v.insert(Arc::clone(&e.tree));
                inserted += 1;
            }
        }
        inserted
    }

    /// Minimum routed transport time of `bytes` from `a` to `b` (ms), zero
    /// when `a == b`, [`MappingError::Infeasible`] when no route exists.
    pub fn routed_transfer_ms(&self, a: NodeId, b: NodeId, bytes: f64) -> Result<f64> {
        if a == b {
            return Ok(0.0);
        }
        let tree = self.routed_from(a, bytes);
        let d = tree.dist[b.index()];
        if d.is_finite() {
            Ok(d)
        } else {
            Err(MappingError::Infeasible(format!(
                "no route from {a} to {b} in the network"
            )))
        }
    }

    /// The node sequence of the cheapest route `a → b` for `bytes`, from
    /// the cached predecessor map. `None` when unreachable.
    pub fn routed_path(&self, a: NodeId, b: NodeId, bytes: f64) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let tree = self.routed_from(a, bytes);
        extract_path(&tree, a, b)
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> ClosureStats {
        ClosureStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of materialized `(payload, source)` trees.
    pub fn cached_trees(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// Everything a registered solver needs to run: the problem instance, the
/// cost model, and the shared metric closure (held behind an [`Arc`], so
/// the cache can also be shared across contexts and threads). Build one per
/// instance and pass it to every algorithm being compared.
///
/// # Examples
///
/// ```
/// use elpc_mapping::{solver, CostModel, Instance, SolveContext};
/// # let mut b = elpc_netsim::Network::builder();
/// # let s = b.add_node(100.0).unwrap();
/// # let m = b.add_node(1000.0).unwrap();
/// # let d = b.add_node(100.0).unwrap();
/// # b.add_link(s, m, 100.0, 0.5).unwrap();
/// # b.add_link(m, d, 100.0, 0.5).unwrap();
/// # let network = b.build().unwrap();
/// # let pipeline = elpc_pipeline::Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
/// let inst = Instance::new(&network, &pipeline, s, d).unwrap();
/// // `new` is the lazy serial constructor; `with_threads(inst, cost, 0)`
/// // would additionally pre-build the routed DPs' transfer trees on all
/// // CPUs — results are identical either way
/// let ctx = SolveContext::new(inst, CostModel::default());
/// let a = solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
/// let b = solver("streamline_delay").unwrap().solve(&ctx).unwrap();
/// // both solvers shared one metric closure: the second one hit the cache
/// assert!(ctx.closure().stats().hits > 0);
/// assert!(a.objective_ms <= b.objective_ms);
/// ```
#[derive(Clone)]
pub struct SolveContext<'a> {
    inst: Instance<'a>,
    closure: Arc<MetricClosure<'a>>,
    warm_threads: usize,
    /// Lazily built dense evaluation kernel (see [`crate::eval`]), shared
    /// across clones of this context so a compare row or portfolio slate
    /// snapshots the closure exactly once.
    kernel: Arc<std::sync::OnceLock<Arc<crate::eval::EvalKernel>>>,
}

impl<'a> SolveContext<'a> {
    /// A context for `inst` under `cost` with an empty closure cache and
    /// serial (lazy) tree builds — the minimal-work single-threaded
    /// configuration.
    pub fn new(inst: Instance<'a>, cost: CostModel) -> Self {
        Self::with_threads(inst, cost, 1)
    }

    /// A context whose routed solvers pre-build their transfer trees on
    /// `threads` worker threads (`0` = all CPUs, `1` = lazy serial).
    pub fn with_threads(inst: Instance<'a>, cost: CostModel, threads: usize) -> Self {
        SolveContext {
            inst,
            closure: Arc::new(MetricClosure::new(inst.network, cost)),
            warm_threads: threads,
            kernel: Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// A context sharing an existing closure (same network required —
    /// checked by identity). The intra-process sharing path: several
    /// contexts over one network see one cache.
    pub fn from_shared(
        inst: Instance<'a>,
        closure: Arc<MetricClosure<'a>>,
        threads: usize,
    ) -> Result<Self> {
        if !std::ptr::eq(closure.network(), inst.network) {
            return Err(MappingError::BadConfig(
                "shared closure was built over a different network".into(),
            ));
        }
        Ok(SolveContext {
            inst,
            closure,
            warm_threads: threads,
            kernel: Arc::new(std::sync::OnceLock::new()),
        })
    }

    /// The problem instance.
    pub fn instance(&self) -> &Instance<'a> {
        &self.inst
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        self.closure.cost()
    }

    /// The transport network.
    pub fn network(&self) -> &'a elpc_netsim::Network {
        self.inst.network
    }

    /// The computing pipeline.
    pub fn pipeline(&self) -> &'a elpc_pipeline::Pipeline {
        self.inst.pipeline
    }

    /// The shared metric closure.
    pub fn closure(&self) -> &MetricClosure<'a> {
        &self.closure
    }

    /// The closure as a cloneable handle, for sharing across contexts or
    /// threads.
    pub fn closure_arc(&self) -> Arc<MetricClosure<'a>> {
        Arc::clone(&self.closure)
    }

    /// The configured warm-up thread count (`0` = all CPUs, `1` = lazy).
    pub fn warm_threads(&self) -> usize {
        self.warm_threads
    }

    /// Pre-builds the transfer trees the routed DPs consult: the first
    /// boundary's payload from the source, and every later boundary's
    /// payload from every node. Called by the routed solvers on entry; a
    /// no-op at `warm_threads == 1`, where the solvers' lazy queries build
    /// strictly the trees they touch. Returns the number of trees built.
    pub fn warm_routed_dp(&self) -> usize {
        if self.warm_threads == 1 {
            return 0;
        }
        let pipe = self.inst.pipeline;
        let n = pipe.len();
        if n < 2 {
            return 0;
        }
        let mut built =
            self.closure
                .par_warm(&[self.inst.src], &[pipe.input_bytes(1)], self.warm_threads);
        if n > 2 {
            let sources: Vec<NodeId> = self.network().node_ids().collect();
            let payloads: Vec<f64> = (2..n).map(|j| pipe.input_bytes(j)).collect();
            built += self
                .closure
                .par_warm(&sources, &payloads, self.warm_threads);
        }
        built
    }

    /// The dense evaluation kernel for this instance (see [`crate::eval`]),
    /// built on first use — through [`MetricClosure::par_warm`] on the
    /// context's warm-thread count — and memoized, so every local-search
    /// solver and the rate polish running on this context (or a clone of
    /// it) share one snapshot. Contents are bit-identical at any thread
    /// count.
    pub fn eval_kernel(&self) -> Arc<crate::eval::EvalKernel> {
        Arc::clone(
            self.kernel
                .get_or_init(|| Arc::new(crate::eval::EvalKernel::build(self))),
        )
    }

    /// The kernel if some solver on this context already built it — the
    /// opportunistic fast path for callers (like the rate polish) whose own
    /// workload would not amortize a fresh snapshot.
    pub fn eval_kernel_cached(&self) -> Option<Arc<crate::eval::EvalKernel>> {
        self.kernel.get().cloned()
    }

    /// Pre-installs `kernel` as this context's memoized evaluation kernel,
    /// so [`Self::eval_kernel`] hands it out instead of building one.
    /// Returns `false` (and installs nothing) when a kernel is already
    /// memoized. This is how a churn loop reuses a row-patched kernel
    /// ([`crate::EvalKernel::patched_for_churn`]) on the next epoch's
    /// context: the caller owes the same contract the builder meets — the
    /// kernel must equal `EvalKernel::build(self)` bit-for-bit.
    pub fn install_eval_kernel(&self, kernel: Arc<crate::eval::EvalKernel>) -> bool {
        self.kernel.set(kernel).is_ok()
    }

    /// Shorthand for [`MetricClosure::routed_from`].
    pub fn routed_from(&self, src: NodeId, bytes: f64) -> Arc<ShortestPaths> {
        self.closure.routed_from(src, bytes)
    }

    /// Shorthand for [`MetricClosure::routed_transfer_ms`].
    pub fn routed_transfer_ms(&self, a: NodeId, b: NodeId, bytes: f64) -> Result<f64> {
        self.closure.routed_transfer_ms(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    fn net3() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(100.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 1000.0, 0.1).unwrap();
        b.add_link(n1, n2, 1000.0, 0.1).unwrap();
        b.add_link(n0, n2, 1.0, 0.1).unwrap();
        b.build().unwrap()
    }

    fn assert_send_sync<T: Send + Sync>(_: &T) {}

    #[test]
    fn closure_and_context_are_send_and_sync() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        assert_send_sync(&mc);
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        assert_send_sync(&ctx);
    }

    #[test]
    fn closure_caches_per_payload_and_source() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        let a = mc.routed_from(NodeId(0), 1e6);
        let b = mc.routed_from(NodeId(0), 1e6);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same query must return the cached tree"
        );
        assert_eq!(mc.stats(), ClosureStats { hits: 1, misses: 1 });
        // different payload or source recomputes
        mc.routed_from(NodeId(0), 2e6);
        mc.routed_from(NodeId(1), 1e6);
        assert_eq!(mc.stats().misses, 3);
        assert_eq!(mc.cached_trees(), 3);
        assert!(mc.contains(NodeId(0), 2e6));
        assert!(!mc.contains(NodeId(2), 2e6));
    }

    #[test]
    fn closure_matches_fresh_dijkstra_bit_for_bit() {
        let net = net3();
        let cost = CostModel::default();
        let mc = MetricClosure::new(&net, cost);
        for bytes in [1.0, 1e4, 1e6] {
            for src in 0..3u32 {
                let cached = mc.routed_from(NodeId(src), bytes);
                let fresh = dijkstra(net.graph(), NodeId(src), |eid, _| {
                    cost.edge_transfer_ms(&net, eid, bytes)
                });
                for v in 0..3 {
                    assert_eq!(cached.dist[v].to_bits(), fresh.dist[v].to_bits());
                    assert_eq!(cached.prev[v], fresh.prev[v]);
                }
            }
        }
    }

    #[test]
    fn routed_transfer_prefers_multi_hop_over_slow_direct() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        // 1 MB over the direct 1 Mbps link = 8000 ms; via n1 = 16.2 ms
        let t = mc.routed_transfer_ms(NodeId(0), NodeId(2), 1e6).unwrap();
        assert!((t - 16.2).abs() < 1e-9, "got {t}");
        assert_eq!(
            mc.routed_path(NodeId(0), NodeId(2), 1e6).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(
            mc.routed_transfer_ms(NodeId(1), NodeId(1), 1e9).unwrap(),
            0.0
        );
    }

    #[test]
    fn par_warm_builds_the_cross_product_once() {
        let net = net3();
        let mc = MetricClosure::new(&net, CostModel::default());
        let sources = [NodeId(0), NodeId(1), NodeId(2)];
        let built = mc.par_warm(&sources, &[1e4, 1e6], 2);
        assert_eq!(built, 6);
        assert_eq!(mc.cached_trees(), 6);
        // a second warm builds nothing
        assert_eq!(mc.par_warm(&sources, &[1e4, 1e6], 0), 0);
        // duplicate inputs are deduplicated
        let built = mc.par_warm(&[NodeId(0), NodeId(0)], &[5e5, 5e5], 4);
        assert_eq!(built, 1);
    }

    #[test]
    fn par_warm_thread_counts_agree_bit_for_bit() {
        let net = net3();
        let cost = CostModel::default();
        let serial = MetricClosure::new(&net, cost);
        let parallel = MetricClosure::new(&net, cost);
        let sources = [NodeId(0), NodeId(1), NodeId(2)];
        let payloads = [1.0, 1e4, 2.5e5, 1e6];
        serial.par_warm(&sources, &payloads, 1);
        parallel.par_warm(&sources, &payloads, 0);
        for &src in &sources {
            for &bytes in &payloads {
                let a = serial.routed_from(src, bytes);
                let b = parallel.routed_from(src, bytes);
                for v in 0..3 {
                    assert_eq!(a.dist[v].to_bits(), b.dist[v].to_bits());
                    assert_eq!(a.prev[v], b.prev[v]);
                }
            }
        }
    }

    #[test]
    fn export_seed_round_trips_trees_by_identity() {
        let net = net3();
        let cost = CostModel::default();
        let mc = MetricClosure::new(&net, cost);
        mc.par_warm(&[NodeId(0), NodeId(1)], &[1e4, 1e6], 1);
        let entries = mc.export();
        assert_eq!(entries.len(), 4);
        // deterministic order
        let again = mc.export();
        for (a, b) in entries.iter().zip(&again) {
            assert_eq!(a.key, b.key);
            assert!(Arc::ptr_eq(&a.tree, &b.tree));
        }
        let fresh = MetricClosure::new(&net, cost);
        assert_eq!(fresh.seed(&entries), 4);
        assert_eq!(fresh.cached_trees(), 4);
        // seeding is not a query and keeps existing entries
        assert_eq!(fresh.stats(), ClosureStats::default());
        assert_eq!(fresh.seed(&entries), 0);
        // a seeded query is a hit on the identical Arc
        let tree = fresh.routed_from(NodeId(0), 1e4);
        assert!(Arc::ptr_eq(&tree, &mc.routed_from(NodeId(0), 1e4)));
        assert_eq!(fresh.stats().hits, 1);
    }

    #[test]
    fn seed_rejects_foreign_shaped_trees() {
        let net = net3();
        let cost = CostModel::default();
        let mut b = Network::builder();
        let a = b.add_node(1.0).unwrap();
        let c = b.add_node(1.0).unwrap();
        b.add_link(a, c, 10.0, 0.1).unwrap();
        let net2 = b.build().unwrap();
        let mc2 = MetricClosure::new(&net2, cost);
        mc2.routed_from(a, 1e4);
        let mc = MetricClosure::new(&net, cost);
        assert_eq!(mc.seed(&mc2.export()), 0, "2-node trees must be rejected");
    }

    #[test]
    fn context_exposes_instance_and_closure() {
        let net = net3();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        assert_eq!(ctx.pipeline().len(), 3);
        assert_eq!(ctx.network().node_count(), 3);
        assert_eq!(ctx.instance().src, NodeId(0));
        assert_eq!(ctx.warm_threads(), 1);
        ctx.routed_from(NodeId(0), 1e4);
        assert_eq!(ctx.closure().stats().misses, 1);
        // lazy contexts skip the DP warm-up entirely
        assert_eq!(ctx.warm_routed_dp(), 0);
    }

    #[test]
    fn parallel_context_prewarms_the_dp_trees() {
        let net = net3();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4), (1.0, 1e3)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let ctx = SolveContext::with_threads(inst, CostModel::default(), 2);
        // boundary 1 from src only, boundaries 2..n from all 3 nodes
        let built = ctx.warm_routed_dp();
        assert_eq!(built, 1 + 3 * 2);
        // idempotent
        assert_eq!(ctx.warm_routed_dp(), 0);
    }

    #[test]
    fn shared_closure_contexts_enforce_network_identity() {
        let net = net3();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        ctx.routed_from(NodeId(1), 1e4);
        let shared = SolveContext::from_shared(inst, ctx.closure_arc(), 1).unwrap();
        assert_eq!(shared.closure().cached_trees(), 1);
        let other = net3();
        let inst2 = Instance::new(&other, &pipe, NodeId(0), NodeId(2)).unwrap();
        assert!(SolveContext::from_shared(inst2, ctx.closure_arc(), 1).is_err());
    }
}
