//! Incremental (churn) maintenance of the routed metric closure.
//!
//! A bandwidth/MLD/power perturbation used to invalidate *everything*: the
//! `ClosureBank` keys on the full topology fingerprint, so any change —
//! even one link of ten thousand — forced a complete all-pairs rebuild.
//! This module repairs instead of rebuilding: given a [`NetworkDelta`]
//! (the exact set of perturbed links and nodes between an old and a new
//! network), it decides *per cached tree* whether the perturbation can
//! affect that tree, keeps the untouched majority as shared `Arc`s, and
//! rebuilds only the stale sources through the existing CSR kernel
//! ([`crate::MetricClosure::par_warm`]).
//!
//! ## The invalidation rule
//!
//! For a tree rooted at `s` for payload `m`, and a perturbed directed edge
//! `e = (u, v)` whose cost under the tree's payload moved from `w_old` to
//! `w_new` (costs priced through [`CostModel::raw_link_transfer_ms`]; a
//! perturbation that leaves the cost bit-identical — e.g. a bandwidth
//! change under a zero-byte payload — is *no* change):
//!
//! 1. **The tree traverses `e`** (its per-tree touched-edge bitset,
//!    [`elpc_netgraph::algo::TreeEdges`], contains `e`): every distance
//!    downstream of `e` is built on the old cost → **rebuild**.
//! 2. **`e` is off-tree but could now compete**: `dist[u] + w_new <=
//!    dist[v]` with `dist[u]` finite. A strict `<` would change distances;
//!    equality could change predecessor tie resolution → **rebuild**
//!    (conservative).
//! 3. **Otherwise** (`dist[u] + w_new > dist[v]`, or `u` unreachable): a
//!    path through `e` is strictly worse than the retained distance. By
//!    induction over path prefixes no path beats the old distances under
//!    the new costs, and the tree itself avoids every changed edge, so its
//!    distances still *achieve* them → **keep, bit-for-bit**.
//!
//! Node power perturbations never touch transfer trees at all — edge costs
//! depend only on bandwidth, MLD, and payload — they only re-price
//! `EvalKernel` compute columns (see [`crate::EvalKernel::patched_for_churn`])
//! and re-key the bank.
//!
//! ## Failures are removals, not perturbations
//!
//! A *failed* element (link cut to the `bw = 0` sentinel, node crashed to
//! `power = 0` — see `elpc_netsim::faults`) is carried separately as a
//! [`LinkFailure`] / [`NodeFailure`]. A failed link prices at `+∞`, so rule
//! 1 applies unchanged (any tree traversing it rebuilds) while rule 2 is
//! skipped — an edge that only got worse can never newly compete. A crashed
//! node's incident links arrive as their own `LinkFailure`s (the crash cuts
//! them), and the crash itself re-prices compute to `+∞` and flags every
//! mapped pipeline hosted there for forced remap
//! ([`NetworkDelta::forces_remap`]). Restores (failed → healthy) diff as
//! ordinary perturbations — no special casing.
//!
//! Kept trees are reused as `Arc`s, so their exported bytes are *identical*
//! (not merely equal) to the pre-perturbation export; rebuilt trees go
//! through the same CSR kernel as a cold build, so the repaired closure's
//! [`crate::MetricClosure::export`] is byte-identical to a from-scratch
//! closure over the perturbed network. One caveat, pinned by the
//! differential suite on tie-free instances: when distinct shortest paths
//! *tie exactly* in `f64`, a fresh Dijkstra may resolve a kept tree's
//! predecessor links differently than the retained tree does — distances
//! are always bit-identical, predecessors only in generic position.

use crate::context::{CachedTree, MetricClosure, TreeKey};
use crate::{CostModel, MappingError, Result};
use elpc_netgraph::algo::ShortestPaths;
use elpc_netgraph::{EdgeId, NodeId};
use elpc_netsim::{Link, Network};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One perturbed directed edge: its endpoints and its old/new link values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkPerturbation {
    /// The directed edge id (both directions of a symmetric link appear as
    /// separate perturbations).
    pub edge: EdgeId,
    /// Tail of the directed edge.
    pub src: NodeId,
    /// Head of the directed edge.
    pub dst: NodeId,
    /// The link value before the perturbation.
    pub old: Link,
    /// The link value after it.
    pub new: Link,
}

/// One perturbed node: its old and new compute power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePerturbation {
    /// The node.
    pub node: NodeId,
    /// Power before the perturbation.
    pub old_power: f64,
    /// Power after it.
    pub new_power: f64,
}

/// One *failed* directed edge — a removal, not a value perturbation. The
/// edge stays in the graph carrying the `bw = 0` sentinel
/// ([`elpc_netsim::Link::is_failed`]), so its cost is `+∞` under every
/// payload: any cached tree traversing it must rebuild, and an off-tree
/// failed edge can never newly compete (rule 2 is skipped — a removal only
/// makes the edge worse).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFailure {
    /// The failed directed edge id (both directions of a symmetric link
    /// appear as separate failures).
    pub edge: EdgeId,
    /// Tail of the directed edge.
    pub src: NodeId,
    /// Head of the directed edge.
    pub dst: NodeId,
    /// The link value before the failure (healthy: `bw > 0`), kept so a
    /// later restore diffs as an ordinary perturbation.
    pub old: Link,
}

/// One *crashed* node — its power dropped to the `0.0` failure sentinel.
/// Compute there prices at `+∞`, and any mapped pipeline hosting a module
/// on it is flagged for forced remap ([`NetworkDelta::forces_remap`]). The
/// links a crash takes down with it appear as separate [`LinkFailure`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFailure {
    /// The crashed node.
    pub node: NodeId,
    /// Power before the crash.
    pub old_power: f64,
}

/// The exact difference between two same-shaped networks: which directed
/// edges and nodes changed, with old and new values. Serializable, so a
/// remap client can ship it to the serving daemon for an in-place bank
/// repair.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkDelta {
    /// Perturbed directed edges (value changes, including restores of
    /// previously failed elements).
    pub links: Vec<LinkPerturbation>,
    /// Perturbed nodes (power changes, including restores).
    pub nodes: Vec<NodePerturbation>,
    /// Directed edges that *failed* (healthy → `bw = 0` sentinel) between
    /// old and new — removals in cost space.
    pub link_failures: Vec<LinkFailure>,
    /// Nodes that *crashed* (healthy → `power = 0` sentinel) between old
    /// and new.
    pub node_failures: Vec<NodeFailure>,
}

/// What a [`repair_closure`] run did, for the exact-accounting pins:
/// `kept + rebuilt == total` always.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairReport {
    /// Cached trees examined (the old closure's full export).
    pub total: usize,
    /// Trees the invalidation rule retained, reused as shared `Arc`s.
    pub kept: usize,
    /// Trees rebuilt from scratch through the CSR kernel.
    pub rebuilt: usize,
}

impl NetworkDelta {
    /// Diffs two structurally identical networks (same node count, same
    /// edge ids with the same endpoints — the shape every
    /// `DynamicNetwork::snapshot_at` pair has). Values are compared by bit
    /// pattern, so the delta is empty exactly when the networks would
    /// fingerprint identically.
    pub fn between(old: &Network, new: &Network) -> Result<NetworkDelta> {
        if old.node_count() != new.node_count()
            || old.graph().edge_count() != new.graph().edge_count()
        {
            return Err(MappingError::BadConfig(format!(
                "delta requires same-shaped networks, got {}n/{}e vs {}n/{}e",
                old.node_count(),
                old.graph().edge_count(),
                new.node_count(),
                new.graph().edge_count()
            )));
        }
        let mut out = NetworkDelta::default();
        for (id, e_old) in old.graph().edges() {
            let e_new = new.graph().edge(id).expect("edge counts match");
            if e_old.src != e_new.src || e_old.dst != e_new.dst {
                return Err(MappingError::BadConfig(format!(
                    "delta requires identical wiring, edge {} moved endpoints",
                    id.index()
                )));
            }
            let (lo, ln) = (&e_old.payload, &e_new.payload);
            if lo.bw_mbps.to_bits() != ln.bw_mbps.to_bits()
                || lo.mld_ms.to_bits() != ln.mld_ms.to_bits()
            {
                if ln.is_failed() && !lo.is_failed() {
                    out.link_failures.push(LinkFailure {
                        edge: id,
                        src: e_old.src,
                        dst: e_old.dst,
                        old: lo.clone(),
                    });
                } else {
                    out.links.push(LinkPerturbation {
                        edge: id,
                        src: e_old.src,
                        dst: e_old.dst,
                        old: lo.clone(),
                        new: ln.clone(),
                    });
                }
            }
        }
        for i in 0..old.node_count() {
            let id = NodeId::from_index(i);
            let (po, pn) = (old.power(id), new.power(id));
            if po.to_bits() != pn.to_bits() {
                if pn == 0.0 {
                    out.node_failures.push(NodeFailure {
                        node: id,
                        old_power: po,
                    });
                } else {
                    out.nodes.push(NodePerturbation {
                        node: id,
                        old_power: po,
                        new_power: pn,
                    });
                }
            }
        }
        Ok(out)
    }

    /// True when nothing changed: old and new networks are value-identical.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.nodes.is_empty()
            && self.link_failures.is_empty()
            && self.node_failures.is_empty()
    }

    /// True when the delta contains a removal — a failed link or a crashed
    /// node (as opposed to pure value perturbations and restores).
    pub fn has_failures(&self) -> bool {
        !self.link_failures.is_empty() || !self.node_failures.is_empty()
    }

    /// True when any of `hosts` (a mapped pipeline's assignment) sits on a
    /// node that crashed in this delta — that pipeline *must* be remapped;
    /// no amount of closure repair can salvage a dead host.
    pub fn forces_remap(&self, hosts: &[NodeId]) -> bool {
        self.node_failures.iter().any(|nf| hosts.contains(&nf.node))
    }

    /// Builds a delta from a *known* changed-element set (e.g.
    /// `DynamicNetwork::changes_between`) in O(|changes|), instead of
    /// diffing whole networks like [`NetworkDelta::between`]. `links` may
    /// name either direction of an undirected pair — both directed edges
    /// are diffed (pair ids differ by exactly one, a graph-construction
    /// invariant) and duplicates are ignored. Elements whose values turn
    /// out bit-identical are dropped, so over-reporting changes is
    /// harmless; *under*-reporting is the caller's contract to avoid.
    pub fn from_changed_elements(
        old: &Network,
        new: &Network,
        links: &[EdgeId],
        nodes: &[NodeId],
    ) -> Result<NetworkDelta> {
        let mut directed: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for id in links {
            directed.insert(id.0);
            directed.insert(id.0 ^ 1); // the undirected pair's other half
        }
        let mut out = NetworkDelta::default();
        for d in directed {
            let id = EdgeId(d);
            let e_old = old.graph().edge(id).map_err(|e| {
                MappingError::BadConfig(format!("changed edge {d} not in old network: {e}"))
            })?;
            let e_new = new.graph().edge(id).map_err(|e| {
                MappingError::BadConfig(format!("changed edge {d} not in new network: {e}"))
            })?;
            if e_old.src != e_new.src || e_old.dst != e_new.dst {
                return Err(MappingError::BadConfig(format!(
                    "delta requires identical wiring, edge {d} moved endpoints"
                )));
            }
            let (lo, ln) = (&e_old.payload, &e_new.payload);
            if lo.bw_mbps.to_bits() != ln.bw_mbps.to_bits()
                || lo.mld_ms.to_bits() != ln.mld_ms.to_bits()
            {
                if ln.is_failed() && !lo.is_failed() {
                    out.link_failures.push(LinkFailure {
                        edge: id,
                        src: e_old.src,
                        dst: e_old.dst,
                        old: lo.clone(),
                    });
                } else {
                    out.links.push(LinkPerturbation {
                        edge: id,
                        src: e_old.src,
                        dst: e_old.dst,
                        old: lo.clone(),
                        new: ln.clone(),
                    });
                }
            }
        }
        for &node in nodes {
            if node.index() >= old.node_count() || node.index() >= new.node_count() {
                return Err(MappingError::BadConfig(format!(
                    "changed node {} out of range",
                    node.index()
                )));
            }
            let (po, pn) = (old.power(node), new.power(node));
            if po.to_bits() != pn.to_bits() {
                if pn == 0.0 {
                    out.node_failures.push(NodeFailure {
                        node,
                        old_power: po,
                    });
                } else {
                    out.nodes.push(NodePerturbation {
                        node,
                        old_power: po,
                        new_power: pn,
                    });
                }
            }
        }
        Ok(out)
    }

    /// The perturbed link costs under `cost` for one payload size, with
    /// no-op changes (bit-identical old/new cost) already dropped. Failures
    /// price at `+∞` and carry the `removal` flag, which restricts the
    /// invalidation rule to rule 1 — an off-tree edge that only got worse
    /// can never newly compete.
    fn priced_links(&self, cost: &CostModel, bytes: f64) -> Vec<PricedChange> {
        let perturbed = self.links.iter().filter_map(|lp| {
            let w_old = cost.raw_link_transfer_ms(&lp.old, bytes);
            let w_new = cost.raw_link_transfer_ms(&lp.new, bytes);
            (w_old.to_bits() != w_new.to_bits()).then_some(PricedChange {
                edge: lp.edge,
                u: lp.src.index(),
                v: lp.dst.index(),
                w_new,
                removal: false,
            })
        });
        let failed = self.link_failures.iter().filter_map(|lf| {
            // a healthy link's cost is finite; if it already priced at +∞
            // (degenerate payload) the failure is a cost no-op
            let w_old = cost.raw_link_transfer_ms(&lf.old, bytes);
            w_old.is_finite().then_some(PricedChange {
                edge: lf.edge,
                u: lf.src.index(),
                v: lf.dst.index(),
                w_new: f64::INFINITY,
                removal: true,
            })
        });
        perturbed.chain(failed).collect()
    }
}

/// A link perturbation priced for one payload: all the invalidation rule
/// needs per tree.
struct PricedChange {
    edge: EdgeId,
    u: usize,
    v: usize,
    w_new: f64,
    /// True for failures: the edge went to `+∞`, so only rule 1 applies.
    removal: bool,
}

/// The invalidation rule (module docs) for one tree against one payload's
/// priced changes.
fn tree_is_stale(tree: &ShortestPaths, edge_count: usize, priced: &[PricedChange]) -> bool {
    if priced.is_empty() {
        return false;
    }
    let on_tree = tree.tree_edges(edge_count);
    priced.iter().any(|pc| {
        if on_tree.contains(pc.edge) {
            return true; // rule 1: the tree traverses the changed edge
        }
        if pc.removal {
            // a removed off-tree edge only got worse — it cannot compete
            return false;
        }
        let du = tree.dist[pc.u];
        // rule 2: a changed off-tree edge now matches or beats the
        // retained distance at its head
        du.is_finite() && du + pc.w_new <= tree.dist[pc.v]
    })
}

/// Repairs `entries` (an old closure's [`crate::MetricClosure::export`])
/// into `target`, a closure over the *perturbed* network, per `delta`:
/// trees the invalidation rule retains are seeded as shared `Arc`s, stale
/// sources are rebuilt through the CSR kernel on `threads` workers.
///
/// After this returns, `target` answers every key `entries` held,
/// byte-identically to a from-scratch closure over the perturbed network
/// (predecessor links in generic position; see the module docs for the
/// exact-tie caveat). Rebuilds count as closure misses, exactly like a
/// cold build of the same trees; seeding kept trees is stat-free.
pub fn repair_closure(
    target: &MetricClosure<'_>,
    entries: &[CachedTree],
    delta: &NetworkDelta,
    threads: usize,
) -> RepairReport {
    let edge_count = target.network().graph().edge_count();
    // price each distinct payload once; BTreeMap keeps rebuild order
    // deterministic regardless of entry order
    let mut priced_of: BTreeMap<u64, Vec<PricedChange>> = BTreeMap::new();
    let mut kept: Vec<CachedTree> = Vec::with_capacity(entries.len());
    let mut stale: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for e in entries {
        let bits = e.key.payload().to_bits();
        let priced = priced_of
            .entry(bits)
            .or_insert_with(|| delta.priced_links(target.cost(), e.key.payload()));
        if tree_is_stale(&e.tree, edge_count, priced) {
            stale.entry(bits).or_default().push(e.key.source_node());
        } else {
            kept.push(e.clone());
        }
    }
    let kept_count = target.seed(&kept);
    let mut rebuilt = 0;
    for (bits, sources) in &stale {
        rebuilt += target.par_warm(sources, &[f64::from_bits(*bits)], threads);
    }
    RepairReport {
        total: entries.len(),
        kept: kept_count,
        rebuilt,
    }
}

/// Splits an export into (kept, stale-keys) under `delta` without touching
/// any closure — the decision half of [`repair_closure`], exposed so
/// callers that patch an [`crate::EvalKernel`] know exactly which
/// `(payload, source)` rows moved.
pub fn partition_stale(
    entries: &[CachedTree],
    net: &Network,
    cost: &CostModel,
    delta: &NetworkDelta,
) -> (Vec<CachedTree>, Vec<TreeKey>) {
    let edge_count = net.graph().edge_count();
    let mut priced_of: BTreeMap<u64, Vec<PricedChange>> = BTreeMap::new();
    let mut kept = Vec::new();
    let mut stale = Vec::new();
    for e in entries {
        let bits = e.key.payload().to_bits();
        let priced = priced_of
            .entry(bits)
            .or_insert_with(|| delta.priced_links(cost, e.key.payload()));
        if tree_is_stale(&e.tree, edge_count, priced) {
            stale.push(e.key);
        } else {
            kept.push(e.clone());
        }
    }
    (kept, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MetricClosure;
    use elpc_netsim::Network;

    /// 4-node diamond with a detour: 0-1-3 is the fast route, 0-2-3 slow.
    fn diamond() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(100.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        let n3 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 1000.0, 0.1).unwrap();
        b.add_link(n1, n3, 1000.0, 0.1).unwrap();
        b.add_link(n0, n2, 100.0, 0.1).unwrap();
        b.add_link(n2, n3, 100.0, 0.1).unwrap();
        b.build().unwrap()
    }

    fn perturb_link(net: &Network, undirected: usize, bw_scale: f64) -> Network {
        let mut out = net.clone();
        let id = EdgeId((2 * undirected) as u32);
        let old = net.link(id).unwrap().clone();
        out.set_link_symmetric(id, Link::new(old.bw_mbps * bw_scale, old.mld_ms))
            .unwrap();
        out
    }

    #[test]
    fn between_reports_exactly_the_perturbed_elements() {
        let old = diamond();
        let new = perturb_link(&old, 1, 0.5);
        let delta = NetworkDelta::between(&old, &new).unwrap();
        // both directions of undirected link 1 = edge ids 2 and 3
        let ids: Vec<u32> = delta.links.iter().map(|l| l.edge.0).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(delta.nodes.is_empty());
        assert!(NetworkDelta::between(&old, &old).unwrap().is_empty());
    }

    #[test]
    fn from_changed_elements_agrees_with_a_full_diff() {
        let old = diamond();
        let mut new = perturb_link(&old, 1, 0.5);
        new.node_mut(NodeId(2)).unwrap().power = 50.0;
        let full = NetworkDelta::between(&old, &new).unwrap();
        // Either direction of the pair names the same undirected link, and
        // duplicates collapse; unchanged elements are dropped.
        for links in [vec![EdgeId(2)], vec![EdgeId(3)], vec![EdgeId(2), EdgeId(3)]] {
            let sparse = NetworkDelta::from_changed_elements(
                &old,
                &new,
                &links,
                &[NodeId(2), NodeId(0)], // NodeId(0) is unchanged — dropped
            )
            .unwrap();
            assert_eq!(sparse, full);
        }
        assert!(NetworkDelta::from_changed_elements(&old, &new, &[EdgeId(99)], &[]).is_err());
    }

    #[test]
    fn between_rejects_shape_mismatches() {
        let old = diamond();
        let mut b = Network::builder();
        let a = b.add_node(100.0).unwrap();
        let c = b.add_node(100.0).unwrap();
        b.add_link(a, c, 100.0, 0.1).unwrap();
        let other = b.build().unwrap();
        assert!(NetworkDelta::between(&old, &other).is_err());
    }

    #[test]
    fn power_only_deltas_keep_every_tree() {
        let old = diamond();
        let mut new = old.clone();
        new.node_mut(NodeId(2)).unwrap().power = 50.0;
        let delta = NetworkDelta::between(&old, &new).unwrap();
        assert!(delta.links.is_empty());
        assert_eq!(delta.nodes.len(), 1);

        let cost = CostModel::default();
        let closure = MetricClosure::new(&old, cost);
        let sources: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
        closure.par_warm(&sources, &[1_000_000.0], 1);
        let entries = closure.export();

        let target = MetricClosure::new(&new, cost);
        let report = repair_closure(&target, &entries, &delta, 1);
        assert_eq!(report.kept, report.total);
        assert_eq!(report.rebuilt, 0);
    }

    #[test]
    fn repair_matches_a_cold_build_bit_for_bit() {
        let old = diamond();
        let cost = CostModel::default();
        let payloads = [1_000_000.0, 250_000.0];
        let sources: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();

        let closure = MetricClosure::new(&old, cost);
        closure.par_warm(&sources, &payloads, 1);
        let entries = closure.export();

        for (undirected, scale) in [(0usize, 0.25), (1, 4.0), (2, 0.5), (3, 2.0)] {
            let new = perturb_link(&old, undirected, scale);
            let delta = NetworkDelta::between(&old, &new).unwrap();

            let repaired = MetricClosure::new(&new, cost);
            let report = repair_closure(&repaired, &entries, &delta, 1);
            assert_eq!(report.kept + report.rebuilt, report.total);

            let cold = MetricClosure::new(&new, cost);
            cold.par_warm(&sources, &payloads, 1);

            let (a, b) = (repaired.export(), cold.export());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.key, y.key);
                let bits_a: Vec<u64> = x.tree.dist.iter().map(|d| d.to_bits()).collect();
                let bits_b: Vec<u64> = y.tree.dist.iter().map(|d| d.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "dist diverged (link {undirected} ×{scale})");
                assert_eq!(
                    x.tree.prev, y.tree.prev,
                    "prev diverged (link {undirected} ×{scale})"
                );
            }
        }
    }

    #[test]
    fn failures_are_classified_as_removals_and_restores_as_perturbations() {
        let old = diamond();
        let mut failed = old.clone();
        failed.fail_link_symmetric(EdgeId(2)).unwrap(); // undirected link 1
        failed.fail_node(NodeId(2)).unwrap(); // cuts links 2 and 3 too

        let delta = NetworkDelta::between(&old, &failed).unwrap();
        assert!(delta.links.is_empty(), "no value perturbations");
        assert!(delta.nodes.is_empty());
        assert_eq!(delta.node_failures.len(), 1);
        assert_eq!(delta.node_failures[0].node, NodeId(2));
        assert_eq!(delta.node_failures[0].old_power, 100.0);
        // failed directed edges: links 1, 2, 3 → ids 2,3,4,5,6,7
        let mut ids: Vec<u32> = delta.link_failures.iter().map(|l| l.edge.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3, 4, 5, 6, 7]);
        assert!(delta.has_failures());
        assert!(!delta.is_empty());
        // forced remap exactly when a host died
        assert!(delta.forces_remap(&[NodeId(0), NodeId(2)]));
        assert!(!delta.forces_remap(&[NodeId(0), NodeId(1), NodeId(3)]));

        // the sparse path classifies identically
        let sparse = NetworkDelta::from_changed_elements(
            &old,
            &failed,
            &[EdgeId(2), EdgeId(4), EdgeId(6)],
            &[NodeId(2)],
        )
        .unwrap();
        assert_eq!(sparse, delta);

        // restoring diffs back as ordinary perturbations
        let restore = NetworkDelta::between(&failed, &old).unwrap();
        assert!(restore.link_failures.is_empty());
        assert!(restore.node_failures.is_empty());
        assert_eq!(restore.links.len(), 6);
        assert_eq!(restore.nodes.len(), 1);
    }

    #[test]
    fn repair_after_failure_matches_a_cold_build_bit_for_bit() {
        let old = diamond();
        let cost = CostModel::default();
        let payloads = [1_000_000.0, 250_000.0];
        let sources: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();

        let closure = MetricClosure::new(&old, cost);
        closure.par_warm(&sources, &payloads, 1);
        let entries = closure.export();

        // cut the fast route's second hop, then crash the detour node
        for scenario in [0usize, 1] {
            let mut new = old.clone();
            if scenario == 0 {
                new.fail_link_symmetric(EdgeId(2)).unwrap();
            } else {
                new.fail_node(NodeId(2)).unwrap();
            }
            let delta = NetworkDelta::between(&old, &new).unwrap();
            assert!(delta.has_failures());

            let repaired = MetricClosure::new(&new, cost);
            let report = repair_closure(&repaired, &entries, &delta, 1);
            assert_eq!(report.kept + report.rebuilt, report.total);

            let cold = MetricClosure::new(&new, cost);
            cold.par_warm(&sources, &payloads, 1);

            let (a, b) = (repaired.export(), cold.export());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.key, y.key);
                let bits_a: Vec<u64> = x.tree.dist.iter().map(|d| d.to_bits()).collect();
                let bits_b: Vec<u64> = y.tree.dist.iter().map(|d| d.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "dist diverged (scenario {scenario})");
                assert_eq!(
                    x.tree.prev, y.tree.prev,
                    "prev diverged (scenario {scenario})"
                );
            }
        }
    }

    #[test]
    fn off_tree_failure_keeps_every_tree() {
        // the slow detour 0-2-3 sits on no shortest-path tree; cutting it
        // must keep everything (removal skips rule 2 entirely)
        let old = diamond();
        let cost = CostModel::default();
        let sources: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
        let closure = MetricClosure::new(&old, cost);
        closure.par_warm(&sources, &[1_000_000.0], 1);
        let entries = closure.export();

        // links 2 (0-2) and 3 (2-3) are the slow route; only trees rooted
        // at or reaching *through* them use them. Source 2's tree does use
        // its incident links, so cut only 0-2 and check the trees that
        // never traverse it are retained.
        let mut new = old.clone();
        new.fail_link_symmetric(EdgeId(4)).unwrap(); // undirected link 2 = 0-2
        let delta = NetworkDelta::between(&old, &new).unwrap();
        let target = MetricClosure::new(&new, cost);
        let report = repair_closure(&target, &entries, &delta, 1);
        assert_eq!(report.kept + report.rebuilt, report.total);
        // and byte-identity regardless of the kept/rebuilt split
        let cold = MetricClosure::new(&new, cost);
        cold.par_warm(&sources, &[1_000_000.0], 1);
        let (a, b) = (target.export(), cold.export());
        for (x, y) in a.iter().zip(&b) {
            let bits_a: Vec<u64> = x.tree.dist.iter().map(|d| d.to_bits()).collect();
            let bits_b: Vec<u64> = y.tree.dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn an_irrelevant_cost_increase_keeps_every_tree() {
        // ring 0-1-3-2-0 where 0-2 is so slow that every shortest path
        // reaches 2 via 3: link 0-2 sits on no tree and can't compete
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(100.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        let n3 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 1000.0, 0.1).unwrap(); // link 0
        b.add_link(n1, n3, 1000.0, 0.1).unwrap(); // link 1
        b.add_link(n0, n2, 1.0, 0.1).unwrap(); // link 2: dead slow
        b.add_link(n2, n3, 1000.0, 0.1).unwrap(); // link 3
        let old = b.build().unwrap();

        let cost = CostModel::default();
        let sources: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
        let closure = MetricClosure::new(&old, cost);
        closure.par_warm(&sources, &[1_000_000.0], 1);
        let entries = closure.export();

        // the dead-slow off-tree link gets even slower: rule 3 retains all
        let new = perturb_link(&old, 2, 0.5);
        let delta = NetworkDelta::between(&old, &new).unwrap();
        let target = MetricClosure::new(&new, cost);
        let report = repair_closure(&target, &entries, &delta, 1);
        assert_eq!(report.kept, report.total, "no tree traverses link 0-2");
        assert_eq!(report.rebuilt, 0);
        // and the repaired closure is still exactly a cold build
        let cold = MetricClosure::new(&new, cost);
        cold.par_warm(&sources, &[1_000_000.0], 1);
        let (a, b) = (target.export(), cold.export());
        for (x, y) in a.iter().zip(&b) {
            let bits_a: Vec<u64> = x.tree.dist.iter().map(|d| d.to_bits()).collect();
            let bits_b: Vec<u64> = y.tree.dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
            assert_eq!(x.tree.prev, y.tree.prev);
        }
    }
}
