//! Metaheuristic mapping solvers: simulated annealing and a genetic
//! algorithm over free stage→node assignments.
//!
//! The ELPC DPs are exact for their path-structured formulations, but the
//! dispersed-computing literature (Zhao et al., *Design and Experimental
//! Evaluation of Algorithms for Optimizing the Throughput of Dispersed
//! Computing*; Benoit et al., *Multi-criteria scheduling of pipeline
//! workflows*) measures mapping quality against metaheuristic baselines
//! that search the unstructured assignment space directly. This module
//! supplies both standard baselines behind the [`crate::Solver`] registry:
//!
//! * [`solve_anneal`] — simulated annealing with a geometric temperature
//!   schedule and two neighborhood moves, *reassign one stage* and *swap
//!   two stages*;
//! * [`solve_genetic`] — a generational genetic algorithm with tournament
//!   selection, one-point crossover on the interior stage vector, and
//!   random-reassignment mutation.
//!
//! ## Search space and evaluation semantics
//!
//! Both solvers search per-module host assignments with the endpoints
//! pinned (`assignment[0] = src`, `assignment[n-1] = dst`) and evaluate
//! every candidate under **routed transport** — the same semantics the
//! routed DP overlays and the Streamline baseline are scored under, so
//! `workloads::compare` can rank all of them on one axis. Since ISSUE 5
//! candidates are scored through the context's dense
//! [`crate::eval::EvalKernel`] (a lock-free snapshot of the shared
//! [`crate::MetricClosure`], built once per context through `par_warm`):
//! the annealer scores each reassign/swap move by only its changed terms (≤ 6) in
//! O(1) via [`crate::eval::DeltaEval`] and re-derives the exact objective
//! on every accepted move, while the genetic algorithm scores whole
//! children through the kernel's allocation-free full evaluation — both
//! bit-identical to [`crate::routed::routed_delay_ms_ctx`] /
//! [`crate::routed::routed_bottleneck_ms_ctx`] on everything they report.
//!
//! * **MinDelay** candidates may reuse nodes (the §3.1.1 relaxation);
//!   the exact optimum of this space is `elpc_delay_routed`, which makes
//!   the *quality gap* `metaheuristic / exact` well-defined and ≥ 1.
//! * **MaxRate** candidates must use pairwise-distinct hosts (the §3.1.2
//!   streaming constraint); the exact reference on small instances is
//!   [`crate::exact::max_rate_routed`].
//!
//! ## Determinism
//!
//! All randomness flows from one seeded [`rand_chacha::ChaCha8Rng`] per
//! solve: the same [`AnnealConfig`]/[`GeneticConfig`] on the same instance
//! produces the same mapping on every run and at every
//! [`crate::SolveContext`] thread count. (Across *platforms* the annealer's
//! acceptance test calls `exp`/`powf`, whose last-ulp rounding may differ
//! between libm implementations, so cross-machine reproducibility is
//! per-platform rather than universal.) The registry entries
//! (`anneal_{delay,rate}`, `genetic_{delay,rate}`) use the default configs
//! and are therefore fully reproducible within a platform.

use crate::eval::{DeltaEval, EvalKernel, MoveSpec};
use crate::{AssignmentSolution, MappingError, Objective, Result, SolveContext};
use elpc_netgraph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The default RNG seed shared by the registry entries (`b"ELPC"` as a
/// 32-bit integer).
pub const DEFAULT_SEED: u64 = 0x454C_5043;

/// Configuration of the simulated-annealing solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// RNG seed; equal seeds reproduce the search exactly.
    pub seed: u64,
    /// Proposed moves per restart.
    pub iterations: usize,
    /// Independent restarts (the best mapping across restarts wins).
    pub restarts: usize,
    /// Initial temperature, relative to the current objective (a move that
    /// worsens the objective by fraction `d` is accepted with probability
    /// `exp(-d / T)`).
    pub initial_temp: f64,
    /// Final temperature of the geometric cooling schedule.
    pub final_temp: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed: DEFAULT_SEED,
            iterations: 2500,
            restarts: 2,
            initial_temp: 0.3,
            final_temp: 1e-3,
        }
    }
}

impl AnnealConfig {
    fn validate(&self) -> Result<()> {
        if self.iterations == 0 || self.restarts == 0 {
            return Err(MappingError::BadConfig(
                "annealing needs at least one iteration and one restart".into(),
            ));
        }
        if !(self.initial_temp > 0.0)
            || !(self.final_temp > 0.0)
            || !self.initial_temp.is_finite()
            || !self.final_temp.is_finite()
        {
            return Err(MappingError::BadConfig(
                "annealing temperatures must be positive and finite".into(),
            ));
        }
        if self.final_temp > self.initial_temp {
            return Err(MappingError::BadConfig(
                "final_temp must not exceed initial_temp (the schedule cools)".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the genetic-algorithm solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// RNG seed; equal seeds reproduce the search exactly.
    pub seed: u64,
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of one-point crossover (otherwise the fitter parent is
    /// cloned).
    pub crossover_rate: f64,
    /// Per-gene probability of a random-reassignment mutation.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elite: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            seed: DEFAULT_SEED,
            population: 32,
            generations: 80,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.1,
            elite: 2,
        }
    }
}

impl GeneticConfig {
    fn validate(&self) -> Result<()> {
        if self.population < 2 || self.generations == 0 || self.tournament == 0 {
            return Err(MappingError::BadConfig(
                "genetic search needs population ≥ 2, generations ≥ 1, tournament ≥ 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) || !(0.0..=1.0).contains(&self.mutation_rate)
        {
            return Err(MappingError::BadConfig(
                "crossover and mutation rates must lie in [0, 1]".into(),
            ));
        }
        if self.elite >= self.population {
            return Err(MappingError::BadConfig(
                "elite count must be smaller than the population".into(),
            ));
        }
        Ok(())
    }
}

/// Shared search state: the instance shape plus the objective's evaluation
/// and feasibility rules, all served by the context's dense evaluation
/// kernel. Shared with [`crate::tabu`], which drives the same reassign/swap
/// neighborhood from a different acceptance rule.
pub(crate) struct Search {
    objective: Objective,
    kernel: Arc<EvalKernel>,
    pub(crate) n: usize,
    pub(crate) k: usize,
    src: NodeId,
    dst: NodeId,
}

impl Search {
    pub(crate) fn new(ctx: &SolveContext<'_>, objective: Objective) -> Result<Self> {
        let inst = ctx.instance();
        let n = inst.n_modules();
        let k = inst.network.node_count();
        if objective == Objective::MaxRate {
            inst.ensure_distinct_hosts_feasible()?;
        }
        Ok(Search {
            objective,
            kernel: ctx.eval_kernel(),
            n,
            k,
            src: inst.src,
            dst: inst.dst,
        })
    }

    /// True when node reuse is forbidden (the streaming objective).
    pub(crate) fn distinct(&self) -> bool {
        self.objective == Objective::MaxRate
    }

    /// The context's dense evaluation kernel backing this search.
    pub(crate) fn kernel(&self) -> &Arc<EvalKernel> {
        &self.kernel
    }

    /// Routed objective of a full assignment through the dense kernel —
    /// bit-identical to the closure-backed evaluators; `None` when the
    /// assignment is infeasible (an unreachable transfer or a violated
    /// constraint).
    pub(crate) fn evaluate(&self, assignment: &[NodeId]) -> Option<f64> {
        let ms = self.kernel.full_objective_ms(self.objective, assignment);
        ms.is_finite().then_some(ms)
    }

    /// Incremental-evaluation state seated on `assignment`.
    pub(crate) fn delta_state(&self, assignment: &[NodeId]) -> DeltaEval {
        DeltaEval::new(Arc::clone(&self.kernel), self.objective, assignment)
    }

    /// A deterministic baseline assignment: everything on the source until
    /// the pinned sink (MinDelay), or the lowest-index distinct hosts
    /// (MaxRate). May be infeasible; the caller falls back to random draws.
    pub(crate) fn baseline(&self) -> Vec<NodeId> {
        let mut a = vec![self.src; self.n];
        *a.last_mut().expect("n >= 2") = self.dst;
        if self.distinct() {
            let mut next = 0usize;
            for slot in a.iter_mut().take(self.n - 1).skip(1) {
                while next < self.k {
                    let cand = NodeId::from_index(next);
                    next += 1;
                    if cand != self.src && cand != self.dst {
                        *slot = cand;
                        break;
                    }
                }
            }
        }
        a
    }

    /// A uniformly random assignment respecting the objective's
    /// constraints (endpoints pinned; distinct hosts for MaxRate).
    pub(crate) fn random_assignment(&self, rng: &mut ChaCha8Rng) -> Vec<NodeId> {
        let mut a = vec![self.src; self.n];
        *a.last_mut().expect("n >= 2") = self.dst;
        if self.distinct() {
            let mut pool: Vec<NodeId> = (0..self.k)
                .map(NodeId::from_index)
                .filter(|&v| v != self.src && v != self.dst)
                .collect();
            // partial Fisher–Yates: draw n-2 distinct interior hosts
            for j in 1..self.n - 1 {
                let pick = rng.gen_range(0..pool.len() - (j - 1)) + (j - 1);
                pool.swap(j - 1, pick);
                a[j] = pool[j - 1];
            }
        } else {
            for slot in a.iter_mut().take(self.n - 1).skip(1) {
                *slot = NodeId::from_index(rng.gen_range(0..self.k));
            }
        }
        a
    }

    /// An initial feasible assignment: the deterministic baseline when
    /// `use_baseline` (and it evaluates), otherwise up to `attempts` random
    /// draws. Restarts after the first pass `use_baseline = false` so they
    /// diversify from genuinely different starting points.
    pub(crate) fn initial(
        &self,
        rng: &mut ChaCha8Rng,
        attempts: usize,
        use_baseline: bool,
    ) -> Option<(Vec<NodeId>, f64)> {
        if use_baseline {
            let base = self.baseline();
            if let Some(cost) = self.evaluate(&base) {
                return Some((base, cost));
            }
        }
        for _ in 0..attempts {
            let a = self.random_assignment(rng);
            if let Some(cost) = self.evaluate(&a) {
                return Some((a, cost));
            }
        }
        None
    }

    /// Draws one neighborhood move — reassign-one-stage or swap-two-stages
    /// — honoring the distinctness constraint, without materializing the
    /// candidate (`used` marks which hosts the current assignment occupies;
    /// only the distinct-reassign branch reads them). Returns `None` when
    /// the instance admits no move. The RNG call sequence is the
    /// neighborhood's contract: a seeded run proposes the same moves
    /// whether the caller scores them by delta or by full evaluation.
    pub(crate) fn propose_spec(&self, used: &[bool], rng: &mut ChaCha8Rng) -> Option<MoveSpec> {
        let interior = self.n.saturating_sub(2);
        if interior == 0 {
            return None;
        }
        let can_swap = interior >= 2;
        // for MaxRate, reassignment needs a currently unused host
        let can_reassign = !self.distinct() || self.k > self.n;
        let do_swap = match (can_swap, can_reassign) {
            (true, true) => rng.gen_bool(0.5),
            (true, false) => true,
            (false, true) => false,
            (false, false) => return None,
        };
        if do_swap {
            let j1 = 1 + rng.gen_range(0..interior);
            let mut j2 = 1 + rng.gen_range(0..interior - 1);
            if j2 >= j1 {
                j2 += 1;
            }
            Some(MoveSpec::Swap { a: j1, b: j2 })
        } else {
            let j = 1 + rng.gen_range(0..interior);
            let to = if self.distinct() {
                // i-th unused host in ascending node order, without
                // materializing the unused list (all n hosts are distinct,
                // so exactly k - n candidates exist)
                let mut pick = rng.gen_range(0..self.k - self.n);
                let mut v = usize::MAX;
                for (c, &u) in used.iter().enumerate() {
                    if !u {
                        if pick == 0 {
                            v = c;
                            break;
                        }
                        pick -= 1;
                    }
                }
                debug_assert!(v < self.k, "k > n guarantees an unused host");
                NodeId::from_index(v)
            } else {
                NodeId::from_index(rng.gen_range(0..self.k))
            };
            Some(MoveSpec::Reassign { stage: j, to })
        }
    }

    pub(crate) fn finish(&self, best: Option<(Vec<NodeId>, f64)>) -> Result<AssignmentSolution> {
        match best {
            Some((assignment, objective_ms)) => Ok(AssignmentSolution {
                assignment,
                objective_ms,
            }),
            None => Err(MappingError::Infeasible(format!(
                "no feasible assignment of {} modules from {} to {} was found",
                self.n, self.src, self.dst
            ))),
        }
    }
}

/// Keeps `best` pointing at the lowest-objective assignment seen so far.
pub(crate) fn track_best(best: &mut Option<(Vec<NodeId>, f64)>, cand: &[NodeId], cost: f64) {
    if best.as_ref().is_none_or(|(_, b)| cost < *b) {
        *best = Some((cand.to_vec(), cost));
    }
}

/// Simulated annealing over stage→node assignments.
///
/// Each restart walks from a feasible initial assignment, proposing
/// reassign/swap moves and accepting a worsening move of relative size `d`
/// with probability `exp(-d / T)` under the geometric schedule
/// `T: initial_temp → final_temp`. Candidates are scored incrementally
/// through the context's dense [`crate::eval::EvalKernel`]: a proposed move
/// costs O(1) array arithmetic on only the stage terms it changes (no
/// candidate materialization, no locks, no allocation), and every accepted
/// move re-derives the exact objective, so the walk's current cost — and
/// every incumbent — reconciles bit-for-bit with the routed evaluators.
/// Deterministic for a fixed `(instance, cost model, config)` at any
/// thread count.
pub fn solve_anneal(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &AnnealConfig,
) -> Result<AssignmentSolution> {
    config.validate()?;
    let search = Search::new(ctx, objective)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    let cooling =
        (config.final_temp / config.initial_temp).powf(1.0 / config.iterations.max(1) as f64);

    // one incremental-evaluation state, re-seated per restart
    let mut state: Option<DeltaEval> = None;
    for restart in 0..config.restarts {
        let Some((current, mut cur_cost)) = search.initial(&mut rng, 50, restart == 0) else {
            continue;
        };
        track_best(&mut best, &current, cur_cost);
        match state.as_mut() {
            Some(s) => s.reset(&current),
            None => state = Some(search.delta_state(&current)),
        }
        let state = state.as_mut().expect("seated above");
        let mut temp = config.initial_temp;
        for _ in 0..config.iterations {
            let Some(mv) = search.propose_spec(state.used_hosts(), &mut rng) else {
                break; // a 2-module instance has exactly one assignment
            };
            if let Some(cand_cost) = state.eval_move(mv) {
                let accept = if cand_cost <= cur_cost {
                    true
                } else {
                    let d = (cand_cost - cur_cost) / cur_cost.max(f64::MIN_POSITIVE);
                    rng.gen::<f64>() < (-d / temp).exp()
                };
                if accept {
                    cur_cost = state.apply(mv).expect("accepted move is feasible");
                    track_best(&mut best, state.assignment(), cur_cost);
                }
            }
            temp *= cooling;
        }
    }
    search.finish(best)
}

/// Elitism ordering: population indices by ascending fitness, ties broken
/// by position. A degenerate cost evaluation can surface NaN (0/0 — e.g. a
/// zero-byte payload priced over a zero-bandwidth link); the sort must not
/// panic on it, and `total_cmp` orders NaN above +∞, so such individuals
/// rank strictly worse than every infeasible one and die out.
pub(crate) fn elite_order(fitness: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..fitness.len()).collect();
    order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]).then(a.cmp(&b)));
    order
}

/// Genetic search over stage→node assignments.
///
/// A generational GA: tournament selection picks parents, one-point
/// crossover on the interior stage vector recombines them (with a
/// duplicate-repair pass under the MaxRate distinctness constraint),
/// per-gene mutation reassigns a stage to a random host, and the `elite`
/// best individuals survive unchanged. Fitness is the routed objective
/// through the shared metric closure; infeasible individuals score
/// `+∞` and die out. Deterministic for a fixed `(instance, cost model,
/// config)` at any thread count.
pub fn solve_genetic(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &GeneticConfig,
) -> Result<AssignmentSolution> {
    config.validate()?;
    let search = Search::new(ctx, objective)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = search.n;

    // seed the population: the deterministic baseline plus random draws
    let mut population: Vec<Vec<NodeId>> = Vec::with_capacity(config.population);
    population.push(search.baseline());
    while population.len() < config.population {
        population.push(search.random_assignment(&mut rng));
    }
    let mut fitness: Vec<f64> = population
        .iter()
        .map(|a| search.evaluate(a).unwrap_or(f64::INFINITY))
        .collect();
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    for (a, &f) in population.iter().zip(&fitness) {
        if f.is_finite() {
            track_best(&mut best, a, f);
        }
    }

    let tournament = |rng: &mut ChaCha8Rng, fitness: &[f64]| -> usize {
        let mut winner = rng.gen_range(0..fitness.len());
        for _ in 1..config.tournament {
            let c = rng.gen_range(0..fitness.len());
            if fitness[c] < fitness[winner] {
                winner = c;
            }
        }
        winner
    };

    for _ in 0..config.generations {
        let order = elite_order(&fitness);
        let mut next: Vec<Vec<NodeId>> = order
            .iter()
            .take(config.elite)
            .map(|&i| population[i].clone())
            .collect();

        while next.len() < config.population {
            let pa = tournament(&mut rng, &fitness);
            let pb = tournament(&mut rng, &fitness);
            let mut child = if n > 3 && rng.gen_bool(config.crossover_rate) {
                // one-point crossover on the interior stage vector
                let cut = 1 + rng.gen_range(1..n - 2);
                let mut c = population[pa][..cut].to_vec();
                c.extend_from_slice(&population[pb][cut..]);
                c
            } else if fitness[pa] <= fitness[pb] {
                population[pa].clone()
            } else {
                population[pb].clone()
            };
            // mutation: random reassignment per interior gene
            for j in 1..n - 1 {
                if rng.gen_bool(config.mutation_rate) {
                    child[j] = NodeId::from_index(rng.gen_range(0..search.k));
                }
            }
            if search.distinct() {
                repair_duplicates(&mut child, search.k, &mut rng);
            }
            next.push(child);
        }
        population = next;
        fitness = population
            .iter()
            .map(|a| search.evaluate(a).unwrap_or(f64::INFINITY))
            .collect();
        for (a, &f) in population.iter().zip(&fitness) {
            if f.is_finite() {
                track_best(&mut best, a, f);
            }
        }
    }
    search.finish(best)
}

/// Repairs a MaxRate genome after crossover/mutation: later duplicates are
/// replaced by deterministic-random unused hosts, so every individual in
/// the population satisfies the distinctness constraint by construction.
fn repair_duplicates(a: &mut [NodeId], k: usize, rng: &mut ChaCha8Rng) {
    let n = a.len();
    let mut used = vec![false; k];
    used[a[0].index()] = true;
    used[a[n - 1].index()] = true;
    for j in 1..n - 1 {
        if !used[a[j].index()] {
            used[a[j].index()] = true;
            continue;
        }
        let unused: Vec<usize> = (0..k).filter(|&v| !used[v]).collect();
        debug_assert!(!unused.is_empty(), "n ≤ k guarantees a free host");
        let pick = unused[rng.gen_range(0..unused.len())];
        a[j] = NodeId::from_index(pick);
        used[pick] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{elpc_delay, routed, CostModel, Instance};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// ISSUE 9 regression: the elitism sort used `partial_cmp(..).expect`
    /// and panicked the whole GA on the first NaN fitness — which a
    /// degenerate cost evaluation can produce (0/0, e.g. a zero-byte
    /// payload priced over a zero-bandwidth link). NaN must instead rank
    /// strictly worse than every infeasible (+∞) individual.
    #[test]
    fn elite_order_survives_nan_fitness() {
        let fitness = [f64::NAN, 1.0, f64::INFINITY, f64::NAN, 0.5];
        let order = elite_order(&fitness);
        assert_eq!(
            order,
            vec![4, 1, 2, 0, 3],
            "finite < +inf < NaN, index ties"
        );
        // all-degenerate populations must not panic either
        assert_eq!(elite_order(&[f64::NAN, f64::NAN]), vec![0, 1]);
        assert_eq!(elite_order(&[]), Vec::<usize>::new());
    }

    /// End-to-end companion: a population where every random individual is
    /// infeasible (non-finite fitness) still runs every generation's
    /// elitism sort without panicking and recovers the one feasible
    /// mapping.
    #[test]
    fn genetic_survives_an_all_infeasible_population() {
        // line 0-1-2: any interior assignment off the line is unreachable
        // in one hop for some boundary, so most random draws are ∞
        let mut b = elpc_netsim::Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(50.0).unwrap();
        let n2 = b.add_node(200.0).unwrap();
        b.add_link(n0, n1, 10.0, 1.0).unwrap();
        b.add_link(n1, n2, 10.0, 1.0).unwrap();
        let net = b.build().unwrap();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, n0, n2).unwrap();
        let sol = solve_genetic(
            &SolveContext::new(inst, cost()),
            Objective::MinDelay,
            &GeneticConfig::default(),
        )
        .expect("the line mapping is feasible");
        assert!(sol.objective_ms.is_finite());
    }

    #[test]
    fn anneal_is_seed_deterministic() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let a = solve_anneal(
                &SolveContext::new(inst, cost()),
                objective,
                &AnnealConfig::default(),
            )
            .unwrap();
            let b = solve_anneal(
                &SolveContext::new(inst, cost()),
                objective,
                &AnnealConfig::default(),
            )
            .unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
        }
    }

    #[test]
    fn genetic_is_seed_deterministic() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let a = solve_genetic(
                &SolveContext::new(inst, cost()),
                objective,
                &GeneticConfig::default(),
            )
            .unwrap();
            let b = solve_genetic(
                &SolveContext::new(inst, cost()),
                objective,
                &GeneticConfig::default(),
            )
            .unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
        }
    }

    #[test]
    fn anneal_delay_matches_the_routed_optimum_on_a_small_instance() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let exact = elpc_delay::solve_routed_ctx(&ctx).unwrap();
        let sa = solve_anneal(&ctx, Objective::MinDelay, &AnnealConfig::default()).unwrap();
        // never better than the routed optimum; on K5 it should find it
        assert!(sa.objective_ms >= exact.objective_ms - 1e-9);
        assert!(
            (sa.objective_ms - exact.objective_ms).abs() <= 1e-6 * exact.objective_ms,
            "annealing missed the optimum on a trivial instance: {} vs {}",
            sa.objective_ms,
            exact.objective_ms
        );
    }

    #[test]
    fn rate_solutions_respect_the_distinctness_constraint() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for sol in [
            solve_anneal(&ctx, Objective::MaxRate, &AnnealConfig::default()).unwrap(),
            solve_genetic(&ctx, Objective::MaxRate, &GeneticConfig::default()).unwrap(),
        ] {
            let mut seen = std::collections::BTreeSet::new();
            for &h in &sol.assignment {
                assert!(seen.insert(h), "host {h} reused in a MaxRate mapping");
            }
            assert_eq!(sol.assignment[0], NodeId(0));
            assert_eq!(*sol.assignment.last().unwrap(), NodeId(4));
            // the reported objective re-evaluates exactly
            let re = routed::routed_bottleneck_ms_ctx(&ctx, &sol.assignment, true).unwrap();
            assert_eq!(re.to_bits(), sol.objective_ms.to_bits());
        }
    }

    #[test]
    fn infeasible_instances_are_reported() {
        let net = k5();
        // 6 modules on 5 nodes: MaxRate is structurally infeasible
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 4], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        assert!(matches!(
            solve_anneal(&ctx, Objective::MaxRate, &AnnealConfig::default()),
            Err(MappingError::Infeasible(_))
        ));
        assert!(matches!(
            solve_genetic(&ctx, Objective::MaxRate, &GeneticConfig::default()),
            Err(MappingError::Infeasible(_))
        ));
        // coincident endpoints likewise
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(1), NodeId(1)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        assert!(matches!(
            solve_anneal(&ctx, Objective::MaxRate, &AnnealConfig::default()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let bad = AnnealConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(matches!(
            solve_anneal(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        let bad = AnnealConfig {
            initial_temp: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            solve_anneal(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        // a heating schedule (final above initial) is a misconfiguration
        let bad = AnnealConfig {
            initial_temp: 1e-3,
            final_temp: 0.3,
            ..Default::default()
        };
        assert!(matches!(
            solve_anneal(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        // an infinite temperature would poison the cooling factor into NaN
        let bad = AnnealConfig {
            initial_temp: f64::INFINITY,
            ..Default::default()
        };
        assert!(matches!(
            solve_anneal(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        let bad = GeneticConfig {
            population: 1,
            ..Default::default()
        };
        assert!(matches!(
            solve_genetic(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        let bad = GeneticConfig {
            mutation_rate: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            solve_genetic(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
        let bad = GeneticConfig {
            elite: 32,
            ..Default::default()
        };
        assert!(matches!(
            solve_genetic(&ctx, Objective::MinDelay, &bad),
            Err(MappingError::BadConfig(_))
        ));
    }

    #[test]
    fn two_module_pipelines_have_one_assignment() {
        let net = k5();
        let pipe = Pipeline::from_stages(1e5, &[], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sa = solve_anneal(&ctx, Objective::MinDelay, &AnnealConfig::default()).unwrap();
        assert_eq!(sa.assignment, vec![NodeId(0), NodeId(4)]);
        let ga = solve_genetic(&ctx, Objective::MaxRate, &GeneticConfig::default()).unwrap();
        assert_eq!(ga.assignment, vec![NodeId(0), NodeId(4)]);
    }
}
