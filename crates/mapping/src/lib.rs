//! # elpc-mapping — the paper's primary contribution
//!
//! Maps the modules of a linear computing pipeline onto nodes of a
//! distributed network to (i) minimize end-to-end delay for interactive
//! applications, or (ii) maximize frame rate for streaming applications
//! (§2.3 of Wu, Gu, Zhu & Rao, IPDPS 2008).
//!
//! ## Solvers
//!
//! | module | algorithm | paper section | guarantee |
//! |--------|-----------|---------------|-----------|
//! | [`elpc_delay`] | ELPC dynamic program, node reuse | §3.1.1 (Eq. 3/4, Fig. 1) | optimal, `O(n·\|E\|)` |
//! | [`elpc_rate`]  | ELPC dynamic program, no reuse   | §3.1.2 (Eq. 5/6) | heuristic (exact problem is NP-complete) |
//! | [`exact`]      | exhaustive search                | — | optimal, exponential; small instances only |
//! | [`streamline`] | Streamline [Agarwalla et al. 2006] adapted to linear pipelines | §3.2 | heuristic, `O(m·n²)` |
//! | [`greedy`]     | local greedy                     | §3.3 | heuristic, `O(m·n)` |
//! | [`metaheuristic`] | simulated annealing + genetic search over free assignments | related work | heuristic, seeded-deterministic |
//! | [`tabu`]       | tabu search over free assignments | related work | heuristic, seeded-deterministic |
//! | [`lns`]        | adaptive large-neighborhood search (destroy/repair over stage segments) | related work | heuristic, seeded-deterministic |
//! | [`portfolio`]  | concurrent slate race over registry members | — | best member wins, deterministic tie-break |
//!
//! ## The `Solver` registry and `SolveContext`
//!
//! All twenty solver entry points (the algorithms × two objectives —
//! strict, routed, metaheuristic, and portfolio variants) are registered behind the [`Solver`] trait;
//! [`registry()`] enumerates them and [`solver()`] looks one up by name.
//! Every solver receives a [`SolveContext`] — the instance, the cost model,
//! and a shared [`MetricClosure`] that lazily caches the routed all-pairs
//! transfer trees (one Dijkstra per `(payload size, source node)`). Build
//! one context per instance and run as many algorithms as you like against
//! it: the all-pairs work that used to be recomputed inside every routed
//! solver is paid exactly once per instance.
//!
//! ```
//! use elpc_mapping::{registry, solver, CostModel, Instance, SolveContext};
//! # let mut b = elpc_netsim::Network::builder();
//! # let s = b.add_node(100.0).unwrap();
//! # let m = b.add_node(1000.0).unwrap();
//! # let d = b.add_node(100.0).unwrap();
//! # b.add_link(s, m, 100.0, 0.5).unwrap();
//! # b.add_link(m, d, 100.0, 0.5).unwrap();
//! # let network = b.build().unwrap();
//! # let pipeline = elpc_pipeline::Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
//! let inst = Instance::new(&network, &pipeline, s, d).unwrap();
//! let ctx = SolveContext::new(inst, CostModel::default());
//! for entry in registry() {
//!     let _ = entry.solve(&ctx); // routed trees are shared across entries
//! }
//! let optimal = solver("elpc_delay").unwrap().solve(&ctx).unwrap();
//! assert!(optimal.objective_ms > 0.0);
//! ```
//!
//! ## Objectives (§2.3)
//!
//! * **End-to-end delay** (Eq. 1): total compute plus transport time along
//!   the mapped path — [`CostModel::delay_ms`].
//! * **Frame rate** (Eq. 2): reciprocal of the bottleneck stage time —
//!   [`CostModel::bottleneck_ms`] / [`CostModel::frame_rate_fps`].
//!
//! A [`Mapping`] is a path of network nodes plus a partition of the module
//! chain into contiguous groups, one group per path position — exactly the
//! paper's "decompose the pipeline into q groups … and map them onto a
//! selected path P". [`Mapping::validate`] enforces the structural
//! invariants; the cost model refuses invalid mappings.
//!
//! ## Faithfulness knobs
//!
//! [`CostModel::include_mld`] toggles the minimum-link-delay term the
//! paper's prose defines but its equations drop (DESIGN.md erratum 1;
//! ablation A1). [`elpc_rate::RateConfig::k_labels`] widens the rate DP
//! from the paper's single label per cell to a K-best label set
//! (ablation A2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod cost;
pub mod delta;
pub mod elpc_delay;
pub mod elpc_rate;
mod error;
pub mod eval;
pub mod exact;
pub mod greedy;
pub mod lns;
mod mapping;
pub mod metaheuristic;
pub mod portfolio;
pub mod routed;
mod solver;
pub mod streamline;
pub mod tabu;
#[cfg(test)]
mod test_fixtures;

pub use context::{CachedTree, ClosureStats, MetricClosure, SolveContext, TreeKey};
pub use cost::{CostModel, Stage};
pub use delta::{
    LinkFailure, LinkPerturbation, NetworkDelta, NodeFailure, NodePerturbation, RepairReport,
};
pub use error::MappingError;
pub use eval::{BoundedEval, DeltaEval, EvalKernel, MoveSpec};
pub use lns::LnsConfig;
pub use mapping::{AssignmentSolution, DelaySolution, Mapping, RateSolution};
pub use metaheuristic::{AnnealConfig, GeneticConfig};
pub use portfolio::{FannedMember, MemberReport, PortfolioConfig, PortfolioSolution};
pub use solver::{registry, solver, solvers_for, Objective, Solution, Solver};
pub use tabu::TabuConfig;

pub use elpc_netgraph::{EdgeId, NodeId};

/// Result alias for mapping operations.
pub type Result<T> = std::result::Result<T, MappingError>;

/// A mapping problem instance: which pipeline goes onto which network,
/// between which endpoints, under which cost model.
///
/// §4.1: "For each mapping problem, we designate a source node and a
/// destination node to run the first module and the last module of the
/// pipeline" — `src` hosts module 0 (the data source), `dst` hosts module
/// `n-1` (the end user).
#[derive(Debug, Clone, Copy)]
pub struct Instance<'a> {
    /// The transport network.
    pub network: &'a elpc_netsim::Network,
    /// The computing pipeline.
    pub pipeline: &'a elpc_pipeline::Pipeline,
    /// Node running the first module (where the raw data lives).
    pub src: NodeId,
    /// Node running the last module (where the end user sits).
    pub dst: NodeId,
}

impl<'a> Instance<'a> {
    /// Builds an instance, validating that the endpoints exist.
    pub fn new(
        network: &'a elpc_netsim::Network,
        pipeline: &'a elpc_pipeline::Pipeline,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Self> {
        network
            .graph()
            .check_node(src)
            .map_err(elpc_netsim::NetworkError::from)?;
        network
            .graph()
            .check_node(dst)
            .map_err(elpc_netsim::NetworkError::from)?;
        Ok(Instance {
            network,
            pipeline,
            src,
            dst,
        })
    }

    /// Number of modules `n`.
    pub fn n_modules(&self) -> usize {
        self.pipeline.len()
    }

    /// The structural screens every distinct-host (no node reuse) solver
    /// shares: `n ≤ k` and `src ≠ dst`. One definition so the routed-exact
    /// enumeration and the metaheuristics cannot drift apart.
    pub(crate) fn ensure_distinct_hosts_feasible(&self) -> Result<()> {
        let n = self.n_modules();
        let k = self.network.node_count();
        if n > k {
            return Err(MappingError::Infeasible(format!(
                "{n} modules need {n} distinct hosts, network has {k}"
            )));
        }
        if self.src == self.dst {
            return Err(MappingError::Infeasible(
                "source and destination coincide; distinct hosts are impossible".into(),
            ));
        }
        Ok(())
    }

    /// Necessary feasibility conditions (§4.3): with node reuse the hop
    /// distance from `src` to `dst` must not exceed `n - 1`; without reuse
    /// additionally `n ≤ k` and a simple path of exactly `n` nodes must be
    /// *possible* in hop terms. (Sufficiency for the no-reuse case is the
    /// NP-complete part — this is only the cheap screen.)
    pub fn hop_feasible(&self, node_reuse: bool) -> bool {
        let dists = elpc_netgraph::algo::hop_distances(self.network.graph(), self.src);
        let Some(d) = dists[self.dst.index()] else {
            return false;
        };
        let n = self.n_modules();
        if (d as usize) > n - 1 {
            return false;
        }
        if !node_reuse {
            if n > self.network.node_count() {
                return false;
            }
            // parity is irrelevant on general graphs, but a same-node
            // endpoint pair can never host a ≥2-module simple path start/end
            if self.src == self.dst && n >= 2 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    fn line3() -> Network {
        let mut b = Network::builder();
        let a = b.add_node(1.0).unwrap();
        let c = b.add_node(1.0).unwrap();
        let d = b.add_node(1.0).unwrap();
        b.add_link(a, c, 10.0, 0.1).unwrap();
        b.add_link(c, d, 10.0, 0.1).unwrap();
        b.build().unwrap()
    }

    fn pipe(n: usize) -> Pipeline {
        let stages: Vec<(f64, f64)> = (0..n.saturating_sub(2)).map(|_| (1.0, 100.0)).collect();
        Pipeline::from_stages(100.0, &stages, 1.0).unwrap()
    }

    #[test]
    fn instance_validates_endpoints() {
        let net = line3();
        let p = pipe(3);
        assert!(Instance::new(&net, &p, NodeId(0), NodeId(2)).is_ok());
        assert!(Instance::new(&net, &p, NodeId(0), NodeId(9)).is_err());
        assert!(Instance::new(&net, &p, NodeId(9), NodeId(0)).is_err());
    }

    #[test]
    fn hop_feasibility_screens_short_pipelines() {
        let net = line3();
        // 2 modules but dst is 2 hops away: infeasible either way (§4.3,
        // "the shortest end-to-end path is longer than the pipeline")
        let p2 = pipe(2);
        let inst = Instance::new(&net, &p2, NodeId(0), NodeId(2)).unwrap();
        assert!(!inst.hop_feasible(true));
        assert!(!inst.hop_feasible(false));
        // 3 modules fit exactly
        let p3 = pipe(3);
        let inst = Instance::new(&net, &p3, NodeId(0), NodeId(2)).unwrap();
        assert!(inst.hop_feasible(true));
        assert!(inst.hop_feasible(false));
        // 5 modules: fine with reuse, impossible without (only 3 nodes)
        let p5 = pipe(5);
        let inst = Instance::new(&net, &p5, NodeId(0), NodeId(2)).unwrap();
        assert!(inst.hop_feasible(true));
        assert!(!inst.hop_feasible(false));
    }

    #[test]
    fn same_endpoint_no_reuse_is_infeasible() {
        let net = line3();
        let p = pipe(3);
        let inst = Instance::new(&net, &p, NodeId(1), NodeId(1)).unwrap();
        assert!(!inst.hop_feasible(false));
        assert!(inst.hop_feasible(true)); // all modules on one node is fine
    }
}
