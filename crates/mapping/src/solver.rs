//! The unified solver registry.
//!
//! Every mapping algorithm in this crate is reachable behind one trait:
//! [`Solver`] takes a shared [`SolveContext`] (instance + cost model +
//! metric-closure cache) and returns a uniform [`Solution`]. The static
//! [`registry`] enumerates all entry points, so comparison harnesses,
//! experiment binaries, benches, and the adaptive-remapping control loop
//! select algorithms by name instead of hard-coding call sites — adding an
//! algorithm is a one-file change (implement `Solver` here, append it to
//! `REGISTRY`).
//!
//! | name | objective | semantics |
//! |------|-----------|-----------|
//! | `elpc_delay` | min delay | strict Eq. 1 DP, node reuse (optimal) |
//! | `elpc_delay_routed` | min delay | the same DP on the routed metric closure |
//! | `elpc_rate` | max rate | strict Eq. 2 single-label DP, no reuse |
//! | `elpc_rate_routed` | max rate | K-best routed DP portfolio + polish |
//! | `streamline_delay` | min delay | Streamline baseline, routed evaluation |
//! | `streamline_rate` | max rate | Streamline baseline, routed evaluation |
//! | `greedy_delay` | min delay | local greedy walk (strict) |
//! | `greedy_rate` | max rate | local greedy walk (strict) |
//! | `exact_delay` | min delay | budgeted exhaustive search |
//! | `exact_rate` | max rate | budgeted exhaustive enumeration |
//! | `anneal_delay` | min delay | simulated annealing, routed evaluation |
//! | `anneal_rate` | max rate | simulated annealing, routed evaluation |
//! | `genetic_delay` | min delay | genetic algorithm, routed evaluation |
//! | `genetic_rate` | max rate | genetic algorithm, routed evaluation |
//! | `tabu_delay` | min delay | tabu search, routed evaluation |
//! | `tabu_rate` | max rate | tabu search, routed evaluation |
//! | `lns_delay` | min delay | adaptive large-neighborhood search, routed evaluation |
//! | `lns_rate` | max rate | adaptive large-neighborhood search, routed evaluation |
//! | `portfolio_delay` | min delay | concurrent slate race over the registry |
//! | `portfolio_rate` | max rate | concurrent slate race over the registry |
//!
//! The metaheuristic entries (see [`crate::metaheuristic`],
//! [`crate::tabu`], and [`crate::lns`]) are seeded and fully deterministic;
//! `workloads::compare` reports their *quality gap* against the exact
//! solver of the same semantics. The portfolio entries (see
//! [`crate::portfolio`]) race the default slates on the context's
//! configured thread count and pick the winner by value with a fixed
//! tie-break order, so they too are deterministic at any thread count.
//!
//! # Examples
//!
//! Run every registered algorithm on one instance through a shared context
//! (the routed solvers then share one metric closure), or pick a solver by
//! name:
//!
//! ```
//! use elpc_mapping::{registry, solver, CostModel, Instance, SolveContext};
//! # let mut b = elpc_netsim::Network::builder();
//! # let s = b.add_node(100.0).unwrap();
//! # let m = b.add_node(1000.0).unwrap();
//! # let d = b.add_node(100.0).unwrap();
//! # b.add_link(s, m, 100.0, 0.5).unwrap();
//! # b.add_link(m, d, 100.0, 0.5).unwrap();
//! # let network = b.build().unwrap();
//! # let pipeline = elpc_pipeline::Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
//! let inst = Instance::new(&network, &pipeline, s, d).unwrap();
//! let ctx = SolveContext::new(inst, CostModel::default());
//! for entry in registry() {
//!     let _ = entry.solve(&ctx); // Ok(Solution) or a typed error
//! }
//! let optimal = solver("elpc_delay").unwrap();
//! assert!(optimal.is_exact());
//! assert!(optimal.solve(&ctx).unwrap().objective_ms > 0.0);
//! ```

use crate::{
    elpc_delay, elpc_rate, exact, greedy, lns, metaheuristic, portfolio, streamline, tabu,
    AssignmentSolution, DelaySolution, Mapping, RateSolution, Result, SolveContext,
};
use elpc_netgraph::NodeId;

/// Which §2.3 objective a solver optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Eq. 1 — minimize end-to-end delay (interactive applications).
    MinDelay,
    /// Eq. 2 — maximize frame rate / minimize the bottleneck stage
    /// (streaming applications).
    MaxRate,
}

/// Uniform solver output: a per-module host assignment, the objective value
/// in ms, and — for solvers whose placements follow network-adjacent paths
/// (the strict DPs, greedy, exact) — the structured [`Mapping`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Node hosting each module, in pipeline order.
    pub assignment: Vec<NodeId>,
    /// Objective value in ms: total delay (MinDelay) or bottleneck stage
    /// time (MaxRate).
    pub objective_ms: f64,
    /// The adjacent-path mapping, when the algorithm produces one. Routed
    /// free-placement solvers (Streamline, the routed ELPC overlays) leave
    /// this `None`: their transfers are multi-hop routes, not single links.
    pub mapping: Option<Mapping>,
}

impl Solution {
    /// Frames per second for MaxRate solutions (Eq. 2 reciprocal).
    pub fn frame_rate_fps(&self) -> f64 {
        elpc_netsim::units::frame_rate_fps(self.objective_ms)
    }

    fn from_delay(d: DelaySolution) -> Self {
        Solution {
            assignment: d.mapping.assignment(),
            objective_ms: d.delay_ms,
            mapping: Some(d.mapping),
        }
    }

    fn from_rate(r: RateSolution) -> Self {
        Solution {
            assignment: r.mapping.assignment(),
            objective_ms: r.bottleneck_ms,
            mapping: Some(r.mapping),
        }
    }

    fn from_assignment(a: AssignmentSolution) -> Self {
        Solution {
            assignment: a.assignment,
            objective_ms: a.objective_ms,
            mapping: None,
        }
    }
}

/// A registered mapping algorithm.
///
/// # Examples
///
/// Implementors are looked up by [`solver`] and run against a shared
/// [`SolveContext`]:
///
/// ```
/// use elpc_mapping::{solver, CostModel, Instance, Objective, SolveContext};
/// # let mut b = elpc_netsim::Network::builder();
/// # let s = b.add_node(100.0).unwrap();
/// # let d = b.add_node(100.0).unwrap();
/// # b.add_link(s, d, 100.0, 0.5).unwrap();
/// # let network = b.build().unwrap();
/// # let pipeline = elpc_pipeline::Pipeline::from_stages(1e5, &[], 1.0).unwrap();
/// let inst = Instance::new(&network, &pipeline, s, d).unwrap();
/// let ctx = SolveContext::new(inst, CostModel::default());
/// let entry = solver("greedy_delay").expect("registered");
/// assert_eq!(entry.objective(), Objective::MinDelay);
/// let solution = entry.solve(&ctx).unwrap();
/// assert_eq!(solution.assignment.len(), pipeline.len());
/// ```
pub trait Solver: Sync {
    /// Stable registry name (snake_case, unique).
    fn name(&self) -> &'static str;

    /// The objective this solver optimizes.
    fn objective(&self) -> Objective;

    /// True for solvers that prove optimality (within their semantics).
    fn is_exact(&self) -> bool {
        false
    }

    /// True for local-search solvers whose candidate scoring runs on the
    /// context's dense [`crate::eval::EvalKernel`]. The portfolio uses
    /// this to hoist the kernel snapshot ahead of the race instead of
    /// letting the first such member build it inside its own timing —
    /// declare it (the `uses_eval_kernel` marker in `declare_solver!`)
    /// when adding a kernel-backed solver so attribution stays clean.
    fn uses_eval_kernel(&self) -> bool {
        false
    }

    /// Runs the algorithm against a shared context.
    fn solve(&self, ctx: &SolveContext<'_>) -> Result<Solution>;
}

// The optional marker ident after `$exact` expands verbatim into a
// `fn <marker>() -> bool { true }` trait override — `uses_eval_kernel` is
// the only marker the `Solver` trait defines, so a misspelled marker fails
// to compile ("method is not a member of trait") instead of being ignored.
macro_rules! declare_solver {
    ($ty:ident, $name:literal, $objective:expr, $exact:literal $(, $marker:ident)?, |$ctx:ident| $body:expr) => {
        struct $ty;

        impl Solver for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn objective(&self) -> Objective {
                $objective
            }
            fn is_exact(&self) -> bool {
                $exact
            }
            $(
                fn $marker(&self) -> bool {
                    true
                }
            )?
            fn solve(&self, $ctx: &SolveContext<'_>) -> Result<Solution> {
                $body
            }
        }
    };
}

declare_solver!(ElpcDelay, "elpc_delay", Objective::MinDelay, true, |ctx| {
    elpc_delay::solve(ctx.instance(), ctx.cost()).map(Solution::from_delay)
});

declare_solver!(
    ElpcDelayRouted,
    "elpc_delay_routed",
    Objective::MinDelay,
    true,
    |ctx| elpc_delay::solve_routed_ctx(ctx).map(Solution::from_assignment)
);

declare_solver!(ElpcRate, "elpc_rate", Objective::MaxRate, false, |ctx| {
    elpc_rate::solve(ctx.instance(), ctx.cost()).map(Solution::from_rate)
});

declare_solver!(
    ElpcRateRouted,
    "elpc_rate_routed",
    Objective::MaxRate,
    false,
    |ctx| elpc_rate::solve_routed_portfolio(ctx).map(Solution::from_assignment)
);

declare_solver!(
    StreamlineDelay,
    "streamline_delay",
    Objective::MinDelay,
    false,
    |ctx| streamline::solve_min_delay_ctx(ctx).map(Solution::from_assignment)
);

declare_solver!(
    StreamlineRate,
    "streamline_rate",
    Objective::MaxRate,
    false,
    |ctx| streamline::solve_max_rate_ctx(ctx).map(Solution::from_assignment)
);

declare_solver!(
    GreedyDelay,
    "greedy_delay",
    Objective::MinDelay,
    false,
    |ctx| greedy::solve_min_delay(ctx.instance(), ctx.cost()).map(Solution::from_delay)
);

declare_solver!(
    GreedyRate,
    "greedy_rate",
    Objective::MaxRate,
    false,
    |ctx| greedy::solve_max_rate(ctx.instance(), ctx.cost()).map(Solution::from_rate)
);

declare_solver!(
    ExactDelay,
    "exact_delay",
    Objective::MinDelay,
    true,
    |ctx| {
        exact::min_delay(ctx.instance(), ctx.cost(), exact::ExactLimits::default())
            .map(Solution::from_delay)
    }
);

declare_solver!(ExactRate, "exact_rate", Objective::MaxRate, true, |ctx| {
    exact::max_rate(ctx.instance(), ctx.cost(), exact::ExactLimits::default())
        .map(Solution::from_rate)
});

declare_solver!(
    AnnealDelay,
    "anneal_delay",
    Objective::MinDelay,
    false,
    uses_eval_kernel,
    |ctx| {
        metaheuristic::solve_anneal(
            ctx,
            Objective::MinDelay,
            &metaheuristic::AnnealConfig::default(),
        )
        .map(Solution::from_assignment)
    }
);

declare_solver!(
    AnnealRate,
    "anneal_rate",
    Objective::MaxRate,
    false,
    uses_eval_kernel,
    |ctx| {
        metaheuristic::solve_anneal(
            ctx,
            Objective::MaxRate,
            &metaheuristic::AnnealConfig::default(),
        )
        .map(Solution::from_assignment)
    }
);

declare_solver!(
    GeneticDelay,
    "genetic_delay",
    Objective::MinDelay,
    false,
    uses_eval_kernel,
    |ctx| {
        metaheuristic::solve_genetic(
            ctx,
            Objective::MinDelay,
            &metaheuristic::GeneticConfig::default(),
        )
        .map(Solution::from_assignment)
    }
);

declare_solver!(
    GeneticRate,
    "genetic_rate",
    Objective::MaxRate,
    false,
    uses_eval_kernel,
    |ctx| {
        metaheuristic::solve_genetic(
            ctx,
            Objective::MaxRate,
            &metaheuristic::GeneticConfig::default(),
        )
        .map(Solution::from_assignment)
    }
);

declare_solver!(
    TabuDelay,
    "tabu_delay",
    Objective::MinDelay,
    false,
    uses_eval_kernel,
    |ctx| {
        tabu::solve_tabu(ctx, Objective::MinDelay, &tabu::TabuConfig::default())
            .map(Solution::from_assignment)
    }
);

declare_solver!(
    TabuRate,
    "tabu_rate",
    Objective::MaxRate,
    false,
    uses_eval_kernel,
    |ctx| {
        tabu::solve_tabu(ctx, Objective::MaxRate, &tabu::TabuConfig::default())
            .map(Solution::from_assignment)
    }
);

declare_solver!(
    LnsDelay,
    "lns_delay",
    Objective::MinDelay,
    false,
    uses_eval_kernel,
    |ctx| {
        lns::solve_lns(ctx, Objective::MinDelay, &lns::LnsConfig::default())
            .map(Solution::from_assignment)
    }
);

declare_solver!(
    LnsRate,
    "lns_rate",
    Objective::MaxRate,
    false,
    uses_eval_kernel,
    |ctx| {
        lns::solve_lns(ctx, Objective::MaxRate, &lns::LnsConfig::default())
            .map(Solution::from_assignment)
    }
);

declare_solver!(
    PortfolioDelay,
    "portfolio_delay",
    Objective::MinDelay,
    false,
    |ctx| {
        portfolio::solve_portfolio(
            ctx,
            Objective::MinDelay,
            &portfolio::PortfolioConfig::for_objective(Objective::MinDelay)
                .threads(ctx.warm_threads()),
        )
        .map(|race| race.solution)
    }
);

declare_solver!(
    PortfolioRate,
    "portfolio_rate",
    Objective::MaxRate,
    false,
    |ctx| {
        portfolio::solve_portfolio(
            ctx,
            Objective::MaxRate,
            &portfolio::PortfolioConfig::for_objective(Objective::MaxRate)
                .threads(ctx.warm_threads()),
        )
        .map(|race| race.solution)
    }
);

static REGISTRY: [&dyn Solver; 20] = [
    &ElpcDelay,
    &ElpcDelayRouted,
    &ElpcRate,
    &ElpcRateRouted,
    &StreamlineDelay,
    &StreamlineRate,
    &GreedyDelay,
    &GreedyRate,
    &ExactDelay,
    &ExactRate,
    &AnnealDelay,
    &AnnealRate,
    &GeneticDelay,
    &GeneticRate,
    &TabuDelay,
    &TabuRate,
    &LnsDelay,
    &LnsRate,
    &PortfolioDelay,
    &PortfolioRate,
];

/// Every registered solver, in registration order.
pub fn registry() -> &'static [&'static dyn Solver] {
    &REGISTRY
}

/// Looks a solver up by its registry name.
pub fn solver(name: &str) -> Option<&'static dyn Solver> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

/// Registered solvers optimizing `objective`.
pub fn solvers_for(objective: Objective) -> Vec<&'static dyn Solver> {
    REGISTRY
        .iter()
        .copied()
        .filter(|s| s.objective() == objective)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Instance};
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;

    fn fixture() -> (Network, Pipeline) {
        let mut b = Network::builder();
        let powers = [100.0, 10.0, 1000.0, 10.0, 100.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        let net = b.build().unwrap();
        let pipe = Pipeline::from_stages(1e6, &[(2.0, 1e5), (1.0, 5e4)], 1.0).unwrap();
        (net, pipe)
    }

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate registry names");
        for required in [
            "elpc_delay",
            "elpc_delay_routed",
            "elpc_rate",
            "elpc_rate_routed",
            "streamline_delay",
            "streamline_rate",
            "greedy_delay",
            "greedy_rate",
            "exact_delay",
            "exact_rate",
            "anneal_delay",
            "anneal_rate",
            "genetic_delay",
            "genetic_rate",
            "tabu_delay",
            "tabu_rate",
            "lns_delay",
            "lns_rate",
            "portfolio_delay",
            "portfolio_rate",
        ] {
            assert!(
                solver(required).is_some(),
                "solver `{required}` missing from registry"
            );
        }
        assert!(solver("does_not_exist").is_none());
    }

    #[test]
    fn exactly_the_kernel_backed_family_declares_uses_eval_kernel() {
        for s in registry() {
            let expected = ["anneal", "genetic", "tabu", "lns"]
                .iter()
                .any(|p| s.name().starts_with(p));
            assert_eq!(
                s.uses_eval_kernel(),
                expected,
                "`{}` mis-declares its evaluation-kernel use",
                s.name()
            );
        }
    }

    #[test]
    fn objectives_split_the_registry_in_half() {
        assert_eq!(solvers_for(Objective::MinDelay).len(), 10);
        assert_eq!(solvers_for(Objective::MaxRate).len(), 10);
    }

    #[test]
    fn every_solver_runs_through_one_shared_context() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        for s in registry() {
            let sol = s
                .solve(&ctx)
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name()));
            assert_eq!(sol.assignment.len(), pipe.len(), "{}", s.name());
            assert_eq!(sol.assignment[0], NodeId(0), "{}", s.name());
            assert_eq!(*sol.assignment.last().unwrap(), NodeId(4), "{}", s.name());
            assert!(sol.objective_ms.is_finite() && sol.objective_ms > 0.0);
            if let Some(m) = &sol.mapping {
                assert_eq!(m.assignment(), sol.assignment, "{}", s.name());
            }
        }
        // the routed solvers all hit the same closure
        assert!(
            ctx.closure().stats().hits > 0,
            "sharing a context must produce cache hits"
        );
    }

    #[test]
    fn registry_results_match_direct_calls_bit_for_bit() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let cost = CostModel::default();
        let ctx = SolveContext::new(inst, cost);

        let direct = elpc_delay::solve(&inst, &cost).unwrap();
        let via = solver("elpc_delay").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.delay_ms.to_bits());
        assert_eq!(via.mapping.as_ref().unwrap(), &direct.mapping);

        let direct = elpc_delay::solve_routed(&inst, &cost).unwrap();
        let via = solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.objective_ms.to_bits());
        assert_eq!(via.assignment, direct.assignment);

        let direct = streamline::solve_max_rate(&inst, &cost).unwrap();
        let via = solver("streamline_rate").unwrap().solve(&ctx).unwrap();
        assert_eq!(via.objective_ms.to_bits(), direct.objective_ms.to_bits());
        assert_eq!(via.assignment, direct.assignment);
    }

    #[test]
    fn exact_solvers_lower_bound_their_heuristics() {
        let (net, pipe) = fixture();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, CostModel::default());
        let exact_delay = solver("exact_delay").unwrap().solve(&ctx).unwrap();
        let exact_rate = solver("exact_rate").unwrap().solve(&ctx).unwrap();
        for s in registry() {
            let Ok(sol) = s.solve(&ctx) else { continue };
            match s.objective() {
                // strict-semantics delay solvers cannot beat the strict optimum;
                // routed overlays may (they relax transport)
                Objective::MinDelay if s.name() == "greedy_delay" => {
                    assert!(exact_delay.objective_ms <= sol.objective_ms + 1e-9);
                }
                Objective::MaxRate if s.name() == "greedy_rate" || s.name() == "elpc_rate" => {
                    assert!(exact_rate.objective_ms <= sol.objective_ms + 1e-9);
                }
                _ => {}
            }
        }
    }
}
